"""Chaos campaigns: seeded scenario batches with per-scenario isolation.

A *campaign* executes many search scenarios — fleets × targets × fault
specs — and never lets one bad scenario abort the sweep.  Each scenario
runs inside its own fault boundary: any exception (a broken fault model,
a speed-violating trajectory, an invariant audit failure, …) is captured
into a structured :class:`ScenarioResult` carrying the error class, the
seed, and the declarative :class:`ScenarioSpec`, so every failure is
replayable in isolation.  Stochastic scenarios that fail are retried
once before being recorded — a transient unlucky draw should not
pollute a robustness report.

The declarative layer is deliberately small: a :class:`ScenarioSpec`
names an ``(n, f)`` fleet (built with the paper's regime rules), a
target, a fault spec string, and a seed.  Fault spec strings cover the
whole taxonomy::

    none                   no faults
    adversarial            the paper's worst-case adversary, budget f
    random                 uniformly random f-subset (seeded)
    fixed                  robots 0..f-1 are crash-detection faulty
    crash_stop:T           robots 0..f-1 halt at T*(i+1)
    byzantine:T1;T2;...    robots 0..f-1 raise false alarms at the T_i
    probabilistic:P        robots 0..f-1 detect each visit w.p. P (seeded)

Programmatic callers can bypass the DSL entirely by handing
:func:`run_campaign` arbitrary :class:`Scenario` objects whose ``build``
callables produce any fleet/fault-model pair — including deliberately
broken ones, which is exactly how the test suite chaos-tests the engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError, LineSearchError
from repro.robots.faults import (
    AdversarialFaults,
    BehavioralFaults,
    ByzantineFalseAlarmFault,
    CrashStopFault,
    FaultModel,
    FixedFaults,
    ProbabilisticDetectionFault,
    RandomFaults,
)
from repro.robots.fleet import Fleet
from repro.simulation.engine import SearchSimulation

__all__ = [
    "FAULT_KINDS",
    "CampaignReport",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "chaos_scenarios",
    "run_campaign",
]

#: Fault spec kinds understood by :class:`ScenarioSpec`.
FAULT_KINDS = (
    "none",
    "adversarial",
    "random",
    "fixed",
    "crash_stop",
    "byzantine",
    "probabilistic",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative recipe for one scenario — everything a replay needs.

    Examples:
        >>> spec = ScenarioSpec(n=3, f=1, target=2.0, fault="adversarial", seed=7)
        >>> spec.describe()
        'A(3,1) target=2 fault=adversarial seed=7'
    """

    n: int
    f: int
    target: float
    fault: str = "adversarial"
    seed: Optional[int] = None

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"A({self.n},{self.f}) target={self.target:g} "
            f"fault={self.fault} seed={self.seed}"
        )


@dataclass
class Scenario:
    """An executable scenario: a spec plus the factory realizing it.

    ``build`` is called fresh on every attempt (including retries) and
    returns the fleet and fault model to simulate.  Custom scenarios may
    pair any spec with any factory — the spec is documentation and
    replay metadata, the factory is the truth.
    """

    spec: ScenarioSpec
    build: Callable[[], Tuple[Fleet, FaultModel]]
    stochastic: bool = False


@dataclass(frozen=True)
class ScenarioResult:
    """The isolated outcome of one scenario, success or failure."""

    spec: ScenarioSpec
    ok: bool
    attempts: int = 1
    detection_time: Optional[float] = None
    competitive_ratio: Optional[float] = None
    detecting_robot: Optional[int] = None
    faulty_robots: Tuple[int, ...] = ()
    error: Optional[str] = None
    error_message: Optional[str] = None

    def describe(self) -> str:
        """One-line summary."""
        if self.ok:
            detection = (
                f"T={self.detection_time:.6g}"
                if self.detection_time is not None
                and math.isfinite(self.detection_time)
                else "undetected"
            )
            return f"ok   {self.spec.describe()}: {detection}"
        retried = " (retried)" if self.attempts > 1 else ""
        return (
            f"FAIL {self.spec.describe()}: {self.error}: "
            f"{self.error_message}{retried}"
        )


@dataclass
class CampaignReport:
    """Aggregated results of a campaign, failures isolated and replayable."""

    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of scenarios executed."""
        return len(self.results)

    @property
    def succeeded(self) -> int:
        """Number of scenarios that completed without error."""
        return sum(1 for r in self.results if r.ok)

    @property
    def failed(self) -> int:
        """Number of scenarios captured as failures."""
        return self.total - self.succeeded

    def failures(self) -> List[ScenarioResult]:
        """The failed results, in execution order."""
        return [r for r in self.results if not r.ok]

    def error_counts(self) -> Dict[str, int]:
        """Failure tally per error class."""
        counts: Dict[str, int] = {}
        for result in self.failures():
            counts[result.error or "?"] = counts.get(result.error or "?", 0) + 1
        return counts

    def describe(self, max_failures: int = 10) -> str:
        """Multi-line campaign summary."""
        lines = [
            f"chaos campaign: {self.succeeded}/{self.total} scenarios ok, "
            f"{self.failed} failure(s) isolated"
        ]
        for error, count in sorted(self.error_counts().items()):
            lines.append(f"  {error}: {count}")
        shown = self.failures()[:max_failures]
        if shown:
            lines.append("first failures (replay via spec + seed):")
            lines.extend("  " + r.describe() for r in shown)
            hidden = self.failed - len(shown)
            if hidden > 0:
                lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# spec realization
# ----------------------------------------------------------------------

def _algorithm_for(n: int, f: int):
    from repro.baselines import TwoGroupAlgorithm
    from repro.core import SearchParameters
    from repro.schedule import ProportionalAlgorithm

    params = SearchParameters(n, f)
    if params.is_proportional:
        return ProportionalAlgorithm(n, f)
    return TwoGroupAlgorithm(n, f)


def _fault_model_for(spec: ScenarioSpec) -> Tuple[FaultModel, bool]:
    """Realize the fault spec string; returns ``(model, stochastic)``."""
    kind, _, argument = spec.fault.partition(":")
    seed = spec.seed
    if kind == "none":
        return AdversarialFaults(0), False
    if kind == "adversarial":
        return AdversarialFaults(spec.f), False
    if kind == "random":
        return RandomFaults(spec.f, seed=seed), True
    if kind == "fixed":
        if argument:
            indices = [int(i) for i in argument.split(",")]
        else:
            indices = list(range(spec.f))
        return FixedFaults(indices), False
    if kind == "crash_stop":
        halt = float(argument) if argument else 2.0
        return (
            BehavioralFaults(
                {i: CrashStopFault(halt * (i + 1)) for i in range(spec.f)}
            ),
            False,
        )
    if kind == "byzantine":
        alarms = (
            [float(t) for t in argument.split(";")] if argument else [0.5, 1.5]
        )
        return (
            BehavioralFaults(
                {i: ByzantineFalseAlarmFault(alarms) for i in range(spec.f)}
            ),
            False,
        )
    if kind == "probabilistic":
        p = float(argument) if argument else 0.5
        base = seed if seed is not None else 0
        return (
            BehavioralFaults(
                {
                    i: ProbabilisticDetectionFault(p, seed=base + i)
                    for i in range(spec.f)
                }
            ),
            True,
        )
    raise InvalidParameterError(
        f"unknown fault spec {spec.fault!r}; kinds: {', '.join(FAULT_KINDS)}"
    )


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Realize a declarative spec into an executable scenario.

    Examples:
        >>> scenario = build_scenario(ScenarioSpec(3, 1, 2.0, "crash_stop:1.5"))
        >>> fleet, model = scenario.build()
        >>> fleet.size
        3
    """

    def factory() -> Tuple[Fleet, FaultModel]:
        model, _ = _fault_model_for(spec)
        return Fleet.from_algorithm(_algorithm_for(spec.n, spec.f)), model

    _, stochastic = _fault_model_for(spec)
    return Scenario(spec=spec, build=factory, stochastic=stochastic)


def chaos_scenarios(
    pairs: Sequence[Tuple[int, int]],
    targets: Sequence[float],
    faults: Sequence[str] = FAULT_KINDS,
    seed: int = 0,
) -> List[Scenario]:
    """The full seeded grid of scenarios: pairs × targets × fault specs.

    Per-scenario seeds are drawn from a master generator, so the whole
    campaign is reproducible from ``seed`` alone and every entry is
    replayable from its own recorded seed.

    Examples:
        >>> grid = chaos_scenarios([(3, 1)], [1.0, -2.0], ["none", "random"])
        >>> len(grid)
        4
    """
    master = random.Random(seed)
    scenarios: List[Scenario] = []
    for n, f in pairs:
        for target in targets:
            for fault in faults:
                spec = ScenarioSpec(
                    n=n,
                    f=f,
                    target=target,
                    fault=fault,
                    seed=master.randrange(2**32),
                )
                scenarios.append(build_scenario(spec))
    return scenarios


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _run_once(scenario: Scenario, check_invariants: bool):
    fleet, model = scenario.build()
    simulation = SearchSimulation(
        fleet,
        scenario.spec.target,
        fault_model=model,
        check_invariants=check_invariants,
    )
    return simulation.run(with_events=check_invariants)


def run_campaign(
    scenarios: Iterable[Scenario],
    check_invariants: bool = True,
    retry_stochastic: bool = True,
) -> CampaignReport:
    """Execute scenarios with per-scenario fault isolation.

    A scenario that raises — during fleet construction, fault
    assignment, simulation, or the invariant audit — is captured as a
    failed :class:`ScenarioResult` and the campaign continues.
    Stochastic scenarios get one retry before their failure is recorded.

    Examples:
        >>> report = run_campaign(chaos_scenarios([(3, 1)], [2.0], ["none"]))
        >>> report.succeeded, report.failed
        (1, 0)
    """
    report = CampaignReport()
    for scenario in scenarios:
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = _run_once(scenario, check_invariants)
            except Exception as exc:
                may_retry = (
                    retry_stochastic and scenario.stochastic and attempts == 1
                )
                if may_retry:
                    continue
                error_class = (
                    type(exc).__name__
                    if isinstance(exc, LineSearchError)
                    else f"{type(exc).__module__}.{type(exc).__name__}"
                )
                report.results.append(
                    ScenarioResult(
                        spec=scenario.spec,
                        ok=False,
                        attempts=attempts,
                        error=error_class,
                        error_message=str(exc),
                    )
                )
                break
            ratio = (
                outcome.competitive_ratio
                if math.isfinite(outcome.detection_time)
                else None
            )
            report.results.append(
                ScenarioResult(
                    spec=scenario.spec,
                    ok=True,
                    attempts=attempts,
                    detection_time=outcome.detection_time,
                    competitive_ratio=ratio,
                    detecting_robot=outcome.detecting_robot,
                    faulty_robots=tuple(sorted(outcome.faulty_robots)),
                )
            )
            break
    return report
