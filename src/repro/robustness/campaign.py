"""Chaos campaigns: seeded scenario batches with per-scenario isolation.

A *campaign* executes many search scenarios — fleets × targets × fault
specs — and never lets one bad scenario abort the sweep.  Each scenario
runs inside its own fault boundary: any exception (a broken fault model,
a speed-violating trajectory, an invariant audit failure, …) is captured
into a structured :class:`ScenarioResult` carrying the error class, the
seed, and the declarative :class:`ScenarioSpec`, so every failure is
replayable in isolation.  Stochastic scenarios that fail are retried
once before being recorded — a transient unlucky draw should not
pollute a robustness report.

The declarative layer is deliberately small: a :class:`ScenarioSpec`
names an ``(n, f)`` fleet (built with the paper's regime rules), a
target, a fault spec string, and a seed.  Fault spec strings cover the
whole taxonomy::

    none                   no faults
    adversarial            the paper's worst-case adversary, budget f
    random                 uniformly random f-subset (seeded)
    fixed                  robots 0..f-1 are crash-detection faulty
    crash_stop:T           robots 0..f-1 halt at T*(i+1)
    byzantine:T1;T2;...    robots 0..f-1 raise false alarms at the T_i
    byzantine_adversarial:T1;T2;...
                           worst-case liar placement: the f first
                           visitors of the target lie at the T_i
    probabilistic:P        robots 0..f-1 detect each visit w.p. P (seeded)

A spec may additionally name a ``protocol``: ``"none"`` (the engine's
first-detection termination) or ``"confirmation"`` — the Byzantine
voting layer of :mod:`repro.byzantine`, under which a claim commits
only after ``f + 1`` confirmations and lying robots cannot terminate
the search at a false point.

A spec may also name a ``mode``: ``"sync"`` (the default continuous
synchronous engine) or an activation-scheduler spec such as
``"event"``, ``"event:adversarial:1.0"``, or ``"event:ssync:0.5"`` —
the discrete-event engine of :mod:`repro.async_sched`, where robots
advance their plans only when the scheduler activates them (see
:func:`repro.async_sched.scheduler_from_spec` for the grammar).
Confirmation-protocol scenarios compose: the Byzantine simulation
receives the scheduler's per-robot timelines.

Finally, a spec may name a ``variant`` — the *problem* being solved:
``"line"`` (the source paper's whole-line search, the default),
``"halfline"`` (p-faulty search on a ray, arXiv:2002.07797), or
``"evacuation"`` (commit-then-gather with a near majority of faulty
agents, arXiv:2605.08355).  Non-line specs are realized and executed by
the matching :class:`~repro.variants.base.ProblemVariant`; line specs
behave bit-for-bit as before the field existed (the parity harness of
:mod:`repro.variants.parity` pins this).

Programmatic callers can bypass the DSL entirely by handing
:func:`run_campaign` arbitrary :class:`Scenario` objects whose ``build``
callables produce any fleet/fault-model pair — including deliberately
broken ones, which is exactly how the test suite chaos-tests the engine.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError, LineSearchError
from repro.robots.faults import (
    AdversarialFaults,
    BehavioralFaults,
    ByzantineAdversary,
    ByzantineFalseAlarmFault,
    CrashStopFault,
    FaultModel,
    FixedFaults,
    ProbabilisticDetectionFault,
    RandomFaults,
)
from repro.robots.fleet import Fleet
from repro.simulation.engine import SearchSimulation

__all__ = [
    "FAULT_KINDS",
    "PROTOCOLS",
    "VARIANTS",
    "CampaignReport",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "chaos_scenarios",
    "run_campaign",
    "scenario_key",
]

#: Fault spec kinds understood by :class:`ScenarioSpec`.
FAULT_KINDS = (
    "none",
    "adversarial",
    "random",
    "fixed",
    "crash_stop",
    "byzantine",
    "byzantine_adversarial",
    "probabilistic",
)

#: Termination protocols understood by :class:`ScenarioSpec`.
PROTOCOLS = ("none", "confirmation")

#: Problem variants understood by :class:`ScenarioSpec`.  Mirrors
#: :data:`repro.variants.base.VARIANT_NAMES` (pinned by tests; kept as a
#: literal here so spec validation needs no variant import).
VARIANTS = ("line", "halfline", "evacuation")


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative recipe for one scenario — everything a replay needs.

    Examples:
        >>> spec = ScenarioSpec(n=3, f=1, target=2.0, fault="adversarial", seed=7)
        >>> spec.describe()
        'A(3,1) target=2 fault=adversarial seed=7'
    """

    n: int
    f: int
    target: float
    fault: str = "adversarial"
    seed: Optional[int] = None
    protocol: str = "none"
    mode: str = "sync"
    variant: str = "line"

    def describe(self) -> str:
        """One-line summary."""
        suffix = (
            f" protocol={self.protocol}" if self.protocol != "none" else ""
        )
        if self.mode != "sync":
            suffix += f" mode={self.mode}"
        if self.variant != "line":
            suffix += f" variant={self.variant}"
        return (
            f"A({self.n},{self.f}) target={self.target:g} "
            f"fault={self.fault} seed={self.seed}{suffix}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        The defaults ``protocol="none"``, ``mode="sync"``, and
        ``variant="line"`` are *omitted* so every digest, journal key,
        and golden report produced before those fields existed stays
        byte-identical.
        """
        data = {
            "n": self.n,
            "f": self.f,
            "target": self.target,
            "fault": self.fault,
            "seed": self.seed,
        }
        if self.protocol != "none":
            data["protocol"] = self.protocol
        if self.mode != "sync":
            data["mode"] = self.mode
        if self.variant != "line":
            data["variant"] = self.variant
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            n=int(data["n"]),
            f=int(data["f"]),
            target=float(data["target"]),
            fault=str(data["fault"]),
            seed=None if data.get("seed") is None else int(data["seed"]),
            protocol=str(data.get("protocol", "none")),
            mode=str(data.get("mode", "sync")),
            variant=str(data.get("variant", "line")),
        )


def scenario_key(spec: ScenarioSpec) -> str:
    """Deterministic identity of a spec, stable across processes and runs.

    The campaign journal keys every outcome by this digest so a resumed
    campaign can recognize already-completed scenarios regardless of
    execution order, worker placement, or interpreter restarts.

    Examples:
        >>> a = scenario_key(ScenarioSpec(3, 1, 2.0, "none", 7))
        >>> b = scenario_key(ScenarioSpec(3, 1, 2.0, "none", 7))
        >>> a == b
        True
        >>> a == scenario_key(ScenarioSpec(3, 1, 2.0, "none", 8))
        False
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class Scenario:
    """An executable scenario: a spec plus the factory realizing it.

    ``build`` is called fresh on every attempt (including retries) and
    returns the fleet and fault model to simulate.  Custom scenarios may
    pair any spec with any factory — the spec is documentation and
    replay metadata, the factory is the truth.

    ``method="batch"`` opts the scenario into the analytic fast path of
    :mod:`repro.batch` where its semantics are expressible there — the
    pure crash-detection fault models, with invariant auditing off.
    Everything else (behavioral faults, audited runs) silently uses the
    event engine, which remains the oracle.
    """

    spec: ScenarioSpec
    build: Callable[[], Tuple[Fleet, FaultModel]]
    stochastic: bool = False
    method: str = "event"


@dataclass(frozen=True)
class ScenarioResult:
    """The isolated outcome of one scenario, success or failure.

    ``attempt_errors`` records the error class and message of *every*
    failed attempt, not just the last one — a scenario that succeeded
    on its second try still carries the transient error that cost it
    the first attempt.
    """

    spec: ScenarioSpec
    ok: bool
    attempts: int = 1
    detection_time: Optional[float] = None
    competitive_ratio: Optional[float] = None
    detecting_robot: Optional[int] = None
    faulty_robots: Tuple[int, ...] = ()
    error: Optional[str] = None
    error_message: Optional[str] = None
    attempt_errors: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line summary."""
        if self.ok:
            detection = (
                f"T={self.detection_time:.6g}"
                if self.detection_time is not None
                and math.isfinite(self.detection_time)
                else "undetected"
            )
            return f"ok   {self.spec.describe()}: {detection}"
        retried = " (retried)" if self.attempts > 1 else ""
        return (
            f"FAIL {self.spec.describe()}: {self.error}: "
            f"{self.error_message}{retried}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        Non-finite detection times (an undetected target) are encoded
        as strings so the output stays strict JSON.
        """
        detection = self.detection_time
        if detection is not None and not math.isfinite(detection):
            detection = repr(detection)
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "attempts": self.attempts,
            "detection_time": detection,
            "competitive_ratio": self.competitive_ratio,
            "detecting_robot": self.detecting_robot,
            "faulty_robots": list(self.faulty_robots),
            "error": self.error,
            "error_message": self.error_message,
            "attempt_errors": list(self.attempt_errors),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        detection = data.get("detection_time")
        if isinstance(detection, str):
            detection = float(detection)
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            ok=bool(data["ok"]),
            attempts=int(data.get("attempts", 1)),
            detection_time=detection,
            competitive_ratio=data.get("competitive_ratio"),
            detecting_robot=data.get("detecting_robot"),
            faulty_robots=tuple(data.get("faulty_robots", ())),
            error=data.get("error"),
            error_message=data.get("error_message"),
            attempt_errors=tuple(data.get("attempt_errors", ())),
        )


@dataclass
class CampaignReport:
    """Aggregated results of a campaign, failures isolated and replayable."""

    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of scenarios executed."""
        return len(self.results)

    @property
    def succeeded(self) -> int:
        """Number of scenarios that completed without error."""
        return sum(1 for r in self.results if r.ok)

    @property
    def failed(self) -> int:
        """Number of scenarios captured as failures."""
        return self.total - self.succeeded

    def failures(self) -> List[ScenarioResult]:
        """The failed results, in execution order."""
        return [r for r in self.results if not r.ok]

    def error_counts(self) -> Dict[str, int]:
        """Failure tally per error class."""
        counts: Dict[str, int] = {}
        for result in self.failures():
            counts[result.error or "?"] = counts.get(result.error or "?", 0) + 1
        return counts

    def describe(self, max_failures: int = 10) -> str:
        """Multi-line campaign summary."""
        lines = [
            f"chaos campaign: {self.succeeded}/{self.total} scenarios ok, "
            f"{self.failed} failure(s) isolated"
        ]
        for error, count in sorted(self.error_counts().items()):
            lines.append(f"  {error}: {count}")
        shown = self.failures()[:max_failures]
        if shown:
            lines.append("first failures (replay via spec + seed):")
            lines.extend("  " + r.describe() for r in shown)
            hidden = self.failed - len(shown)
            if hidden > 0:
                lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`."""
        return {
            "format": "linesearch-campaign-report",
            "version": 1,
            "total": self.total,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            results=[ScenarioResult.from_dict(r) for r in data["results"]]
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the report as a durable JSON artifact.

        The encoding is canonical (sorted keys), so two reports with
        equal results serialize byte-identically — the resume tests
        rely on this.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        """Rebuild a report from :meth:`to_json` output.

        Examples:
            >>> report = CampaignReport()
            >>> CampaignReport.from_json(report.to_json()).total
            0
        """
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# spec realization
# ----------------------------------------------------------------------

def _algorithm_for(n: int, f: int):
    from repro.schedule import algorithm_for

    return algorithm_for(n, f)


def _fault_model_for(spec: ScenarioSpec) -> Tuple[FaultModel, bool]:
    """Realize the fault spec string; returns ``(model, stochastic)``."""
    kind, _, argument = spec.fault.partition(":")
    seed = spec.seed
    if kind == "none":
        return AdversarialFaults(0), False
    if kind == "adversarial":
        return AdversarialFaults(spec.f), False
    if kind == "random":
        return RandomFaults(spec.f, seed=seed), True
    if kind == "fixed":
        if argument:
            indices = [int(i) for i in argument.split(",")]
        else:
            indices = list(range(spec.f))
        return FixedFaults(indices), False
    if kind == "crash_stop":
        halt = float(argument) if argument else 2.0
        return (
            BehavioralFaults(
                {i: CrashStopFault(halt * (i + 1)) for i in range(spec.f)}
            ),
            False,
        )
    if kind == "byzantine":
        alarms = (
            [float(t) for t in argument.split(";")] if argument else [0.5, 1.5]
        )
        return (
            BehavioralFaults(
                {i: ByzantineFalseAlarmFault(alarms) for i in range(spec.f)}
            ),
            False,
        )
    if kind == "byzantine_adversarial":
        alarms = (
            [float(t) for t in argument.split(";")] if argument else [0.5, 1.5]
        )
        return ByzantineAdversary(spec.f, alarm_times=alarms), False
    if kind == "probabilistic":
        p = float(argument) if argument else 0.5
        base = seed if seed is not None else 0
        return (
            BehavioralFaults(
                {
                    i: ProbabilisticDetectionFault(p, seed=base + i)
                    for i in range(spec.f)
                }
            ),
            True,
        )
    raise InvalidParameterError(
        f"unknown fault spec {spec.fault!r}; kinds: {', '.join(FAULT_KINDS)}"
    )


def _line_realize(spec: ScenarioSpec) -> Fleet:
    """The fleet for a ``variant="line"`` spec: the regime schedule, or
    the confirmation schedule when the protocol demands it."""
    if spec.protocol == "confirmation":
        from repro.schedule.byzantine import ByzantineConfirmationAlgorithm

        algorithm = ByzantineConfirmationAlgorithm(spec.n, spec.f)
    else:
        algorithm = _algorithm_for(spec.n, spec.f)
    return Fleet.from_algorithm(algorithm)


@dataclass(frozen=True)
class _SpecRealizer:
    """Picklable scenario factory: realize ``spec`` on every call.

    A module-level class rather than a closure so spec-built scenarios
    survive pickling — the parallel executor ships them to worker
    processes by value.  Non-line variants delegate to their
    :class:`~repro.variants.base.ProblemVariant` (imported lazily in
    the worker, so the variant package never loads for plain specs).
    """

    spec: ScenarioSpec

    def __call__(self) -> Tuple[Fleet, FaultModel]:
        if getattr(self.spec, "variant", "line") != "line":
            from repro.variants import variant_for

            return variant_for(self.spec.variant).realize(self.spec)
        model, _ = _fault_model_for(self.spec)
        return _line_realize(self.spec), model


def build_scenario(spec: ScenarioSpec, method: str = "event") -> Scenario:
    """Realize a declarative spec into an executable scenario.

    The returned scenario's factory is picklable, so it can be
    dispatched to the parallel executor's worker processes as-is.

    Examples:
        >>> scenario = build_scenario(ScenarioSpec(3, 1, 2.0, "crash_stop:1.5"))
        >>> fleet, model = scenario.build()
        >>> fleet.size
        3
    """
    if method not in ("event", "batch"):
        raise InvalidParameterError(
            f"method must be 'event' or 'batch', got {method!r}"
        )
    if spec.protocol not in PROTOCOLS:
        raise InvalidParameterError(
            f"unknown protocol {spec.protocol!r}; "
            f"protocols: {', '.join(PROTOCOLS)}"
        )
    if spec.variant not in VARIANTS:
        raise InvalidParameterError(
            f"unknown variant {spec.variant!r}; "
            f"variants: {', '.join(VARIANTS)}"
        )
    if spec.variant != "line":
        # Eagerly reject infeasible variant specs (e.g. evacuation
        # without a reliable majority) at build time.
        from repro.variants import variant_for

        variant_for(spec.variant).validate_spec(spec)
    if spec.mode != "sync":
        # Eagerly parse so a bad mode fails at build time, not inside a
        # worker process mid-campaign.
        from repro.async_sched.schedulers import scheduler_from_spec

        scheduler_from_spec(spec.mode)
    _, stochastic = _fault_model_for(spec)
    return Scenario(
        spec=spec,
        build=_SpecRealizer(spec),
        stochastic=stochastic,
        method=method,
    )


def chaos_scenarios(
    pairs: Sequence[Tuple[int, int]],
    targets: Sequence[float],
    faults: Sequence[str] = FAULT_KINDS,
    seed: int = 0,
    method: str = "event",
    protocol: str = "none",
    mode: str = "sync",
    variant: str = "line",
) -> List[Scenario]:
    """The full seeded grid of scenarios: pairs × targets × fault specs.

    Per-scenario seeds are drawn from a master generator, so the whole
    campaign is reproducible from ``seed`` alone and every entry is
    replayable from its own recorded seed.

    ``method="batch"`` marks every generated scenario for the analytic
    fast path; scenarios whose fault model the batch subsystem cannot
    express (behavioral faults) still run through the engine.
    ``protocol="confirmation"`` runs every scenario under the Byzantine
    voting layer — confirmation scenarios always use the event-level
    protocol simulation, since the batch kernels have no claim/vote
    semantics.  A non-default ``mode`` (an activation-scheduler spec,
    e.g. ``"event:adversarial:1.0"``) runs every scenario through the
    discrete-event engine; the per-scenario seed also seeds the
    scheduler, so the whole campaign stays replayable from its spec.
    A non-default ``variant`` sweeps the grid over that problem variant
    instead (e.g. ``variant="halfline"``); variant scenarios always
    execute through their variant's own dispatch, never the batch fast
    path.

    Examples:
        >>> grid = chaos_scenarios([(3, 1)], [1.0, -2.0], ["none", "random"])
        >>> len(grid)
        4
    """
    master = random.Random(seed)
    scenarios: List[Scenario] = []
    for n, f in pairs:
        for target in targets:
            for fault in faults:
                spec = ScenarioSpec(
                    n=n,
                    f=f,
                    target=target,
                    fault=fault,
                    seed=master.randrange(2**32),
                    protocol=protocol,
                    mode=mode,
                    variant=variant,
                )
                scenarios.append(build_scenario(spec, method=method))
    return scenarios


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _batch_outcome(fleet: Fleet, model: FaultModel, target: float):
    """Run one scenario through the batch kernels, or ``None`` when its
    fault model is not expressible there.

    Only the pure crash-detection models qualify (exact types — a
    subclass may override semantics): the adversarial worst case maps to
    ``T_{f+1}``, and fixed/random subsets map to a column min over the
    reliable robots.  Behavioral models (crash-stop, Byzantine,
    probabilistic) shape trajectories or detection draws in ways the
    first-visit matrix does not capture, so they stay on the engine.
    """
    import math as _math

    from repro.batch import BatchEvaluator
    from repro.core.tolerance import times_close
    from repro.simulation.metrics import SearchOutcome

    if type(model) is AdversarialFaults:
        evaluator = BatchEvaluator(fleet, fault_budget=model.fault_budget)
        detection_time = evaluator.search_times([target])[0]
        faulty = frozenset(model.assign(fleet, target))
    elif type(model) in (FixedFaults, RandomFaults):
        faulty = frozenset(model.assign(fleet, target))
        evaluator = BatchEvaluator(fleet, fault_budget=model.fault_budget)
        detection_time = evaluator.detection_times([target], faulty)[0]
    else:
        return None
    detecting = None
    if _math.isfinite(detection_time):
        for robot in fleet:
            if robot.index in faulty:
                continue
            t = robot.trajectory.first_visit_time(target)
            if t is not None and times_close(t, detection_time):
                detecting = robot.index
                break
    return SearchOutcome(
        target=target,
        detection_time=detection_time,
        detecting_robot=detecting,
        faulty_robots=faulty,
        events=(),
    )


def _dispatch_engines(
    scenario: Scenario,
    fleet: Fleet,
    model: FaultModel,
    check_invariants: bool,
    allow_batch: bool = True,
):
    """Route one realized scenario to the right execution engine.

    Shared by the line path of :func:`_run_once` and by variants whose
    termination predicate matches the base problem (the half-line
    variant reuses it verbatim, with ``allow_batch=False`` since the
    batch kernels assume whole-line fleets).
    """
    mode = getattr(scenario.spec, "mode", "sync")
    if getattr(scenario.spec, "protocol", "none") == "confirmation":
        # The confirmation protocol is inherently event-level (claims,
        # votes, diversions): ``method="batch"`` scenarios fall back to
        # the protocol simulation here, and the *service* rejects the
        # combination up front so API clients are never silently
        # downgraded.
        from repro.byzantine.simulate import ByzantineSearchSimulation

        timelines = None
        if mode != "sync":
            from repro.async_sched.engine import timelines_for
            from repro.async_sched.schedulers import scheduler_from_spec

            timelines = timelines_for(
                [r.effective_trajectory for r in fleet],
                scheduler_from_spec(mode),
                scenario.spec.target,
                seed=scenario.spec.seed or 0,
            )
        return ByzantineSearchSimulation(
            fleet,
            scenario.spec.target,
            fault_model=model,
            check_invariants=check_invariants,
            timelines=timelines,
        ).run()
    if mode != "sync":
        # Scheduled-time scenarios always render through the discrete-
        # event engine — the batch kernels have no notion of wall time.
        from repro.async_sched.engine import EventEngine
        from repro.async_sched.schedulers import scheduler_from_spec

        return EventEngine(
            fleet,
            scenario.spec.target,
            scheduler=scheduler_from_spec(mode),
            fault_model=model,
            seed=scenario.spec.seed or 0,
            check_invariants=check_invariants,
        ).run(with_events=check_invariants)
    # The batch fast path produces no event log, so the invariant audit
    # (which needs one) forces the engine; the engine is the oracle.
    if (
        allow_batch
        and getattr(scenario, "method", "event") == "batch"
        and not check_invariants
    ):
        outcome = _batch_outcome(fleet, model, scenario.spec.target)
        if outcome is not None:
            return outcome
    simulation = SearchSimulation(
        fleet,
        scenario.spec.target,
        fault_model=model,
        check_invariants=check_invariants,
    )
    return simulation.run(with_events=check_invariants)


def _run_once(scenario: Scenario, check_invariants: bool):
    variant = getattr(scenario.spec, "variant", "line")
    if variant != "line":
        from repro.variants import variant_for

        return variant_for(variant).run(
            scenario, check_invariants=check_invariants
        )
    fleet, model = scenario.build()
    return _dispatch_engines(
        scenario, fleet, model, check_invariants, allow_batch=True
    )


def error_class_of(exc: BaseException) -> str:
    """The error label recorded on results: bare name for library errors,
    module-qualified for foreign exceptions."""
    if isinstance(exc, LineSearchError):
        return type(exc).__name__
    return f"{type(exc).__module__}.{type(exc).__name__}"


def run_campaign(
    scenarios: Iterable[Scenario],
    check_invariants: bool = True,
    retry_stochastic: bool = True,
    retry_policy=None,
    executor=None,
) -> CampaignReport:
    """Execute scenarios with per-scenario fault isolation.

    A scenario that raises — during fleet construction, fault
    assignment, simulation, or the invariant audit — is captured as a
    failed :class:`ScenarioResult` and the campaign continues.  By
    default stochastic scenarios get one retry before their failure is
    recorded; pass a :class:`~repro.robustness.executor.RetryPolicy`
    to change attempts/backoff, or a fully configured
    :class:`~repro.robustness.executor.CampaignExecutor` via
    ``executor=`` for parallel workers, watchdog timeouts, and the
    crash-safe journal.

    Examples:
        >>> report = run_campaign(chaos_scenarios([(3, 1)], [2.0], ["none"]))
        >>> report.succeeded, report.failed
        (1, 0)
    """
    from repro.robustness.executor import CampaignExecutor, RetryPolicy

    if executor is None:
        if retry_policy is None:
            retry_policy = (
                RetryPolicy() if retry_stochastic else RetryPolicy.none()
            )
        executor = CampaignExecutor(retry_policy=retry_policy)
    return executor.execute(scenarios, check_invariants=check_invariants)
