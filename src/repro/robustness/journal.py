"""Crash-safe campaign journal: durable JSONL, atomic flushes, resume.

Every scenario outcome a campaign produces is appended to a journal so
that a crash — of the driver, the machine, or a ``kill -9`` mid-sweep —
throws away at most the scenarios still in flight.  Restarting with
``resume`` skips every journaled scenario and reproduces the exact
report an uninterrupted run would have produced (scenarios are seeded,
so replayed and resumed results are identical).

Durability model
----------------
The journal is a JSONL file: one header line identifying the format,
then one entry per completed scenario.  A flush never mutates the live
file in place — the full contents are written to a sibling temp file
and atomically renamed over the journal (``os.replace``), so readers
never observe a torn write.  Flushes happen on every record; an
``fsync`` (of both the file and its directory) happens every
``checkpoint_every`` records, bounding the window a power loss can
erase.  The loader additionally tolerates a truncated or corrupt
trailing line, recovering every complete entry before it.

Identity
--------
Entries are keyed by :func:`~repro.robustness.campaign.scenario_key`,
the deterministic digest of the scenario's declarative spec.  Resume
matches journaled entries against the campaign's scenario list by key,
consuming duplicates in order, so a grid containing repeated specs
still resumes correctly.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List

from repro.errors import JournalError
from repro.observability import instrument as obs
from repro.robustness.campaign import Scenario, ScenarioResult, scenario_key

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "CampaignJournal",
]

JOURNAL_FORMAT = "linesearch-campaign-journal"
JOURNAL_VERSION = 1


def _fsync_directory(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CampaignJournal:
    """Append-only record of scenario outcomes with atomic persistence.

    Examples:
        >>> import tempfile, os
        >>> from repro.robustness.campaign import ScenarioSpec, ScenarioResult
        >>> path = os.path.join(tempfile.mkdtemp(), "journal.jsonl")
        >>> journal = CampaignJournal(path)
        >>> spec = ScenarioSpec(3, 1, 2.0, "none", 7)
        >>> journal.record(0, ScenarioResult(spec=spec, ok=True))
        >>> len(CampaignJournal.load(path).entries)
        1
    """

    def __init__(self, path: str, checkpoint_every: int = 1):
        if checkpoint_every < 1:
            raise JournalError("checkpoint_every must be >= 1")
        self.path = path
        self.checkpoint_every = checkpoint_every
        self.entries: List[Dict[str, Any]] = []
        self._records_since_checkpoint = 0

    # -- persistence ---------------------------------------------------

    def _lines(self) -> Iterable[str]:
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}
        yield json.dumps(header, sort_keys=True)
        for entry in self.entries:
            yield json.dumps(entry, sort_keys=True)

    def flush(self, fsync: bool = False) -> None:
        """Write the full journal to a temp file and atomically rename.

        The live journal file therefore always holds a complete,
        well-formed prefix of the campaign — a crash between flushes
        loses only unflushed entries, never corrupts flushed ones.
        """
        started = time.perf_counter() if obs.is_enabled() else 0.0
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for line in self._lines():
                handle.write(line + "\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        if fsync:
            _fsync_directory(self.path)
        if obs.is_enabled():
            obs.count("journal_flushes_total", fsync=fsync)
            obs.observe(
                "journal_flush_seconds", time.perf_counter() - started
            )

    def record(self, index: int, result: ScenarioResult) -> None:
        """Append one outcome and persist it.

        Every record triggers an atomic flush; every
        ``checkpoint_every``-th record additionally fsyncs the file and
        its directory, so at most ``checkpoint_every - 1`` outcomes sit
        in the OS page cache at any moment.
        """
        self.entries.append(
            {
                "key": scenario_key(result.spec),
                "index": index,
                "result": result.to_dict(),
            }
        )
        self._records_since_checkpoint += 1
        checkpoint = self._records_since_checkpoint >= self.checkpoint_every
        self.flush(fsync=checkpoint)
        if checkpoint:
            self._records_since_checkpoint = 0

    # -- recovery ------------------------------------------------------

    @classmethod
    def load(cls, path: str, checkpoint_every: int = 1) -> "CampaignJournal":
        """Read a journal back, recovering past a torn trailing line.

        Raises :class:`~repro.errors.JournalError` if the file is
        missing or its header names a format we do not understand.
        """
        if not os.path.exists(path):
            raise JournalError(f"no journal at {path!r}")
        journal = cls(path, checkpoint_every=checkpoint_every)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise JournalError(f"journal {path!r} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise JournalError(f"journal {path!r} has a corrupt header") from None
        if (
            not isinstance(header, dict)
            or header.get("format") != JOURNAL_FORMAT
        ):
            raise JournalError(f"{path!r} is not a campaign journal")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path!r} has version {header.get('version')!r}; "
                f"this library reads version {JOURNAL_VERSION}"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn final write — everything before it is good
            if not isinstance(entry, dict) or "result" not in entry:
                break
            journal.entries.append(entry)
        return journal

    def results(self) -> List[ScenarioResult]:
        """Every journaled outcome, in record order."""
        return [ScenarioResult.from_dict(e["result"]) for e in self.entries]

    def match(
        self, scenarios: Iterable[Scenario]
    ) -> Dict[int, ScenarioResult]:
        """Pair journaled outcomes with the campaign's scenario list.

        Returns ``{scenario index: recorded result}`` for every
        scenario whose spec key appears in the journal.  Duplicate
        specs are consumed in journal order, one entry per occurrence.
        """
        by_key: Dict[str, List[ScenarioResult]] = {}
        for entry in self.entries:
            by_key.setdefault(entry["key"], []).append(
                ScenarioResult.from_dict(entry["result"])
            )
        completed: Dict[int, ScenarioResult] = {}
        for index, scenario in enumerate(scenarios):
            bucket = by_key.get(scenario_key(scenario.spec))
            if bucket:
                completed[index] = bucket.pop(0)
        return completed
