"""Resilient campaign execution: worker pools, watchdogs, retries, resume.

:func:`~repro.robustness.campaign.run_campaign` historically ran every
scenario sequentially in-process with a hard-coded retry-once for
stochastic scenarios.  That substrate cannot survive the workloads the
stochastic and Byzantine fault models demand: one hung scenario stalls
the whole sweep, one driver crash throws away hours of completed
results.  :class:`CampaignExecutor` replaces it with:

* **Parallel workers** — scenarios are dispatched to a pool of worker
  processes (``jobs=N``).  Spec-built scenarios are pickled by value;
  scenarios whose factories cannot be pickled (ad-hoc closures) fall
  back to in-process execution and are documented as such.
* **Watchdog timeouts** — each dispatch carries a wall-clock deadline.
  An overdue worker is killed and the scenario is recorded as a
  structured :class:`~repro.errors.ScenarioTimeoutError` failure; the
  rest of the sweep continues on a replacement worker.
* **Crash recovery** — a worker that dies mid-scenario has its
  in-flight scenario requeued exactly once (the dead runner excluded);
  a second death records a :class:`~repro.errors.WorkerCrashError`.
* **Retry policy** — :class:`RetryPolicy` generalizes retry-once:
  configurable attempt budget and exponential backoff with
  deterministic seeded jitter, so two runs of the same campaign back
  off identically.
* **Crash-safe journal** — with ``journal_path`` every outcome is
  persisted through :class:`~repro.robustness.journal.CampaignJournal`;
  ``resume=True`` skips journaled scenarios and reproduces the exact
  report of an uninterrupted run.
* **Telemetry** — when :mod:`repro.observability` collection is
  enabled, every scenario traces a span (worker attempts flush theirs
  back through the result pipes and are re-parented under it) and the
  executor counts completions, failures, retries, watchdog kills, and
  worker crashes; disabled, the instrumentation costs one ``is None``
  test per call site.

Results are assembled in scenario order regardless of completion
order, so parallel and sequential runs of the same seeded grid produce
identical reports.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import CampaignInterrupted, InvalidParameterError
from repro.observability import instrument as obs
from repro.robustness.campaign import (
    CampaignReport,
    Scenario,
    ScenarioResult,
    _run_once,
    error_class_of,
)
from repro.robustness.journal import CampaignJournal

__all__ = [
    "CampaignExecutor",
    "RetryPolicy",
]

#: Seconds between watchdog sweeps of the worker pool.
_POLL_INTERVAL = 0.05


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """When and how failed scenario attempts are retried.

    The default — two total attempts for stochastic scenarios, none
    for deterministic ones, zero backoff — reproduces the historical
    retry-once behavior of ``run_campaign`` exactly.

    Backoff for attempt ``k`` (1-based, the attempt that just failed)
    is ``backoff_base * backoff_factor ** (k - 1)``, scaled by a
    deterministic jitter of up to ``±jitter`` (relative) drawn from the
    scenario's seed, so identical campaigns back off identically.

    Examples:
        >>> RetryPolicy().max_attempts
        2
        >>> RetryPolicy.none().max_attempts
        1
        >>> policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0)
        >>> [policy.delay(k, seed=7) for k in (1, 2, 3)]
        [1.0, 2.0, 4.0]
        >>> jittered = RetryPolicy(backoff_base=1.0, jitter=0.5)
        >>> jittered.delay(1, seed=7) == jittered.delay(1, seed=7)
        True
    """

    max_attempts: int = 2
    retry_deterministic: bool = False
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InvalidParameterError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise InvalidParameterError("backoff must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError("jitter must be in [0, 1]")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Never retry: every scenario gets exactly one attempt."""
        return cls(max_attempts=1)

    def should_retry(self, scenario: Scenario, attempts: int) -> bool:
        """Whether a scenario that just failed its ``attempts``-th
        attempt deserves another."""
        if attempts >= self.max_attempts:
            return False
        return scenario.stochastic or self.retry_deterministic

    def delay(self, attempts: int, seed: Optional[int] = None) -> float:
        """Backoff before the next attempt, deterministic in ``seed``."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_factor ** (attempts - 1)
        if self.jitter:
            rng = random.Random(
                (0 if seed is None else seed) ^ (attempts * 0x9E3779B1)
            )
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


# ----------------------------------------------------------------------
# single attempts (shared by the inline path and the workers)
# ----------------------------------------------------------------------

def _attempt_payload(
    scenario: Scenario, check_invariants: bool, telemetry: bool = False
) -> Dict[str, Any]:
    """Run one attempt and flatten the outcome into a picklable dict.

    With ``telemetry=True`` (the worker-process path) the attempt runs
    under a *fresh* in-memory :class:`~repro.observability.instrument.
    Telemetry`, whose finished spans and metric snapshot are flushed
    into the payload under ``"telemetry"`` — this is how traces cross
    the worker's result pipe back to the parent.  Inline attempts run
    under whatever telemetry is ambient and carry nothing extra.
    """
    import math

    previous = active = None
    if telemetry:
        active = obs.Telemetry()
        previous = obs.configure(active)
    try:
        with obs.span(
            "campaign.attempt",
            fault=scenario.spec.fault,
            seed=scenario.spec.seed,
        ) as attempt_span:
            try:
                outcome = _run_once(scenario, check_invariants)
            except Exception as exc:
                attempt_span.set(error=error_class_of(exc))
                payload: Dict[str, Any] = {
                    "ok": False,
                    "error": error_class_of(exc),
                    "error_message": str(exc),
                }
            else:
                detected = math.isfinite(outcome.detection_time)
                payload = {
                    "ok": True,
                    "detection_time": outcome.detection_time,
                    "competitive_ratio": (
                        outcome.competitive_ratio if detected else None
                    ),
                    "detecting_robot": outcome.detecting_robot,
                    "faulty_robots": tuple(sorted(outcome.faulty_robots)),
                }
    finally:
        if telemetry:
            obs.configure(previous)
    if active is not None:
        payload["telemetry"] = {
            "spans": active.tracer.drain(),
            "metrics": active.metrics.snapshot(),
        }
    return payload


def _result_from_payload(
    scenario: Scenario,
    payload: Dict[str, Any],
    attempts: int,
    attempt_errors: List[str],
) -> ScenarioResult:
    if payload["ok"]:
        return ScenarioResult(
            spec=scenario.spec,
            ok=True,
            attempts=attempts,
            detection_time=payload["detection_time"],
            competitive_ratio=payload["competitive_ratio"],
            detecting_robot=payload["detecting_robot"],
            faulty_robots=tuple(payload["faulty_robots"]),
            attempt_errors=tuple(attempt_errors),
        )
    return ScenarioResult(
        spec=scenario.spec,
        ok=False,
        attempts=attempts,
        error=payload["error"],
        error_message=payload["error_message"],
        attempt_errors=tuple(attempt_errors),
    )


def _worker_main(
    conn, check_invariants: bool, telemetry_enabled: bool = False
) -> None:
    """Worker process loop: receive pickled scenarios, send payloads."""
    # On fork platforms the child inherits the parent's live telemetry;
    # drop it so worker attempts trace into their own fresh sinks.
    obs.configure(None)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, blob = message
        scenario = pickle.loads(blob)
        try:
            conn.send(
                (
                    index,
                    _attempt_payload(
                        scenario, check_invariants,
                        telemetry=telemetry_enabled,
                    ),
                )
            )
        except (BrokenPipeError, OSError):  # parent went away
            break


# ----------------------------------------------------------------------
# pool bookkeeping
# ----------------------------------------------------------------------

@dataclass
class _Task:
    """One scenario's journey through the pool: attempts, crashes, backoff."""

    index: int
    scenario: Scenario
    blob: bytes
    attempts: int = 0
    crashes: int = 0
    not_before: float = 0.0
    elapsed: float = 0.0
    errors: List[str] = field(default_factory=list)
    excluded_workers: Set[int] = field(default_factory=set)
    span_blobs: List[Dict[str, Any]] = field(default_factory=list)


class _Worker:
    """Handle on one worker process and its private pipe."""

    __slots__ = ("ident", "process", "conn", "task", "started")

    def __init__(self, ident: int, process, conn):
        self.ident = ident
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.started = 0.0


def _pool_context():
    """Fork where the platform has it (cheap, inherits imports), else
    the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

class CampaignExecutor:
    """Resilient campaign runner: the execution substrate behind
    :func:`~repro.robustness.campaign.run_campaign`.

    Args:
        jobs: worker processes.  ``1`` with no ``timeout`` runs
            in-process (the historical behavior).
        timeout: per-scenario wall-clock budget in seconds.  Setting a
            timeout forces the worker pool even for ``jobs=1`` so the
            watchdog can actually kill an overdue scenario.
        retry_policy: attempt budget and backoff; defaults to the
            historical retry-once-for-stochastic policy.
        journal_path: when set, every outcome is persisted to this
            crash-safe JSONL journal as it completes.
        resume: skip scenarios already recorded in ``journal_path``.
            A missing journal file starts a fresh run (so ``resume``
            is safe to pass unconditionally in CI loops).
        checkpoint_every: fsync the journal every N records.
        handle_sigterm: install a SIGTERM handler for the duration of
            :meth:`execute` (main thread only) that stops the campaign
            cooperatively: no new scenarios are dispatched, in-flight
            pooled scenarios are requeued (left un-journaled for the
            next ``resume``), the journal is checkpointed with an
            ``fsync``, and :class:`~repro.errors.CampaignInterrupted`
            is raised carrying the partial report.  The previous
            handler is restored on exit either way.

    Examples:
        >>> from repro.robustness.campaign import chaos_scenarios
        >>> executor = CampaignExecutor()
        >>> report = executor.execute(chaos_scenarios([(3, 1)], [2.0], ["none"]))
        >>> (report.succeeded, report.failed)
        (1, 0)
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        handle_sigterm: bool = True,
    ):
        if jobs < 1:
            raise InvalidParameterError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise InvalidParameterError("timeout must be positive")
        if checkpoint_every < 1:
            raise InvalidParameterError("checkpoint_every must be >= 1")
        self.jobs = jobs
        self.timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.journal_path = journal_path
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        self.handle_sigterm = handle_sigterm
        self._next_worker_ident = 0
        self._stop_requested = False
        self._stop_check: Optional[Callable[[], bool]] = None

    # -- public API ----------------------------------------------------

    def execute(
        self,
        scenarios: Iterable[Scenario],
        check_invariants: bool = True,
        stop_check: Optional[Callable[[], bool]] = None,
        on_result: Optional[Callable[[int, ScenarioResult], None]] = None,
    ) -> CampaignReport:
        """Run the campaign and return its report.

        Results appear in scenario order regardless of worker
        completion order, so parallel, sequential, and resumed runs of
        the same seeded grid produce identical reports.

        Args:
            stop_check: polled between scenarios (and on every pool
                sweep); returning ``True`` stops the campaign the same
                way a SIGTERM does — journal checkpoint, then
                :class:`~repro.errors.CampaignInterrupted` with the
                partial report.  This is how the serving layer
                propagates deadlines and drain requests.
            on_result: called as ``on_result(index, result)`` the
                moment each scenario's outcome is recorded (journal
                included), in completion order — the hook behind
                progress streaming and result caches.
        """
        scenarios = list(scenarios)
        telemetry = obs.current()
        self._stop_requested = False
        self._stop_check = stop_check
        restore_handler = self._install_sigterm()
        try:
            with obs.span(
                "campaign.execute", scenarios=len(scenarios), jobs=self.jobs
            ):
                journal, completed = self._open_journal(scenarios)
                results: Dict[int, ScenarioResult] = dict(completed)

                def record(index: int, result: ScenarioResult) -> None:
                    results[index] = result
                    if telemetry is not None:
                        obs.count("scenarios_completed_total")
                        if not result.ok:
                            obs.count(
                                "scenarios_failed_total",
                                error=result.error or "?",
                            )
                        if result.attempts > 1:
                            obs.count(
                                "scenario_retries_total", result.attempts - 1
                            )
                    if journal is not None:
                        journal.record(index, result)
                    if on_result is not None:
                        on_result(index, result)

                remaining = [
                    (i, s)
                    for i, s in enumerate(scenarios)
                    if i not in completed
                ]
                if telemetry is not None:
                    obs.gauge_set("campaign_scenarios_total", len(scenarios))
                    obs.gauge_set(
                        "campaign_scenarios_resumed", len(completed)
                    )
                if self.jobs == 1 and self.timeout is None:
                    self._run_inline(remaining, check_invariants, record)
                else:
                    pooled, inline = [], []
                    for index, scenario in remaining:
                        try:
                            blob = pickle.dumps(scenario)
                        except Exception:
                            inline.append((index, scenario))
                        else:
                            pooled.append(_Task(index, scenario, blob))
                    self._run_pool(pooled, check_invariants, record)
                    # ad-hoc scenarios (unpicklable factories) cannot cross a
                    # process boundary; they run here without a watchdog
                    self._run_inline(inline, check_invariants, record)
                if self._stopping():
                    self._checkpoint_and_interrupt(
                        journal, results, len(scenarios)
                    )
        finally:
            restore_handler()
            self._stop_check = None

        return CampaignReport(
            results=[results[i] for i in sorted(results)]
        )

    # -- cooperative stop ----------------------------------------------

    def _install_sigterm(self) -> Callable[[], None]:
        """Install the graceful-stop SIGTERM handler when possible.

        Signal handlers can only live in the main thread; elsewhere
        (the serving layer's worker threads) the executor relies on
        ``stop_check`` instead.  Returns a restore callback.
        """
        if (
            not self.handle_sigterm
            or threading.current_thread() is not threading.main_thread()
        ):
            return lambda: None

        def _on_sigterm(signum, frame):
            self._stop_requested = True

        try:
            previous = signal.signal(signal.SIGTERM, _on_sigterm)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return lambda: None
        return lambda: signal.signal(signal.SIGTERM, previous)

    def _stopping(self) -> bool:
        """Whether a SIGTERM or the caller's ``stop_check`` asked us to
        stop dispatching new work."""
        if self._stop_requested:
            return True
        if self._stop_check is not None and self._stop_check():
            self._stop_requested = True
            return True
        return False

    @staticmethod
    def _checkpoint_and_interrupt(
        journal: Optional[CampaignJournal],
        results: Dict[int, ScenarioResult],
        total: int,
    ) -> None:
        """Durably checkpoint what completed, then raise
        :class:`~repro.errors.CampaignInterrupted`."""
        if journal is not None:
            journal.flush(fsync=True)
        if obs.is_enabled():
            obs.count("campaign_interrupts_total")
        remaining = total - len(results)
        report = CampaignReport(
            results=[results[i] for i in sorted(results)]
        )
        raise CampaignInterrupted(
            f"campaign stopped with {remaining} of {total} scenario(s) "
            "not yet run"
            + (
                "; the journal is checkpointed — rerun with resume to "
                "continue"
                if journal is not None
                else ""
            ),
            report=report,
            remaining=remaining,
        )

    # -- journal -------------------------------------------------------

    def _open_journal(
        self, scenarios: List[Scenario]
    ) -> Tuple[Optional[CampaignJournal], Dict[int, ScenarioResult]]:
        if not self.journal_path:
            return None, {}
        if self.resume and os.path.exists(self.journal_path):
            journal = CampaignJournal.load(
                self.journal_path, checkpoint_every=self.checkpoint_every
            )
            return journal, journal.match(scenarios)
        journal = CampaignJournal(
            self.journal_path, checkpoint_every=self.checkpoint_every
        )
        journal.flush(fsync=True)  # create (or truncate a stale journal)
        return journal, {}

    # -- in-process execution ------------------------------------------

    def _run_inline(self, tasks, check_invariants, record) -> None:
        for index, scenario in tasks:
            if self._stopping():
                return
            attempts = 0
            errors: List[str] = []
            started = time.monotonic() if obs.is_enabled() else 0.0
            with obs.span(
                "campaign.scenario",
                index=index,
                fault=scenario.spec.fault,
                n=scenario.spec.n,
                f=scenario.spec.f,
                target=scenario.spec.target,
            ) as scenario_span:
                while True:
                    attempts += 1
                    payload = _attempt_payload(scenario, check_invariants)
                    if payload["ok"]:
                        result = _result_from_payload(
                            scenario, payload, attempts, errors
                        )
                        scenario_span.set(ok=True, attempts=attempts)
                        if result.competitive_ratio is not None:
                            scenario_span.set(ratio=result.competitive_ratio)
                        record(index, result)
                        break
                    errors.append(
                        f"{payload['error']}: {payload['error_message']}"
                    )
                    if self.retry_policy.should_retry(scenario, attempts):
                        if self._stopping():
                            # requeue: leave the scenario un-journaled
                            # so a resumed run retries it from scratch
                            return
                        pause = self.retry_policy.delay(
                            attempts, scenario.spec.seed
                        )
                        if pause > 0:
                            time.sleep(pause)
                        continue
                    scenario_span.set(ok=False, attempts=attempts)
                    record(
                        index,
                        _result_from_payload(
                            scenario, payload, attempts, errors
                        ),
                    )
                    break
            if obs.is_enabled():
                obs.observe(
                    "scenario_wall_seconds", time.monotonic() - started
                )

    # -- pooled execution ----------------------------------------------

    def _run_pool(self, tasks, check_invariants, record) -> None:
        if not tasks:
            return
        context = _pool_context()
        pending: List[_Task] = list(tasks)
        workers: List[_Worker] = []
        try:
            while pending or any(w.task is not None for w in workers):
                if self._stopping():
                    # Drain: stop dispatching; in-flight scenarios are
                    # abandoned un-journaled (the pool teardown kills
                    # their workers) so a resumed run requeues them.
                    return
                now = time.monotonic()
                self._grow_pool(workers, pending, context, check_invariants)
                for worker in list(workers):
                    if worker.task is None:
                        task = self._pop_ready(pending, now, worker.ident)
                        if task is not None:
                            self._dispatch(worker, task, pending, workers)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if pending:  # everything is backing off
                        wake = min(t.not_before for t in pending)
                        time.sleep(
                            min(max(wake - now, 0.0), _POLL_INTERVAL)
                            or _POLL_INTERVAL / 10
                        )
                    continue
                ready = multiprocessing.connection.wait(
                    [w.conn for w in busy], timeout=_POLL_INTERVAL
                )
                for worker in busy:
                    if worker.conn in ready:
                        self._collect(worker, pending, record)
                now = time.monotonic()
                for worker in busy:
                    if worker.task is None:
                        continue
                    if (
                        self.timeout is not None
                        and now - worker.started > self.timeout
                    ):
                        self._handle_timeout(worker, workers, pending, record)
                    elif not worker.process.is_alive():
                        self._handle_crash(worker, workers, pending, record)
        finally:
            self._shutdown(workers)

    def _grow_pool(self, workers, pending, context, check_invariants) -> None:
        busy = sum(1 for w in workers if w.task is not None)
        target = min(self.jobs, busy + len(pending))
        while len(workers) < target:
            workers.append(self._spawn_worker(context, check_invariants))

    def _spawn_worker(self, context, check_invariants: bool) -> _Worker:
        parent_conn, child_conn = context.Pipe()
        ident = self._next_worker_ident
        self._next_worker_ident += 1
        process = context.Process(
            target=_worker_main,
            args=(child_conn, check_invariants, obs.is_enabled()),
            daemon=True,
            name=f"campaign-worker-{ident}",
        )
        process.start()
        child_conn.close()
        return _Worker(ident, process, parent_conn)

    @staticmethod
    def _pop_ready(
        pending: List[_Task], now: float, worker_ident: int
    ) -> Optional[_Task]:
        for position, task in enumerate(pending):
            if task.not_before <= now and worker_ident not in task.excluded_workers:
                return pending.pop(position)
        return None

    def _dispatch(
        self,
        worker: _Worker,
        task: _Task,
        pending: List[_Task],
        workers: List[_Worker],
    ) -> None:
        task.attempts += 1
        worker.task = task
        worker.started = time.monotonic()
        try:
            worker.conn.send((task.index, task.blob))
        except (BrokenPipeError, OSError):
            # the worker died before it ever saw the task: retire it
            # and requeue the task unpenalized
            task.attempts -= 1
            pending.append(task)
            self._retire(worker, workers)

    def _collect(self, worker: _Worker, pending, record) -> None:
        task = worker.task
        try:
            _, payload = worker.conn.recv()
        except (EOFError, OSError, pickle.UnpicklingError):
            return  # a crash — the liveness sweep will handle it
        worker.task = None
        self._ingest_attempt_telemetry(task, worker, payload)
        if payload["ok"]:
            self._record_pooled(
                task,
                record,
                _result_from_payload(
                    task.scenario, payload, task.attempts, task.errors
                ),
            )
            return
        task.errors.append(f"{payload['error']}: {payload['error_message']}")
        if self.retry_policy.should_retry(task.scenario, task.attempts):
            task.not_before = time.monotonic() + self.retry_policy.delay(
                task.attempts, task.scenario.spec.seed
            )
            pending.append(task)
        else:
            self._record_pooled(
                task,
                record,
                _result_from_payload(
                    task.scenario, payload, task.attempts, task.errors
                ),
            )

    @staticmethod
    def _ingest_attempt_telemetry(
        task: _Task, worker: _Worker, payload: Dict[str, Any]
    ) -> None:
        """Fold one worker attempt's telemetry into the parent's state.

        Metric snapshots merge immediately (they are additive and must
        survive even if the scenario is later requeued); spans
        accumulate on the task and are adopted under its
        ``campaign.scenario`` span when the final result is recorded.
        """
        telemetry = obs.current()
        if telemetry is None:
            return
        task.elapsed += time.monotonic() - worker.started
        blob = payload.get("telemetry")
        if blob:
            telemetry.metrics.merge(blob.get("metrics", {}))
            task.span_blobs.extend(blob.get("spans", ()))

    @staticmethod
    def _record_pooled(task: _Task, record, result: ScenarioResult) -> None:
        """Record a pooled scenario's result, materializing its span.

        The scenario's work happened in worker processes; the parent
        records a ``campaign.scenario`` span covering the observed wall
        clock and adopts the workers' attempt spans beneath it, so the
        merged trace nests exactly like an inline run's.
        """
        telemetry = obs.current()
        if telemetry is not None:
            attributes = dict(
                index=task.index,
                fault=task.scenario.spec.fault,
                n=task.scenario.spec.n,
                f=task.scenario.spec.f,
                target=task.scenario.spec.target,
                ok=result.ok,
                attempts=result.attempts,
            )
            if result.competitive_ratio is not None:
                attributes["ratio"] = result.competitive_ratio
            span_id = telemetry.tracer.record_span(
                "campaign.scenario",
                duration=task.elapsed,
                **attributes,
            )
            if task.span_blobs:
                telemetry.tracer.adopt(task.span_blobs, parent_id=span_id)
                task.span_blobs = []
            obs.observe("scenario_wall_seconds", task.elapsed)
        record(task.index, result)

    def _handle_timeout(self, worker, workers, pending, record) -> None:
        if worker.conn.poll():  # the result raced the watchdog — take it
            self._collect(worker, pending, record)
            if worker.task is None:
                return
        task = worker.task
        message = (
            f"scenario exceeded its wall-clock budget of {self.timeout:g}s"
        )
        task.errors.append(f"ScenarioTimeoutError: {message}")
        if obs.is_enabled():
            task.elapsed += time.monotonic() - worker.started
            obs.count("watchdog_timeouts_total")
        self._record_pooled(
            task,
            record,
            ScenarioResult(
                spec=task.scenario.spec,
                ok=False,
                attempts=task.attempts,
                error="ScenarioTimeoutError",
                error_message=message,
                attempt_errors=tuple(task.errors),
            ),
        )
        self._retire(worker, workers)

    def _handle_crash(self, worker, workers, pending, record) -> None:
        task = worker.task
        exitcode = worker.process.exitcode
        if obs.is_enabled():
            task.elapsed += time.monotonic() - worker.started
            obs.count("worker_crashes_total")
        self._retire(worker, workers)
        task.errors.append(
            f"WorkerCrashError: worker died (exit code {exitcode})"
        )
        if task.crashes == 0:
            task.crashes = 1
            task.excluded_workers.add(worker.ident)
            task.not_before = 0.0
            pending.append(task)
            return
        self._record_pooled(
            task,
            record,
            ScenarioResult(
                spec=task.scenario.spec,
                ok=False,
                attempts=task.attempts,
                error="WorkerCrashError",
                error_message=(
                    "worker process died while running the scenario "
                    f"(exit code {exitcode}); already requeued once"
                ),
                attempt_errors=tuple(task.errors),
            ),
        )

    @staticmethod
    def _retire(worker: _Worker, workers: List[_Worker]) -> None:
        worker.task = None
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        workers.remove(worker)

    @staticmethod
    def _shutdown(workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        workers.clear()
