"""Fault injection, chaos campaigns, and graceful degradation.

The robustness layer hardens the reproduction beyond the paper's single
fault model: it runs large seeded batches of scenarios across the whole
fault taxonomy (:mod:`repro.robots.behaviors`), isolates every failure
into a structured, replayable report entry instead of aborting the
sweep, and cross-checks engine outputs against the runtime invariants
in :mod:`repro.simulation.invariants`.

Entry points:

* :func:`~repro.robustness.campaign.chaos_scenarios` — build the seeded
  grid of fleets × targets × fault specs;
* :func:`~repro.robustness.campaign.run_campaign` — execute with
  per-scenario fault isolation and retry-once for stochastic scenarios;
* ``linesearch chaos`` — the same from the command line.
"""

from repro.robustness.campaign import (
    FAULT_KINDS,
    CampaignReport,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    build_scenario,
    chaos_scenarios,
    run_campaign,
)

__all__ = [
    "FAULT_KINDS",
    "CampaignReport",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "chaos_scenarios",
    "run_campaign",
]
