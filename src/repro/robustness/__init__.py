"""Fault injection, chaos campaigns, and graceful degradation.

The robustness layer hardens the reproduction beyond the paper's single
fault model: it runs large seeded batches of scenarios across the whole
fault taxonomy (:mod:`repro.robots.behaviors`), isolates every failure
into a structured, replayable report entry instead of aborting the
sweep, and cross-checks engine outputs against the runtime invariants
in :mod:`repro.simulation.invariants`.

Entry points:

* :func:`~repro.robustness.campaign.chaos_scenarios` — build the seeded
  grid of fleets × targets × fault specs;
* :func:`~repro.robustness.campaign.run_campaign` — execute with
  per-scenario fault isolation and a configurable retry policy;
* :class:`~repro.robustness.executor.CampaignExecutor` — the resilient
  execution substrate: parallel worker processes, watchdog timeouts,
  crash recovery, and a crash-safe journal with resume;
* :class:`~repro.robustness.journal.CampaignJournal` — the durable
  JSONL record a killed campaign restarts from;
* ``linesearch chaos`` — the same from the command line
  (``--jobs``, ``--timeout``, ``--retries``, ``--journal``,
  ``--resume``).
"""

from repro.robustness.campaign import (
    FAULT_KINDS,
    PROTOCOLS,
    CampaignReport,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    build_scenario,
    chaos_scenarios,
    run_campaign,
    scenario_key,
)
from repro.robustness.executor import CampaignExecutor, RetryPolicy
from repro.robustness.journal import CampaignJournal

__all__ = [
    "FAULT_KINDS",
    "PROTOCOLS",
    "CampaignExecutor",
    "CampaignJournal",
    "CampaignReport",
    "RetryPolicy",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "chaos_scenarios",
    "run_campaign",
    "scenario_key",
]
