"""The Byzantine confirmation algorithm: crash schedule + voting layer.

arXiv:1611.08209's protocol separates *motion* from *decision*: robots
move exactly as in the crash-fault schedule for ``(n, f)`` — the paper's
``A(n, f)`` in the proportional regime, the two-group schedule in the
trivial one — and the Byzantine tolerance comes from the confirmation
layer (claims, verifier diversion, ``f + 1`` votes) enforced at run
time by :class:`~repro.byzantine.simulate.ByzantineSearchSimulation`.

:class:`ByzantineConfirmationAlgorithm` packages that pairing as a
:class:`~repro.schedule.base.SearchAlgorithm`: it builds the underlying
crash schedule's trajectories, requires ``n >= 2f + 1`` so every claim
resolves, and reports the closed-form
:func:`~repro.core.byzantine.byzantine_confirmation_bound` as its
theoretical competitive ratio.
"""

from __future__ import annotations

from typing import List

from repro.core.byzantine import (
    byzantine_confirmation_bound,
    byzantine_quorum,
    min_byzantine_fleet,
)
from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory

__all__ = ["ByzantineConfirmationAlgorithm"]


class ByzantineConfirmationAlgorithm(SearchAlgorithm):
    """Crash-fault motion schedule hardened by the confirmation protocol.

    Attributes:
        inner: The underlying crash-fault algorithm whose trajectories
            the robots follow.
        quorum: Confirmations needed to commit a claim (``f + 1``).

    Examples:
        >>> algo = ByzantineConfirmationAlgorithm(5, 2)
        >>> algo.quorum
        3
        >>> len(algo.build())
        5
        >>> from repro.core import byzantine_confirmation_bound
        >>> algo.theoretical_competitive_ratio() == byzantine_confirmation_bound(5, 2)
        True
        >>> ByzantineConfirmationAlgorithm(4, 2)
        Traceback (most recent call last):
            ...
        repro.errors.InvalidParameterError: confirmation protocol needs n >= 2f + 1 = 5 robots to tolerate 2 liars, got n = 4
    """

    def __init__(self, n: int, f: int) -> None:
        if f < 0:
            raise InvalidParameterError(f"f must be >= 0, got {f}")
        if n < min_byzantine_fleet(f):
            raise InvalidParameterError(
                f"confirmation protocol needs n >= 2f + 1 = "
                f"{min_byzantine_fleet(f)} robots to tolerate {f} liars, "
                f"got n = {n}"
            )
        super().__init__(SearchParameters(n, f))
        from repro.schedule import algorithm_for

        self.inner = algorithm_for(n, f)
        self.quorum = byzantine_quorum(f)

    @property
    def name(self) -> str:
        return f"ByzantineConfirmation[{self.inner.name}]"

    def build(self) -> List[Trajectory]:
        """The underlying crash schedule's trajectories, unchanged.

        The Byzantine tolerance is behavioral (claims and votes at run
        time), not geometric — exactly the protocol/motion split of
        arXiv:1611.08209.
        """
        return self.inner.build()

    def theoretical_competitive_ratio(self) -> float:
        """The ``2 rho + 1`` commit-time bound."""
        return byzantine_confirmation_bound(self.n, self.f)

    def describe(self) -> str:
        return (
            super().describe()
            + f"\n  motion: {self.inner.describe()}"
            + f"\n  protocol: quorum {self.quorum} of n={self.n} "
            f"(pool {min(self.n, 2 * self.f + 1)})"
        )
