"""Staggered geometric fleet for search on a half-line.

The half-line variant (arXiv:2002.07797) searches a single ray.  A
fleet of ``n`` robots runs the full-return geometric strategy of
:class:`~repro.trajectory.halfline.GeometricHalfLine` with *phase
staggering*: robot ``i`` scales its first apex by ``gamma^(i/n)``, so
the union of all apexes forms a geometric progression with ratio
``gamma^(1/n)`` and the robots revisit every point of the ray at evenly
interleaved times.  Every robot individually covers the whole ray
forever, which is what makes the schedule robust: any ``f < n`` crash
faults leave a reliable robot whose own visits bound ``T_{f+1}``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.halfline import optimal_halfline_gamma
from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory
from repro.trajectory.halfline import GeometricHalfLine

__all__ = ["HalfLineAlgorithm"]

#: Fallback expansion ratio when neither ``gamma`` nor ``p`` is given —
#: the doubling analogue on the ray.
DEFAULT_HALFLINE_GAMMA = 2.0

#: Cap applied when ``optimal_halfline_gamma(p)`` explodes as ``p -> 1``
#: (the optimum degenerates to a straight walk); a finite schedule must
#: still bounce.
_MAX_GAMMA = 1e6


class HalfLineAlgorithm(SearchAlgorithm):
    """Staggered geometric half-line schedule for ``n`` robots.

    Attributes:
        gamma: Expansion ratio shared by all robots.  When omitted it is
            derived from ``p`` via
            :func:`repro.core.halfline.optimal_halfline_gamma` (capped
            for ``p`` near 1), else defaults to
            :data:`DEFAULT_HALFLINE_GAMMA`.
        p: Optional per-visit detection probability the schedule is
            tuned for; recorded for reports.
        side: ``+1`` searches the nonnegative ray, ``-1`` the
            nonpositive one.

    Examples:
        >>> algorithm = HalfLineAlgorithm(3, 1)
        >>> fleet = algorithm.build()
        >>> [round(t.apex_magnitude(0), 6) for t in fleet]
        [1.0, 1.259921, 1.587401]
        >>> algorithm.theoretical_competitive_ratio()
        5.0
        >>> HalfLineAlgorithm(2, 1, p=0.75).gamma
        2.6666666666666665
    """

    def __init__(
        self,
        n: int,
        f: int,
        gamma: Optional[float] = None,
        p: Optional[float] = None,
        side: int = 1,
    ) -> None:
        super().__init__(SearchParameters(n, f))
        if side not in (1, -1):
            raise InvalidParameterError(f"side must be +1 or -1, got {side!r}")
        if gamma is None:
            if p is not None:
                gamma = min(optimal_halfline_gamma(p), _MAX_GAMMA)
            else:
                gamma = DEFAULT_HALFLINE_GAMMA
        if not math.isfinite(gamma) or gamma <= 1.0:
            raise InvalidParameterError(
                f"expansion ratio gamma must be > 1, got {gamma!r}"
            )
        self.gamma = float(gamma)
        self.p = None if p is None else float(p)
        self.side = int(side)

    @property
    def name(self) -> str:
        return f"HalfLine({self.n},{self.f})"

    def build(self) -> List[Trajectory]:
        n = self.n
        return [
            GeometricHalfLine(
                gamma=self.gamma,
                first_turn=self.gamma ** (i / n),
                side=self.side,
            )
            for i in range(n)
        ]

    def theoretical_competitive_ratio(self) -> Optional[float]:
        """Worst-case ratio bound ``1 + 2 gamma / (gamma - 1)``.

        Each robot individually first-visits any ``x`` on its ray by
        ``S_k + x < 2 gamma x / (gamma - 1) + x`` (its round start
        ``S_k`` is a geometric sum whose largest apex is below
        ``gamma x``), so the bound holds for ``T_{f+1}`` under *any*
        ``f < n`` crash faults.  Infinite in the hopeless regime
        ``f >= n``.
        """
        if self.f >= self.n:
            return math.inf
        return 1.0 + 2.0 * self.gamma / (self.gamma - 1.0)

    def describe(self) -> str:
        tuned = "" if self.p is None else f", tuned for p={self.p:g}"
        ray = "[0, +inf)" if self.side > 0 else "(-inf, 0]"
        return (
            f"{self.name}: staggered geometric half-line schedule on "
            f"{ray}, gamma={self.gamma:.6g}{tuned}"
        )
