"""Schedules and algorithms built on the trajectory engine.

* :class:`~repro.schedule.base.SearchAlgorithm` — the interface every
  algorithm (paper's and baselines') implements;
* :class:`~repro.schedule.proportional_schedule.ProportionalSchedule` —
  ``S_beta(n)`` as executable trajectories;
* :class:`~repro.schedule.algorithm.ProportionalAlgorithm` — the paper's
  ``A(n, f)`` (Definition 4 / Theorem 1);
* :class:`~repro.schedule.generalized.CustomBetaAlgorithm` — ``S_beta(n)``
  at arbitrary slopes, for the beta-sweep ablation;
* :class:`~repro.schedule.halfline.HalfLineAlgorithm` — staggered
  one-sided geometric fleets for the half-line variant
  (arXiv:2002.07797).
"""

from repro.schedule.algorithm import ProportionalAlgorithm
from repro.schedule.base import SearchAlgorithm
from repro.schedule.byzantine import ByzantineConfirmationAlgorithm
from repro.schedule.generalized import CustomBetaAlgorithm
from repro.schedule.halfline import HalfLineAlgorithm
from repro.schedule.proportional_schedule import ProportionalSchedule
from repro.schedule.validation import (
    ValidationIssue,
    ValidationReport,
    validate_algorithm,
)

__all__ = [
    "ByzantineConfirmationAlgorithm",
    "CustomBetaAlgorithm",
    "HalfLineAlgorithm",
    "ProportionalAlgorithm",
    "ProportionalSchedule",
    "SearchAlgorithm",
    "ValidationIssue",
    "ValidationReport",
    "validate_algorithm",
    "algorithm_for",
]


def algorithm_for(n: int, f: int) -> SearchAlgorithm:
    """The paper's regime rule as a factory: the right algorithm for
    ``(n, f)``.

    Returns :class:`ProportionalAlgorithm` when ``f < n < 2f + 2``
    (the proportional regime of Theorem 1) and the trivial ratio-1
    :class:`~repro.baselines.two_group.TwoGroupAlgorithm` when
    ``n >= 2f + 2``.  The campaign realizers, the CLI, and the batch
    parity harness all share this single dispatch point.

    Examples:
        >>> type(algorithm_for(3, 1)).__name__
        'ProportionalAlgorithm'
        >>> type(algorithm_for(6, 2)).__name__
        'TwoGroupAlgorithm'
    """
    from repro.baselines import TwoGroupAlgorithm
    from repro.core import SearchParameters

    params = SearchParameters(n, f)
    if params.is_proportional:
        return ProportionalAlgorithm(n, f)
    return TwoGroupAlgorithm(n, f)
