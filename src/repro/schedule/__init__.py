"""Schedules and algorithms built on the trajectory engine.

* :class:`~repro.schedule.base.SearchAlgorithm` — the interface every
  algorithm (paper's and baselines') implements;
* :class:`~repro.schedule.proportional_schedule.ProportionalSchedule` —
  ``S_beta(n)`` as executable trajectories;
* :class:`~repro.schedule.algorithm.ProportionalAlgorithm` — the paper's
  ``A(n, f)`` (Definition 4 / Theorem 1);
* :class:`~repro.schedule.generalized.CustomBetaAlgorithm` — ``S_beta(n)``
  at arbitrary slopes, for the beta-sweep ablation.
"""

from repro.schedule.algorithm import ProportionalAlgorithm
from repro.schedule.base import SearchAlgorithm
from repro.schedule.generalized import CustomBetaAlgorithm
from repro.schedule.proportional_schedule import ProportionalSchedule
from repro.schedule.validation import (
    ValidationIssue,
    ValidationReport,
    validate_algorithm,
)

__all__ = [
    "CustomBetaAlgorithm",
    "ProportionalAlgorithm",
    "ProportionalSchedule",
    "SearchAlgorithm",
    "ValidationIssue",
    "ValidationReport",
    "validate_algorithm",
]
