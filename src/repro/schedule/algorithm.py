"""The proportional schedule algorithm ``A(n, f)`` (Definition 4, Theorem 1).

``A(n, f)`` is the proportional schedule ``S_beta(n)`` instantiated at the
optimizing cone slope ``beta* = (4f+4)/n - 1``, with each robot routed
from the origin to its first cone turning point (backward-extended below
the minimum target distance 1) so that it enters the cone exactly on the
boundary.

Its competitive ratio (Theorem 1) is

    ``((4f+4)/n)^((2f+2)/n) ((4f+4)/n - 2)^(1-(2f+2)/n) + 1``.
"""

from __future__ import annotations

from typing import List

from repro.core.competitive_ratio import algorithm_competitive_ratio
from repro.core.optimal import optimal_beta
from repro.core.parameters import SearchParameters
from repro.schedule.base import SearchAlgorithm
from repro.schedule.proportional_schedule import ProportionalSchedule
from repro.trajectory.base import Trajectory

__all__ = ["ProportionalAlgorithm"]


class ProportionalAlgorithm(SearchAlgorithm):
    """The paper's algorithm ``A(n, f)`` for ``f < n < 2f + 2``.

    Examples:
        >>> alg = ProportionalAlgorithm(3, 1)
        >>> round(alg.beta, 12)
        1.666666666667
        >>> alg.expansion_factor
        4.000000000000001
        >>> round(alg.theoretical_competitive_ratio(), 3)
        5.233
        >>> len(alg.build())
        3
    """

    def __init__(self, n: int, f: int) -> None:
        params = SearchParameters(n, f).require_proportional()
        super().__init__(params)
        self.beta = optimal_beta(n, f)
        self.schedule = ProportionalSchedule(
            n=n, beta=self.beta, tau0=self.minimum_target_distance()
        )

    @property
    def name(self) -> str:
        return f"A({self.n},{self.f})"

    @property
    def expansion_factor(self) -> float:
        """Expansion factor of every robot's zig-zag (Table 1 column)."""
        return self.schedule.expansion_factor

    @property
    def proportionality_ratio(self) -> float:
        """Ratio ``r`` of the underlying proportional schedule."""
        return self.schedule.ratio

    def build(self) -> List[Trajectory]:
        return list(self.schedule.build())

    def theoretical_competitive_ratio(self) -> float:
        """Theorem 1 closed form."""
        return algorithm_competitive_ratio(self.n, self.f)
