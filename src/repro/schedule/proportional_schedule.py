"""The proportional schedule ``S_beta(n)`` as executable trajectories.

``S_beta(n)`` assigns to robot ``a_i`` the cone zig-zag whose anchor
positive turning point is ``tau_i = tau0 * r^i`` (Lemma 2), where
``r = kappa^(2/n)`` is the proportionality ratio.  Together the robots'
positive turning points tile the positive half-line as the geometric
sequence ``tau0 * r^j`` (robot ``a_{j mod n}`` owns the ``j``-th one), and
symmetrically on the negative side.

This module produces the actual :class:`~repro.trajectory.cone_zigzag.ConeZigZag`
objects (with the Definition 4 origin start-up) and exposes the schedule's
combined turning-point structure for verification and plots.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.proportional import proportionality_ratio
from repro.errors import InvalidParameterError, ScheduleError
from repro.geometry.cone import Cone
from repro.trajectory.cone_zigzag import ConeZigZag

__all__ = ["ProportionalSchedule"]


class ProportionalSchedule:
    """The proportional schedule ``S_beta(n)``.

    Attributes:
        n: Number of robots.
        cone: The shared cone ``C_beta``.
        tau0: Anchor turning point of robot ``a_0`` (the paper uses the
            minimum target distance, 1).
        inner_radius: Radius below which Definition 4 stops the backward
            extension; defaults to ``tau0``.

    Examples:
        >>> sched = ProportionalSchedule(n=2, beta=3.0)
        >>> round(sched.ratio, 12)
        2.0
        >>> sched.anchors
        (1.0, 2.0)
        >>> robots = sched.build()
        >>> [r.first_cone_turn for r in robots]
        [1.0, -1.0]
    """

    def __init__(
        self,
        n: int,
        beta: float,
        tau0: float = 1.0,
        inner_radius: Optional[float] = None,
    ) -> None:
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise InvalidParameterError(f"n must be a positive int, got {n!r}")
        if not math.isfinite(beta) or beta <= 1.0:
            raise InvalidParameterError(
                f"beta must be a finite real > 1, got {beta!r}"
            )
        if tau0 <= 0:
            raise InvalidParameterError(f"tau0 must be positive, got {tau0!r}")
        self.n = n
        self.cone = Cone(beta)
        self.tau0 = float(tau0)
        self.inner_radius = float(tau0 if inner_radius is None else inner_radius)
        if self.inner_radius <= 0:
            raise InvalidParameterError(
                f"inner_radius must be positive, got {inner_radius!r}"
            )
        self.ratio = proportionality_ratio(beta, n)

    @property
    def beta(self) -> float:
        """The cone slope."""
        return self.cone.beta

    @property
    def expansion_factor(self) -> float:
        """Expansion factor ``kappa`` shared by every robot."""
        return self.cone.expansion_factor

    @property
    def anchors(self) -> Tuple[float, ...]:
        """Anchor positive turning points ``tau_i = tau0 * r^i``."""
        return tuple(self.tau0 * self.ratio**i for i in range(self.n))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self) -> List[ConeZigZag]:
        """Instantiate the ``n`` robot trajectories.

        Robot ``a_i`` receives the anchor ``tau_i``; the
        :class:`~repro.trajectory.cone_zigzag.ConeZigZag` constructor
        applies the Definition 4 backward extension so each robot's
        actual first cone turn has magnitude at most ``inner_radius``.
        """
        return [
            ConeZigZag(self.cone, anchor, inner_radius=self.inner_radius)
            for anchor in self.anchors
        ]

    # ------------------------------------------------------------------
    # combined structure (for verification)
    # ------------------------------------------------------------------

    def combined_positive_turning_points(self, count: int) -> List[float]:
        """First ``count`` positive turning points over all robots,
        sorted ascending, starting at ``tau0``.

        By Lemma 2 this must equal the geometric sequence
        ``tau0 * r^j``; tests verify the built trajectories agree.
        """
        if count < 0:
            raise InvalidParameterError(f"count must be >= 0, got {count}")
        return [self.tau0 * self.ratio**j for j in range(count)]

    def owner_of_combined_point(self, j: int) -> int:
        """Index of the robot whose turning point is ``tau0 * r^j``."""
        if j < 0:
            raise InvalidParameterError(f"j must be >= 0, got {j}")
        return j % self.n

    def verify_proportionality(
        self, count: int = 12, tol: float = 1e-9
    ) -> None:
        """Check Definition 2 on the *built* trajectories.

        Collects actual positive turning points (with magnitude at least
        ``tau0``) from the robot trajectories, sorts them, and verifies
        the consecutive-difference ratio is constant at ``self.ratio``.

        Raises:
            ScheduleError: if the built schedule is not proportional.
        """
        if count < 3:
            raise InvalidParameterError(f"count must be >= 3, got {count}")
        robots = self.build()
        points: List[float] = []
        horizon = self.tau0 * self.ratio ** (count + self.n)
        for robot in robots:
            for vertex in robot.turning_points_in_radius(horizon):
                if vertex.position >= self.tau0 * (1 - 1e-12):
                    points.append(vertex.position)
        points.sort()
        points = points[: count + 1]
        if len(points) < 3:
            raise ScheduleError("not enough turning points materialized")
        diffs = [b - a for a, b in zip(points, points[1:])]
        for d1, d2 in zip(diffs, diffs[1:]):
            actual = d2 / d1
            if abs(actual - self.ratio) > tol * self.ratio:
                raise ScheduleError(
                    f"proportionality violated: ratio {actual} != {self.ratio}"
                )

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"S_beta(n): n={self.n}, beta={self.beta:.6g}, "
            f"kappa={self.expansion_factor:.6g}, r={self.ratio:.6g}"
        )
