"""Common interface for parallel search algorithms.

Every algorithm in this library — the paper's ``A(n, f)``, the trivial
two-group algorithm, and the baseline strategies — is a factory of ``n``
trajectories plus metadata.  The simulator, the lower-bound game, and the
experiment harness all consume this interface, so new algorithms plug in
by subclassing :class:`SearchAlgorithm`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional

from repro.core.parameters import SearchParameters
from repro.trajectory.base import Trajectory

__all__ = ["SearchAlgorithm"]


class SearchAlgorithm(ABC):
    """A parallel search algorithm for ``n`` robots, ``f`` possibly faulty.

    Subclasses implement :meth:`build`, returning one trajectory per
    robot (robot identities are the list indices).  Trajectories must all
    start at the origin at time 0 and respect unit speed — the
    :class:`~repro.trajectory.base.Trajectory` machinery enforces the
    speed limit on materialization.
    """

    def __init__(self, params: SearchParameters) -> None:
        self.params = params

    @property
    def n(self) -> int:
        """Number of robots."""
        return self.params.n

    @property
    def f(self) -> int:
        """Fault budget."""
        return self.params.f

    @property
    def name(self) -> str:
        """Short identifier used in reports; override for nicer names."""
        return type(self).__name__

    @abstractmethod
    def build(self) -> List[Trajectory]:
        """Construct the ``n`` robot trajectories.

        Must return exactly ``self.n`` trajectories.  A fresh list is
        returned on every call; trajectories are stateful (they memoize
        materialized segments), so sharing across concurrent experiments
        is allowed but rebuilding gives independent objects.
        """

    def theoretical_competitive_ratio(self) -> Optional[float]:
        """Closed-form competitive ratio, when one is known.

        Returns ``None`` for algorithms without a proven formula; the
        simulator can still measure the ratio empirically.
        """
        return None

    def minimum_target_distance(self) -> float:
        """The assumed minimum distance from origin to target.

        The paper (Definition 4, following Schuierer) assumes the target
        is at distance at least 1; algorithms with a different
        normalization can override.
        """
        return 1.0

    def describe(self) -> str:
        """Multi-line description for reports."""
        cr = self.theoretical_competitive_ratio()
        cr_text = "unknown" if cr is None else (
            "inf" if math.isinf(cr) else f"{cr:.6g}"
        )
        return (
            f"{self.name}: {self.params.describe()}, "
            f"theoretical CR = {cr_text}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, f={self.f})"
