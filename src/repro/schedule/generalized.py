"""Generalized proportional schedules (non-optimal cone slopes).

The optimization step after Lemma 5 picks ``beta* = (4f+4)/n - 1``; the
ablation experiments sweep other slopes to verify ``beta*`` really is the
minimizer.  :class:`CustomBetaAlgorithm` runs the proportional schedule at
an arbitrary ``beta > 1`` and reports the Lemma 5 closed form as its
theoretical ratio.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.competitive_ratio import schedule_competitive_ratio
from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.schedule.proportional_schedule import ProportionalSchedule
from repro.trajectory.base import Trajectory

__all__ = ["CustomBetaAlgorithm"]


class CustomBetaAlgorithm(SearchAlgorithm):
    """Proportional schedule ``S_beta(n)`` at a caller-chosen ``beta``.

    Attributes:
        beta: Cone slope, any finite real greater than 1.

    Examples:
        >>> alg = CustomBetaAlgorithm(3, 1, beta=2.0)
        >>> round(alg.theoretical_competitive_ratio(), 4)
        5.3267
        >>> from repro.core import algorithm_competitive_ratio
        >>> alg.theoretical_competitive_ratio() > algorithm_competitive_ratio(3, 1)
        True
    """

    def __init__(self, n: int, f: int, beta: float) -> None:
        params = SearchParameters(n, f).require_proportional()
        super().__init__(params)
        if not math.isfinite(beta) or beta <= 1.0:
            raise InvalidParameterError(
                f"beta must be a finite real > 1, got {beta!r}"
            )
        self.beta = float(beta)
        self.schedule = ProportionalSchedule(
            n=n, beta=self.beta, tau0=self.minimum_target_distance()
        )

    @property
    def name(self) -> str:
        return f"S_beta(n={self.n}, beta={self.beta:.4g}, f={self.f})"

    @property
    def expansion_factor(self) -> float:
        """Expansion factor induced by the chosen cone."""
        return self.schedule.expansion_factor

    def build(self) -> List[Trajectory]:
        return list(self.schedule.build())

    def theoretical_competitive_ratio(self) -> float:
        """Lemma 5 closed form at the chosen (possibly sub-optimal) beta."""
        return schedule_competitive_ratio(self.beta, self.n, self.f)
