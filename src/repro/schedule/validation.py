"""Validation harness for user-supplied search algorithms.

A downstream user implementing their own
:class:`~repro.schedule.base.SearchAlgorithm` needs to know whether it
is *admissible* in the paper's model before trusting any measured ratio:

* it must build exactly ``n`` trajectories, all starting at the origin
  at time 0;
* every leg must respect the unit speed limit;
* every point with ``|x|`` in the tested range must eventually be
  visited by at least ``f + 1`` distinct robots — otherwise an adversary
  corrupting the visitors makes some targets undetectable and the
  competitive ratio is infinite.

:func:`validate_algorithm` checks all of this and returns a structured
report; :class:`ValidationReport` renders it for humans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.core.tolerance import TIME_RTOL
from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet
from repro.schedule.base import SearchAlgorithm

__all__ = ["ValidationIssue", "ValidationReport", "validate_algorithm"]


@dataclass(frozen=True)
class ValidationIssue:
    """One admissibility violation."""

    severity: str  # "error" | "warning"
    message: str

    def describe(self) -> str:
        """Human-readable line."""
        return f"[{self.severity.upper()}] {self.message}"


@dataclass
class ValidationReport:
    """The outcome of validating an algorithm.

    Attributes:
        algorithm_name: The checked algorithm's name.
        issues: All violations found (empty = admissible).
        checked_targets: The probe points used for coverage checking.
    """

    algorithm_name: str
    issues: List[ValidationIssue] = field(default_factory=list)
    checked_targets: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the algorithm passed with no errors (warnings allowed)."""
        return not any(i.severity == "error" for i in self.issues)

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"validation of {self.algorithm_name}: "
            + ("ADMISSIBLE" if self.ok else "REJECTED")
        ]
        lines.extend("  " + issue.describe() for issue in self.issues)
        if not self.issues:
            lines.append("  no issues found")
        return "\n".join(lines)


def validate_algorithm(
    algorithm: SearchAlgorithm,
    x_max: float = 20.0,
    probes_per_sign: int = 12,
    detection_budget_factor: float = 100.0,
) -> ValidationReport:
    """Check a search algorithm's admissibility in the paper's model.

    Args:
        algorithm: The algorithm under test.
        x_max: Coverage is probed for targets with
            ``1 <= |x| <= x_max``.
        probes_per_sign: Number of probe targets per side.
        detection_budget_factor: A probe counts as *covered* only if the
            ``(f+1)``-st visit happens within
            ``detection_budget_factor * |x|`` — guarding against
            schedules that technically cover everything but with
            unbounded ratio.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> report = validate_algorithm(ProportionalAlgorithm(3, 1))
        >>> report.ok
        True
        >>> from repro.trajectory import LinearTrajectory
        >>> class OneSided(SearchAlgorithm):
        ...     def build(self):
        ...         return [LinearTrajectory(1) for _ in range(self.n)]
        >>> from repro.core import SearchParameters
        >>> bad = OneSided(SearchParameters(3, 1))
        >>> validate_algorithm(bad).ok
        False
    """
    if x_max <= 1.0:
        raise InvalidParameterError(f"x_max must exceed 1, got {x_max}")
    if probes_per_sign < 1:
        raise InvalidParameterError(
            f"probes_per_sign must be >= 1, got {probes_per_sign}"
        )
    if detection_budget_factor <= 1.0:
        raise InvalidParameterError(
            "detection_budget_factor must exceed 1, got "
            f"{detection_budget_factor}"
        )
    report = ValidationReport(algorithm_name=algorithm.name)

    # structural checks
    trajectories = algorithm.build()
    if len(trajectories) != algorithm.n:
        report.issues.append(
            ValidationIssue(
                "error",
                f"build() returned {len(trajectories)} trajectories for "
                f"n={algorithm.n}",
            )
        )
        return report

    for index, trajectory in enumerate(trajectories):
        start_pos = trajectory.position_at(0.0)
        if abs(start_pos) > TIME_RTOL:
            report.issues.append(
                ValidationIssue(
                    "error",
                    f"robot a_{index} starts at {start_pos}, not the origin",
                )
            )
        # speed-limit sampling (materialization raises on violations,
        # so reaching here without TrajectoryError already checks legs)
        for seg in trajectory.segments_until(min(4.0 * x_max, 100.0)):
            if seg.speed > 1.0 + TIME_RTOL:
                report.issues.append(
                    ValidationIssue(
                        "error",
                        f"robot a_{index} exceeds unit speed "
                        f"({seg.speed:.6g}) on segment at t="
                        f"{seg.start.time:.6g}",
                    )
                )
                break

    if not report.ok:
        return report

    # coverage checks
    fleet = Fleet.from_trajectories(trajectories)
    k = algorithm.f + 1
    ratio = (x_max / 1.0) ** (1.0 / max(probes_per_sign - 1, 1))
    targets: List[float] = []
    for sign in (1.0, -1.0):
        x = 1.0
        for _ in range(probes_per_sign):
            targets.append(sign * min(x, x_max))
            x *= ratio
    report.checked_targets = targets

    for x in targets:
        t = fleet.t_k(x, k)
        if not math.isfinite(t):
            report.issues.append(
                ValidationIssue(
                    "error",
                    f"target {x:.6g} is never visited by {k} distinct "
                    "robots — undetectable under the fault budget",
                )
            )
        elif t > detection_budget_factor * abs(x):
            report.issues.append(
                ValidationIssue(
                    "warning",
                    f"target {x:.6g} only detected at ratio "
                    f"{t / abs(x):.3g} (> {detection_budget_factor:g})",
                )
            )
    return report

