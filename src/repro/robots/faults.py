"""Fault models: who is faulty, and how is that decided?

The paper's analysis is worst-case: the adversary may corrupt any ``f``
robots, and because faults are static and behaviorally invisible, its
optimal play against a target at ``x`` is to corrupt the first ``f``
distinct visitors of ``x``.  :class:`AdversarialFaults` implements exactly
that.

Two further models support experiments beyond the worst case:

* :class:`FixedFaults` — a fault set known in advance (e.g. replaying a
  scenario);
* :class:`RandomFaults` — a uniformly random ``f``-subset, for Monte
  Carlo comparisons of average-case vs worst-case detection time.

All models answer the same question: *given a fleet and a target, which
robots are faulty?* — via :meth:`FaultModel.assign`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Set

from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet

__all__ = ["FaultModel", "AdversarialFaults", "FixedFaults", "RandomFaults"]


class FaultModel(ABC):
    """Strategy deciding the faulty subset for a fleet and target."""

    def __init__(self, fault_budget: int) -> None:
        if fault_budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {fault_budget}"
            )
        self.fault_budget = fault_budget

    @abstractmethod
    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        """Return the indices of the faulty robots (at most the budget)."""

    def detection_time(self, fleet: Fleet, target: float) -> float:
        """Detection time of ``target`` under this model's assignment."""
        faulty = self.assign(fleet, target)
        return fleet.with_faults(faulty).detection_time(target)

    def describe(self) -> str:
        """One-line summary."""
        return f"{type(self).__name__}(f={self.fault_budget})"


class AdversarialFaults(FaultModel):
    """The worst-case adversary of the paper.

    Corrupts the first ``f`` distinct robots to visit the target, making
    the detection time equal ``T_{f+1}(target)``.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> fleet = Fleet.from_algorithm(ProportionalAlgorithm(3, 1))
        >>> adv = AdversarialFaults(1)
        >>> t = adv.detection_time(fleet, 2.0)
        >>> t == fleet.worst_case_detection_time(2.0, 1)
        True
    """

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        return fleet.worst_fault_assignment(target, self.fault_budget)


class FixedFaults(FaultModel):
    """A predetermined fault set, independent of the target.

    Examples:
        >>> model = FixedFaults([0, 2])
        >>> model.fault_budget
        2
    """

    def __init__(self, faulty_indices: Sequence[int]) -> None:
        indices = set(faulty_indices)
        if any(i < 0 for i in indices):
            raise InvalidParameterError(
                f"fault indices must be non-negative, got {sorted(indices)}"
            )
        super().__init__(len(indices))
        self.faulty_indices = indices

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        out_of_range = self.faulty_indices - set(range(fleet.size))
        if out_of_range:
            raise InvalidParameterError(
                f"fault indices out of range for fleet of {fleet.size}: "
                f"{sorted(out_of_range)}"
            )
        return set(self.faulty_indices)


class RandomFaults(FaultModel):
    """A uniformly random ``f``-subset of the fleet.

    Deterministic given a seed; each :meth:`assign` call draws a fresh
    subset from the model's private generator, so Monte Carlo loops can
    simply call it repeatedly.

    Examples:
        >>> model = RandomFaults(1, seed=7)
        >>> from repro.trajectory import LinearTrajectory
        >>> fleet = Fleet.from_trajectories(
        ...     [LinearTrajectory(1), LinearTrajectory(-1), LinearTrajectory(1)]
        ... )
        >>> len(model.assign(fleet, 1.0))
        1
    """

    def __init__(self, fault_budget: int, seed: Optional[int] = None) -> None:
        super().__init__(fault_budget)
        self._rng = random.Random(seed)

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        if self.fault_budget > fleet.size:
            raise InvalidParameterError(
                f"fault budget {self.fault_budget} exceeds fleet size "
                f"{fleet.size}"
            )
        return set(self._rng.sample(range(fleet.size), self.fault_budget))
