"""Fault models: who is faulty, and how is that decided?

The paper's analysis is worst-case: the adversary may corrupt any ``f``
robots, and because faults are static and behaviorally invisible, its
optimal play against a target at ``x`` is to corrupt the first ``f``
distinct visitors of ``x``.  :class:`AdversarialFaults` implements exactly
that.

Two further models support experiments beyond the worst case:

* :class:`FixedFaults` — a fault set known in advance (e.g. replaying a
  scenario);
* :class:`RandomFaults` — a uniformly random ``f``-subset, for Monte
  Carlo comparisons of average-case vs worst-case detection time.

All models answer the same question: *given a fleet and a target, which
robots are faulty and how do they misbehave?* — via
:meth:`FaultModel.behaviors`, which maps each faulty index to a
:class:`~repro.robots.behaviors.FaultBehavior`.  For the three models
above every faulty robot gets the paper's
:class:`~repro.robots.behaviors.CrashDetectionFault`; the generalized
taxonomy (crash-stop, Byzantine false alarms, probabilistic detection)
is assigned explicitly with :class:`BehavioralFaults`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Set

from repro.errors import InvalidParameterError
from repro.robots.behaviors import (
    ByzantineFalseAlarmFault,
    CrashDetectionFault,
    CrashStopFault,
    FaultBehavior,
    ProbabilisticDetectionFault,
)
from repro.robots.fleet import Fleet

__all__ = [
    "FaultModel",
    "AdversarialFaults",
    "ByzantineAdversary",
    "FixedFaults",
    "RandomFaults",
    "BehavioralFaults",
    # re-exported taxonomy, so the whole fault axis imports from one place
    "FaultBehavior",
    "CrashDetectionFault",
    "CrashStopFault",
    "ByzantineFalseAlarmFault",
    "ProbabilisticDetectionFault",
]


class FaultModel(ABC):
    """Strategy deciding the faulty subset for a fleet and target."""

    #: Whether repeated :meth:`assign`/:meth:`behaviors` calls may differ
    #: (e.g. fresh random draws).  Campaign runners use this to decide
    #: which failed scenarios deserve a retry.
    is_stochastic: bool = False

    def __init__(self, fault_budget: int) -> None:
        if fault_budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {fault_budget}"
            )
        self.fault_budget = fault_budget

    @abstractmethod
    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        """Return the indices of the faulty robots (at most the budget)."""

    def behaviors(self, fleet: Fleet, target: float) -> Dict[int, FaultBehavior]:
        """Map each faulty index to its fault behavior.

        The default wraps :meth:`assign` and gives every faulty robot
        the paper's crash-detection semantics.  Stochastic models draw a
        fresh assignment per call, so engines must call *either* this
        *or* :meth:`assign` once per scenario, never both.
        """
        return {i: CrashDetectionFault() for i in self.assign(fleet, target)}

    def detection_time(self, fleet: Fleet, target: float) -> float:
        """Detection time of ``target`` under this model's assignment."""
        return fleet.with_fault_behaviors(
            self.behaviors(fleet, target)
        ).detection_time(target)

    def describe(self) -> str:
        """One-line summary."""
        return f"{type(self).__name__}(f={self.fault_budget})"

    def _check_budget_fits(self, fleet: Fleet) -> None:
        if self.fault_budget > fleet.size:
            raise InvalidParameterError(
                f"fault budget {self.fault_budget} exceeds fleet size "
                f"{fleet.size}"
            )


class AdversarialFaults(FaultModel):
    """The worst-case adversary of the paper.

    Corrupts the first ``f`` distinct robots to visit the target, making
    the detection time equal ``T_{f+1}(target)``.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> fleet = Fleet.from_algorithm(ProportionalAlgorithm(3, 1))
        >>> adv = AdversarialFaults(1)
        >>> t = adv.detection_time(fleet, 2.0)
        >>> t == fleet.worst_case_detection_time(2.0, 1)
        True
    """

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        self._check_budget_fits(fleet)
        return fleet.worst_fault_assignment(target, self.fault_budget)


class ByzantineAdversary(FaultModel):
    """Worst-case *lying* adversary: corrupt the first visitors, lie loudly.

    The strongest placement against the confirmation protocol (see
    :mod:`repro.byzantine.predictor`) mirrors the paper's crash
    adversary — corrupt the first ``f`` distinct visitors of the target
    so the earliest genuine claims vanish — but here every corrupted
    robot also emits false alarms on the given schedule, forcing
    refutation rounds that delay the honest search.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> fleet = Fleet.from_algorithm(ProportionalAlgorithm(3, 1))
        >>> adv = ByzantineAdversary(1, alarm_times=[1.0, 4.0])
        >>> sorted(adv.assign(fleet, 2.0)) == sorted(
        ...     fleet.worst_fault_assignment(2.0, 1)
        ... )
        True
        >>> all(
        ...     isinstance(b, ByzantineFalseAlarmFault)
        ...     for b in adv.behaviors(fleet, 2.0).values()
        ... )
        True
    """

    def __init__(
        self, fault_budget: int, alarm_times: Sequence[float] = (1.0, 3.0)
    ) -> None:
        super().__init__(fault_budget)
        # validate eagerly via the behavior's own constructor
        self.alarm_times = tuple(
            ByzantineFalseAlarmFault(alarm_times).alarm_times
        )

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        self._check_budget_fits(fleet)
        return fleet.worst_fault_assignment(target, self.fault_budget)

    def behaviors(self, fleet: Fleet, target: float) -> Dict[int, FaultBehavior]:
        return {
            i: ByzantineFalseAlarmFault(self.alarm_times)
            for i in self.assign(fleet, target)
        }

    def describe(self) -> str:
        rendered = ", ".join(f"{t:.6g}" for t in self.alarm_times)
        return (
            f"ByzantineAdversary(f={self.fault_budget}, "
            f"alarm_times=[{rendered}])"
        )


class FixedFaults(FaultModel):
    """A predetermined fault set, independent of the target.

    Examples:
        >>> model = FixedFaults([0, 2])
        >>> model.fault_budget
        2
        >>> model.describe()
        'FixedFaults(indices=[0, 2])'
    """

    def __init__(self, faulty_indices: Sequence[int]) -> None:
        indices = set(faulty_indices)
        if any(i < 0 for i in indices):
            raise InvalidParameterError(
                f"fault indices must be non-negative, got {sorted(indices)}"
            )
        super().__init__(len(indices))
        self.faulty_indices = indices

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        out_of_range = self.faulty_indices - set(range(fleet.size))
        if out_of_range:
            raise InvalidParameterError(
                f"fault indices out of range for fleet of {fleet.size}: "
                f"{sorted(out_of_range)}"
            )
        return set(self.faulty_indices)

    def describe(self) -> str:
        return f"FixedFaults(indices={sorted(self.faulty_indices)})"


class RandomFaults(FaultModel):
    """A uniformly random ``f``-subset of the fleet.

    Deterministic given a seed; each :meth:`assign` call draws a fresh
    subset from the model's private generator, so Monte Carlo loops can
    simply call it repeatedly.

    Examples:
        >>> model = RandomFaults(1, seed=7)
        >>> model.describe()
        'RandomFaults(f=1, seed=7)'
        >>> from repro.trajectory import LinearTrajectory
        >>> fleet = Fleet.from_trajectories(
        ...     [LinearTrajectory(1), LinearTrajectory(-1), LinearTrajectory(1)]
        ... )
        >>> len(model.assign(fleet, 1.0))
        1
    """

    is_stochastic = True

    def __init__(self, fault_budget: int, seed: Optional[int] = None) -> None:
        super().__init__(fault_budget)
        self.seed = seed
        self._rng = random.Random(seed)

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        self._check_budget_fits(fleet)
        return set(self._rng.sample(range(fleet.size), self.fault_budget))

    def describe(self) -> str:
        return f"RandomFaults(f={self.fault_budget}, seed={self.seed})"


class BehavioralFaults(FaultModel):
    """An explicit per-robot assignment of fault behaviors.

    The entry point to the generalized taxonomy: map robot indices to
    :class:`~repro.robots.behaviors.FaultBehavior` instances and hand
    the model to the engine.

    Examples:
        >>> model = BehavioralFaults({0: CrashStopFault(2.0)})
        >>> model.fault_budget
        1
        >>> from repro.trajectory import LinearTrajectory
        >>> fleet = Fleet.from_trajectories(
        ...     [LinearTrajectory(1), LinearTrajectory(-1), LinearTrajectory(1)]
        ... )
        >>> sorted(model.assign(fleet, 1.0))
        [0]
    """

    def __init__(self, behavior_map: Mapping[int, FaultBehavior]) -> None:
        behaviors = dict(behavior_map)
        if any(i < 0 for i in behaviors):
            raise InvalidParameterError(
                f"fault indices must be non-negative, got {sorted(behaviors)}"
            )
        for index, behavior in behaviors.items():
            if not isinstance(behavior, FaultBehavior):
                raise InvalidParameterError(
                    f"behavior for robot {index} must be a FaultBehavior, "
                    f"got {behavior!r}"
                )
        super().__init__(len(behaviors))
        self.behavior_map = behaviors

    @property
    def is_stochastic(self) -> bool:  # type: ignore[override]
        return any(b.is_stochastic for b in self.behavior_map.values())

    def assign(self, fleet: Fleet, target: float) -> Set[int]:
        out_of_range = set(self.behavior_map) - set(range(fleet.size))
        if out_of_range:
            raise InvalidParameterError(
                f"fault indices out of range for fleet of {fleet.size}: "
                f"{sorted(out_of_range)}"
            )
        return set(self.behavior_map)

    def behaviors(self, fleet: Fleet, target: float) -> Dict[int, FaultBehavior]:
        self.assign(fleet, target)  # range validation
        return dict(self.behavior_map)

    def describe(self) -> str:
        parts = ", ".join(
            f"{i}: {b.kind}" for i, b in sorted(self.behavior_map.items())
        )
        return f"BehavioralFaults({{{parts}}})"
