"""Fault behaviors: *how* a faulty robot misbehaves.

The paper studies exactly one failure mode — a robot that moves as
planned but never detects (here :class:`CrashDetectionFault`).  The
related literature motivates three more, and this module generalizes the
fault axis into a small taxonomy:

* :class:`CrashDetectionFault` — the paper's model, unchanged semantics:
  full trajectory, zero detections.
* :class:`CrashStopFault` — a crash fault in the classical sense: the
  robot operates correctly (moves *and* detects) until an injected halt
  time, then freezes forever.
* :class:`ByzantineFalseAlarmFault` — a lying robot (cf. Czyzowicz et
  al., *Search on a Line by Byzantine Robots*, arXiv:1611.08209): it
  never truly detects but emits spurious detection announcements, which
  must not count toward the search time.
* :class:`ProbabilisticDetectionFault` — probabilistically faulty
  sensing (cf. Georgiou et al., arXiv:2303.15608): each visit of the
  target detects independently with probability ``p``, seeded so runs
  are reproducible.

A behavior answers three questions about one robot: what trajectory does
it actually follow (:meth:`FaultBehavior.apply_trajectory`), when does
it *genuinely* detect a target (:meth:`FaultBehavior.detection_time` —
analytic where the model is deterministic, seeded-deterministic where it
is stochastic), and what spurious claims does it broadcast
(:meth:`FaultBehavior.false_alarm_times`).  Fault *models* in
:mod:`repro.robots.faults` decide which robots receive which behavior.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.trajectory.base import Trajectory
from repro.trajectory.halted import HaltedTrajectory

__all__ = [
    "FaultBehavior",
    "CrashDetectionFault",
    "CrashStopFault",
    "ByzantineFalseAlarmFault",
    "ProbabilisticDetectionFault",
]


class FaultBehavior(ABC):
    """The failure semantics of a single faulty robot."""

    #: Short taxonomy label, used by reports and scenario specs.
    kind: str = "abstract"

    #: Time at which the robot stops moving, or ``None`` if it never does.
    halt_time: Optional[float] = None

    #: Whether :meth:`detection_time` involves randomness.  Stochastic
    #: behaviors must be reproducible given their seed.
    is_stochastic: bool = False

    def apply_trajectory(self, trajectory: Trajectory) -> Trajectory:
        """The trajectory the robot actually follows (default: unchanged)."""
        return trajectory

    @abstractmethod
    def detection_time(
        self, trajectory: Trajectory, target: float
    ) -> Optional[float]:
        """When this robot *genuinely* detects ``target`` (``None`` = never).

        ``trajectory`` is the robot's planned trajectory; implementations
        that alter motion must account for their own truncation.
        """

    def false_alarm_times(
        self, trajectory: Trajectory, target: float, until: float
    ) -> List[float]:
        """Times up to ``until`` at which the robot falsely claims detection."""
        return []

    def describe(self) -> str:
        """One-line summary."""
        return f"{type(self).__name__}()"


class CrashDetectionFault(FaultBehavior):
    """The paper's fault: full trajectory, but the sensor never fires.

    Examples:
        >>> from repro.trajectory import DoublingTrajectory
        >>> CrashDetectionFault().detection_time(DoublingTrajectory(), 1.0)
    """

    kind = "crash_detection"

    def detection_time(
        self, trajectory: Trajectory, target: float
    ) -> Optional[float]:
        return None


class CrashStopFault(FaultBehavior):
    """The robot works correctly until ``halt_time``, then freezes.

    Unlike the paper's detection fault, a crash-stop robot *does* detect
    targets it reaches before crashing; afterwards it neither moves nor
    senses.

    Examples:
        >>> from repro.trajectory import LinearTrajectory
        >>> fault = CrashStopFault(2.0)
        >>> fault.detection_time(LinearTrajectory(1), 1.5)
        1.5
        >>> fault.detection_time(LinearTrajectory(1), 3.0) is None
        True
    """

    kind = "crash_stop"

    def __init__(self, halt_time: float) -> None:
        if not math.isfinite(halt_time) or halt_time <= 0.0:
            raise InvalidParameterError(
                f"halt time must be a positive finite real, got {halt_time!r}"
            )
        self.halt_time = float(halt_time)

    def apply_trajectory(self, trajectory: Trajectory) -> Trajectory:
        return HaltedTrajectory(trajectory, self.halt_time)

    def detection_time(
        self, trajectory: Trajectory, target: float
    ) -> Optional[float]:
        t = trajectory.first_visit_time(target)
        if t is None or t > self.halt_time:
            return None
        return t

    def describe(self) -> str:
        return f"CrashStopFault(halt_time={self.halt_time:.6g})"


class ByzantineFalseAlarmFault(FaultBehavior):
    """A Byzantine liar: spurious detection claims, no real detections.

    The robot follows its trajectory and announces "target found" at the
    given times regardless of where it is.  Engines must log these as
    :class:`~repro.simulation.events.FalseAlarmEvent` and exclude them
    from the detection time — a single lying robot must not be able to
    terminate the search early.

    Examples:
        >>> fault = ByzantineFalseAlarmFault([1.0, 4.0])
        >>> from repro.trajectory import DoublingTrajectory
        >>> fault.false_alarm_times(DoublingTrajectory(), 1.0, until=2.0)
        [1.0]
    """

    kind = "byzantine_false_alarm"

    def __init__(self, alarm_times: Sequence[float]) -> None:
        times = sorted(float(t) for t in alarm_times)
        if not times:
            raise InvalidParameterError(
                "a Byzantine robot needs at least one alarm time"
            )
        if any(not math.isfinite(t) or t < 0.0 for t in times):
            raise InvalidParameterError(
                f"alarm times must be finite and >= 0, got {times}"
            )
        self.alarm_times: Tuple[float, ...] = tuple(times)

    def detection_time(
        self, trajectory: Trajectory, target: float
    ) -> Optional[float]:
        return None

    def false_alarm_times(
        self, trajectory: Trajectory, target: float, until: float
    ) -> List[float]:
        return [t for t in self.alarm_times if t <= until]

    def describe(self) -> str:
        rendered = ", ".join(f"{t:.6g}" for t in self.alarm_times)
        return f"ByzantineFalseAlarmFault(alarm_times=[{rendered}])"


class ProbabilisticDetectionFault(FaultBehavior):
    """Each visit of the target detects independently with probability ``p``.

    Detection is *seeded-deterministic*: the Bernoulli draws for a given
    target are derived from ``(seed, target)``, so the same behavior
    object asked twice about the same target gives the same answer, and
    a campaign replayed with the same seed reproduces its outcomes
    exactly.  At most ``max_visits`` visits are sampled; a robot that
    fails all of them is treated as never detecting.

    Examples:
        >>> from repro.trajectory import DoublingTrajectory
        >>> always = ProbabilisticDetectionFault(1.0, seed=0)
        >>> always.detection_time(DoublingTrajectory(), -1.0)
        3.0
        >>> never = ProbabilisticDetectionFault(0.0, seed=0)
        >>> never.detection_time(DoublingTrajectory(), -1.0) is None
        True
    """

    kind = "probabilistic_detection"
    is_stochastic = True

    def __init__(
        self,
        detection_probability: float,
        seed: Optional[int] = None,
        max_visits: int = 64,
    ) -> None:
        if not (0.0 <= detection_probability <= 1.0):
            raise InvalidParameterError(
                "detection probability must be in [0, 1], got "
                f"{detection_probability!r}"
            )
        if max_visits < 1:
            raise InvalidParameterError(
                f"max_visits must be >= 1, got {max_visits}"
            )
        self.detection_probability = float(detection_probability)
        self.seed = (
            seed if seed is not None else random.Random().getrandbits(32)
        )
        self.max_visits = int(max_visits)

    def detection_time(
        self, trajectory: Trajectory, target: float
    ) -> Optional[float]:
        first = trajectory.first_visit_time(target)
        if first is None or self.detection_probability <= 0.0:
            return None
        if self.detection_probability >= 1.0:
            return first
        # hash(float) is stable across processes, so (seed, target) maps
        # to the same draw sequence in every run
        rng = random.Random(self.seed * 1_000_003 ^ hash(float(target)))
        horizon = max(2.0 * first, 1.0)
        sampled = 0
        # Doubling the horizon 64 times covers any plausible revisit
        # period; a path that produced no new visit by then never will.
        for _ in range(64):
            visits = trajectory.visit_times(target, horizon)
            fresh = visits[sampled:]
            for t in fresh:
                if rng.random() < self.detection_probability:
                    return t
                sampled += 1
                if sampled >= self.max_visits:
                    return None
            if not fresh and trajectory.is_finite:
                return None  # path ended; no further visits will appear
            horizon *= 2.0
        return None

    def describe(self) -> str:
        return (
            f"ProbabilisticDetectionFault(p={self.detection_probability:.6g}, "
            f"seed={self.seed})"
        )
