"""A fleet of robots and its visit/detection semantics.

The fleet is the unit the simulator operates on.  Its central queries:

* :meth:`Fleet.detection_time` — when is the target at ``x`` detected,
  given an explicit set of faulty robots?  (First visit by a reliable
  robot.)
* :meth:`Fleet.worst_case_detection_time` — the same under the *worst*
  fault assignment of a given budget, which by the static-fault argument
  equals the ``(f+1)``-st distinct first-visit time ``T_{f+1}(x)``.
"""

from __future__ import annotations

import math
from typing import (
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import InvalidParameterError
from repro.robots.behaviors import FaultBehavior
from repro.robots.robot import Robot
from repro.trajectory.base import Trajectory
from repro.trajectory.visits import (
    first_visit_times,
    kth_distinct_visit_time,
    visiting_order,
)

__all__ = ["Fleet"]


class Fleet:
    """An indexed collection of robots sharing a start point.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> fleet = Fleet.from_algorithm(ProportionalAlgorithm(3, 1))
        >>> fleet.size
        3
        >>> t = fleet.worst_case_detection_time(1.5, fault_budget=1)
        >>> t > 1.5
        True
    """

    def __init__(self, robots: Sequence[Robot]) -> None:
        robots = list(robots)
        if not robots:
            raise InvalidParameterError("fleet must contain at least one robot")
        indices = [r.index for r in robots]
        if indices != list(range(len(robots))):
            raise InvalidParameterError(
                f"robot indices must be 0..n-1 in order, got {indices}"
            )
        self._robots: List[Robot] = robots

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_trajectories(cls, trajectories: Iterable[Trajectory]) -> "Fleet":
        """Wrap plain trajectories into an undecided-fault fleet."""
        return cls([Robot(i, t) for i, t in enumerate(trajectories)])

    @classmethod
    def from_algorithm(cls, algorithm) -> "Fleet":
        """Build the fleet of a :class:`~repro.schedule.base.SearchAlgorithm`."""
        return cls.from_trajectories(algorithm.build())

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of robots ``n``."""
        return len(self._robots)

    @property
    def robots(self) -> Tuple[Robot, ...]:
        """The robots, in index order (read-only view)."""
        return tuple(self._robots)

    @property
    def trajectories(self) -> Tuple[Trajectory, ...]:
        """The robots' trajectories, in index order."""
        return tuple(r.trajectory for r in self._robots)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Robot]:
        return iter(self._robots)

    def __getitem__(self, index: int) -> Robot:
        return self._robots[index]

    def with_faults(self, faulty_indices: Iterable[int]) -> "Fleet":
        """Copy of the fleet with an explicit fault assignment."""
        faulty = set(faulty_indices)
        unknown = faulty - set(range(self.size))
        if unknown:
            raise InvalidParameterError(
                f"fault indices out of range: {sorted(unknown)}"
            )
        return Fleet(
            [
                (r.as_faulty() if r.index in faulty else r.as_reliable())
                for r in self._robots
            ]
        )

    def with_fault_behaviors(
        self, behaviors: Mapping[int, FaultBehavior]
    ) -> "Fleet":
        """Copy of the fleet with per-robot fault behaviors attached.

        Robots named in ``behaviors`` become faulty with the given
        behavior; all others become reliable.  Passing every faulty
        index with :class:`~repro.robots.behaviors.CrashDetectionFault`
        is exactly equivalent to :meth:`with_faults`.
        """
        unknown = set(behaviors) - set(range(self.size))
        if unknown:
            raise InvalidParameterError(
                f"fault indices out of range: {sorted(unknown)}"
            )
        return Fleet(
            [
                (
                    r.as_faulty(behavior=behaviors[r.index])
                    if r.index in behaviors
                    else r.as_reliable()
                )
                for r in self._robots
            ]
        )

    # ------------------------------------------------------------------
    # visit statistics
    # ------------------------------------------------------------------

    def first_visit_times(self, x: float) -> List[Optional[float]]:
        """Per-robot first visit time of ``x`` (``None`` = never)."""
        return first_visit_times(self.trajectories, x)

    def visiting_order(self, x: float) -> List[int]:
        """Robot indices in order of their first visit of ``x``."""
        return visiting_order(self.trajectories, x)

    def t_k(self, x: float, k: int) -> float:
        """Time of the ``k``-th distinct robot visit of ``x``.

        ``t_k(x, f+1)`` is the paper's ``T_{f+1}(x)`` (Definition 3).
        Returns ``inf`` when fewer than ``k`` robots ever reach ``x``.
        """
        return kth_distinct_visit_time(self.trajectories, x, k)

    # ------------------------------------------------------------------
    # detection semantics
    # ------------------------------------------------------------------

    def detection_time(self, x: float) -> float:
        """First *genuine* detection of a target at ``x``.

        Robots with undecided fault status count as reliable; faulty
        robots contribute according to their fault behavior (the paper's
        crash-detection default never detects, a crash-stop robot
        detects until it halts, …).  Returns ``inf`` when no robot ever
        detects ``x``.
        """
        best = math.inf
        for robot in self._robots:
            t = robot.detection_time_for(x)
            if t is not None and t < best:
                best = t
        return best

    def worst_case_detection_time(self, x: float, fault_budget: int) -> float:
        """Detection time of ``x`` under the worst fault assignment.

        The adversary's optimal play is to corrupt the first
        ``fault_budget`` distinct robots reaching ``x``, so this equals
        ``t_k(x, fault_budget + 1)``.

        Examples:
            >>> from repro.trajectory import LinearTrajectory
            >>> pair = Fleet.from_trajectories(
            ...     [LinearTrajectory(1), LinearTrajectory(1)]
            ... )
            >>> pair.worst_case_detection_time(3.0, fault_budget=1)
            3.0
            >>> pair.worst_case_detection_time(3.0, fault_budget=2)
            inf
        """
        if fault_budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {fault_budget}"
            )
        return self.t_k(x, fault_budget + 1)

    def worst_fault_assignment(
        self, x: float, fault_budget: int
    ) -> Set[int]:
        """The fault set realizing :meth:`worst_case_detection_time`.

        Returns the indices of the first ``fault_budget`` distinct robots
        to visit ``x`` (fewer if fewer ever visit).
        """
        if fault_budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {fault_budget}"
            )
        return set(self.visiting_order(x)[:fault_budget])

    def competitive_ratio_at(self, x: float, fault_budget: int) -> float:
        """``T_{f+1}(x) / |x|`` — the function ``K`` of Definition 3."""
        if x == 0.0:
            raise InvalidParameterError("ratio is undefined at the origin")
        return self.worst_case_detection_time(x, fault_budget) / abs(x)

    def describe(self) -> str:
        """Multi-line fleet summary."""
        lines = [f"Fleet of {self.size} robots:"]
        lines.extend("  " + r.describe() for r in self._robots)
        return "\n".join(lines)
