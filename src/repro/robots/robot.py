"""The robot entity: an identity bound to a trajectory and a fault flag.

The paper's model (Section 1): all robots start at the same location,
move at maximum speed 1, and are indistinguishable except by identity.  A
*faulty* robot follows its assigned trajectory exactly like a reliable
one — the only difference is that it does not detect the target when
visiting its location.  Faultiness is static; whether it is decided
before or during the search is irrelevant to the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidParameterError
from repro.robots.behaviors import FaultBehavior
from repro.trajectory.base import Trajectory

__all__ = ["Robot"]


@dataclass
class Robot:
    """A named robot following a trajectory.

    Attributes:
        index: Identity of the robot (its position in the fleet list);
            the paper names robots ``a_0 .. a_{n-1}``.
        trajectory: The robot's full motion plan.
        faulty: Whether this robot fails to detect the target.  ``None``
            means "not yet decided" — useful when the adversary assigns
            faults after inspecting trajectories.
        behavior: *How* a faulty robot misbehaves.  ``None`` on a faulty
            robot means the paper's model (crash-detection: full
            trajectory, no detections).  Only faulty robots carry a
            behavior.

    Examples:
        >>> from repro.trajectory import DoublingTrajectory
        >>> r = Robot(0, DoublingTrajectory())
        >>> r.name
        'a_0'
        >>> r.can_detect
        True
    """

    index: int
    trajectory: Trajectory
    faulty: Optional[bool] = field(default=None)
    behavior: Optional[FaultBehavior] = field(default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.index, int) or isinstance(self.index, bool):
            raise InvalidParameterError(f"index must be an int, got {self.index!r}")
        if self.index < 0:
            raise InvalidParameterError(
                f"index must be non-negative, got {self.index}"
            )
        if not isinstance(self.trajectory, Trajectory):
            raise InvalidParameterError(
                f"trajectory must be a Trajectory, got {self.trajectory!r}"
            )
        if self.behavior is not None and not isinstance(
            self.behavior, FaultBehavior
        ):
            raise InvalidParameterError(
                f"behavior must be a FaultBehavior, got {self.behavior!r}"
            )
        if self.behavior is not None and self.faulty is not True:
            raise InvalidParameterError(
                "only faulty robots carry a fault behavior"
            )
        self._effective: Optional[Trajectory] = None

    @property
    def name(self) -> str:
        """Paper-style name ``a_<index>``."""
        return f"a_{self.index}"

    @property
    def can_detect(self) -> bool:
        """Whether the robot detects a target it stands on.

        Undecided robots are treated as reliable — the adversary layer
        decides faults explicitly before computing detection times.
        """
        return self.faulty is not True

    @property
    def effective_trajectory(self) -> Trajectory:
        """The trajectory the robot actually follows.

        Identical to :attr:`trajectory` unless the fault behavior alters
        motion (e.g. a crash-stop truncation).  Cached so repeated
        queries share materialized segments.
        """
        if self.behavior is None:
            return self.trajectory
        if self._effective is None:
            self._effective = self.behavior.apply_trajectory(self.trajectory)
        return self._effective

    def position_at(self, time: float) -> float:
        """Delegate to the effective trajectory."""
        return self.effective_trajectory.position_at(time)

    def first_visit_time(self, x: float) -> Optional[float]:
        """Delegate to the (planned) trajectory."""
        return self.trajectory.first_visit_time(x)

    def detection_time_for(self, x: float) -> Optional[float]:
        """When this robot *genuinely* detects a target at ``x``.

        ``None`` means never: the robot is faulty in the paper's sense,
        its behavior suppresses every detection, or it simply never
        reaches ``x``.
        """
        if self.behavior is not None:
            return self.behavior.detection_time(self.trajectory, x)
        if self.faulty is True:
            return None
        return self.trajectory.first_visit_time(x)

    def as_faulty(self, behavior: Optional[FaultBehavior] = None) -> "Robot":
        """Copy of this robot marked faulty (trajectory shared)."""
        return Robot(self.index, self.trajectory, faulty=True, behavior=behavior)

    def as_reliable(self) -> "Robot":
        """Copy of this robot marked reliable (trajectory shared)."""
        return Robot(self.index, self.trajectory, faulty=False)

    def describe(self) -> str:
        """One-line summary for reports."""
        status = {None: "undecided", True: "FAULTY", False: "reliable"}[self.faulty]
        if self.behavior is not None:
            status += f", {self.behavior.kind}"
        return f"{self.name} [{status}]: {self.trajectory.describe()}"
