"""Robots, fleets, fault models, and fault behaviors.

* :class:`~repro.robots.robot.Robot` — identity + trajectory + fault flag;
* :class:`~repro.robots.fleet.Fleet` — the collection the simulator runs,
  with the ``T_{f+1}`` visit statistics;
* :mod:`repro.robots.faults` — adversarial / fixed / random / behavioral
  fault models (who is faulty);
* :mod:`repro.robots.behaviors` — the generalized fault taxonomy (how a
  faulty robot misbehaves): crash-detection, crash-stop, Byzantine false
  alarms, probabilistic detection.
"""

from repro.robots.behaviors import (
    ByzantineFalseAlarmFault,
    CrashDetectionFault,
    CrashStopFault,
    FaultBehavior,
    ProbabilisticDetectionFault,
)
from repro.robots.faults import (
    AdversarialFaults,
    BehavioralFaults,
    ByzantineAdversary,
    FaultModel,
    FixedFaults,
    RandomFaults,
)
from repro.robots.fleet import Fleet
from repro.robots.robot import Robot

__all__ = [
    "AdversarialFaults",
    "BehavioralFaults",
    "ByzantineAdversary",
    "ByzantineFalseAlarmFault",
    "CrashDetectionFault",
    "CrashStopFault",
    "FaultBehavior",
    "FaultModel",
    "FixedFaults",
    "Fleet",
    "ProbabilisticDetectionFault",
    "RandomFaults",
    "Robot",
]
