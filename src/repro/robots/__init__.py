"""Robots, fleets, and fault models.

* :class:`~repro.robots.robot.Robot` — identity + trajectory + fault flag;
* :class:`~repro.robots.fleet.Fleet` — the collection the simulator runs,
  with the ``T_{f+1}`` visit statistics;
* :mod:`repro.robots.faults` — adversarial / fixed / random fault models.
"""

from repro.robots.faults import (
    AdversarialFaults,
    FaultModel,
    FixedFaults,
    RandomFaults,
)
from repro.robots.fleet import Fleet
from repro.robots.robot import Robot

__all__ = [
    "AdversarialFaults",
    "FaultModel",
    "FixedFaults",
    "Fleet",
    "RandomFaults",
    "Robot",
]
