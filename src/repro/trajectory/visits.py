"""Visit-order statistics across a collection of trajectories.

The central quantity of the paper, ``T_{f+1}(x)`` (Definition 3), is the
time of the visit of point ``x`` by the ``(f+1)``-st *distinct* robot.
Because a faulty robot behaves identically to a reliable one and faults
are static, the adversary's best move is to corrupt exactly the first
``f`` distinct robots that reach the target — so the worst-case detection
time is the ``(f+1)``-st smallest *first*-visit time among the robots.

These helpers compute first-visit times and their order statistics for
any sequence of trajectories, independent of how those trajectories were
constructed.

Tie semantics (pinned; the event and batch paths share it)
----------------------------------------------------------

Distinctness is by robot *identity*, never by time tolerance: two robots
arriving at the same instant are two distinct visitors, so with ``k``
exact simultaneous arrivals ``T_k = T_1`` — e.g. the two-group algorithm
(``n >= 2f + 2``) sends ``f + 1`` robots together each way precisely so
that ``T_{f+1}(x) = |x|``.  :data:`repro.core.tolerance.TIME_RTOL` plays
no role in *counting* visitors; it only governs whether two computed
times are reported as the same instant.  Consistently,
:func:`visiting_order` breaks exact ties by robot index, and the engine's
event log orders tied events by robot index with the closing
``DetectionEvent`` last.  The batch kernels
(:mod:`repro.batch.kernels`) inherit the same semantics mechanically:
the ``k``-th smallest entry of a first-visit column counts tied entries
separately.  ``tests/trajectory/test_visit_ties.py`` holds both paths
to this contract.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.trajectory.base import Trajectory

__all__ = [
    "first_visit_times",
    "sorted_finite_visit_times",
    "kth_distinct_visit_time",
    "visiting_order",
]


def first_visit_times(
    trajectories: Sequence[Trajectory], x: float
) -> List[Optional[float]]:
    """First visit time of ``x`` for each trajectory (``None`` = never).

    Examples:
        >>> from repro.trajectory.linear import LinearTrajectory
        >>> fleet = [LinearTrajectory(1), LinearTrajectory(-1)]
        >>> first_visit_times(fleet, 2.0)
        [2.0, None]
    """
    if not trajectories:
        raise InvalidParameterError("need at least one trajectory")
    return [traj.first_visit_time(x) for traj in trajectories]


def sorted_finite_visit_times(
    trajectories: Sequence[Trajectory], x: float
) -> List[float]:
    """Sorted list of the finite first-visit times of ``x``."""
    return sorted(
        t for t in first_visit_times(trajectories, x) if t is not None
    )


def kth_distinct_visit_time(
    trajectories: Sequence[Trajectory], x: float, k: int
) -> float:
    """Time of the visit of ``x`` by the ``k``-th distinct robot.

    ``k = f + 1`` gives the paper's ``T_{f+1}(x)``.  Returns ``math.inf``
    when fewer than ``k`` robots ever visit ``x`` — in that case an
    adversary corrupting the visitors makes the target undetectable, i.e.
    the algorithm is not a valid search algorithm for that fault budget.

    Robots arriving at exactly the same instant count separately (see
    the module docstring): ``k`` simultaneous arrivals give
    ``T_k = T_1``, not ``inf``.

    Examples:
        >>> from repro.trajectory.doubling import DoublingTrajectory
        >>> solo = [DoublingTrajectory()]
        >>> kth_distinct_visit_time(solo, -1.0, 1)
        3.0
        >>> kth_distinct_visit_time(solo, -1.0, 2)
        inf
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if k > len(trajectories):
        return math.inf
    times = sorted_finite_visit_times(trajectories, x)
    if len(times) < k:
        return math.inf
    return times[k - 1]


def visiting_order(
    trajectories: Sequence[Trajectory], x: float
) -> List[int]:
    """Indices of the trajectories in order of their first visit of ``x``.

    Trajectories that never visit ``x`` are omitted.  Ties are broken by
    index, which matches the convention that robot identities are fixed
    and distinct.
    """
    timed = [
        (t, i)
        for i, t in enumerate(first_visit_times(trajectories, x))
        if t is not None
    ]
    timed.sort()
    return [i for _, i in timed]
