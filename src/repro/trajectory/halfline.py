"""Half-line trajectories: full-return bounces that never cross the origin.

The half-line variant (arXiv:2002.07797) confines the search to one ray.
A zig-zag in the :class:`~repro.trajectory.zigzag.ZigZagTrajectory`
sense cannot express this — its turning points must alternate sides of
the origin — so the ray gets its own family: the robot sweeps from the
origin to an apex, returns all the way to the origin, sweeps to the
next (farther) apex, and so on.  Every position along the path satisfies
``side * position >= 0``: the origin is touched, never crossed.

* :class:`HalfLineZigZag` — an explicit (finite or lazy) apex sequence;
* :class:`GeometricHalfLine` — apexes in geometric progression
  ``first_turn * gamma^i``, the expansion-ratio family whose expected
  detection time :mod:`repro.core.halfline` gives in closed form.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, List, Optional

from repro.errors import InvalidParameterError, TrajectoryError
from repro.geometry.point import SpaceTimePoint
from repro.trajectory.base import Trajectory

__all__ = ["HalfLineZigZag", "GeometricHalfLine"]


def _validate_side(side: int) -> int:
    if side not in (1, -1):
        raise InvalidParameterError(f"side must be +1 or -1, got {side!r}")
    return int(side)


def _validate_start_time(start_time: float) -> float:
    if start_time < 0 or not math.isfinite(start_time):
        raise InvalidParameterError(
            f"start_time must be a finite real >= 0, got {start_time!r}"
        )
    return float(start_time)


class HalfLineZigZag(Trajectory):
    """Full-return bounce through an explicit apex sequence on one ray.

    Attributes:
        apexes: Finite list, or any iterable (possibly infinite), of
            apex *magnitudes* — strictly positive, and strictly
            increasing so every bounce extends coverage.
        side: ``+1`` searches ``[0, +inf)``, ``-1`` searches
            ``(-inf, 0]``.
        start_time: Time at which the robot leaves the origin.

    Examples:
        >>> h = HalfLineZigZag([1.0, 2.0, 4.0])
        >>> h.first_visit_time(1.5)
        3.5
        >>> h.visit_times(0.5, until=5.0)
        [0.5, 1.5, 2.5]
        >>> h.covers(-0.5)
        False
    """

    def __init__(
        self,
        apexes: Iterable[float],
        side: int = 1,
        start_time: float = 0.0,
    ) -> None:
        super().__init__()
        self.side = _validate_side(side)
        self.start_time = _validate_start_time(start_time)
        self._apex_source = apexes
        self._finite_apexes: Optional[List[float]] = None
        if isinstance(apexes, (list, tuple)):
            self._finite_apexes = [float(a) for a in apexes]
            _validate_apexes(self._finite_apexes)

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        t = self.start_time
        if t > 0:
            yield SpaceTimePoint(0.0, t)
        source: Iterable[float]
        if self._finite_apexes is not None:
            source = self._finite_apexes
        else:
            source = self._apex_source
        prev = 0.0
        for raw in source:
            a = float(raw)
            if not math.isfinite(a) or a <= prev:
                raise TrajectoryError(
                    f"apexes must be finite and strictly increasing, got "
                    f"{a!r} after {prev!r}"
                )
            prev = a
            t += a
            yield SpaceTimePoint(self.side * a, t)
            t += a
            yield SpaceTimePoint(0.0, t)

    def covers(self, x: float) -> bool:
        if x == 0.0:
            return True
        if (x > 0) != (self.side > 0):
            return False
        if self._finite_apexes is None:
            # Lazy source without a bound: assume the canonical growing
            # sequence, which covers the whole ray.
            return True
        return abs(x) <= max(self._finite_apexes)

    def describe(self) -> str:
        ray = "[0, +inf)" if self.side > 0 else "(-inf, 0]"
        if self._finite_apexes is not None:
            head = ", ".join(f"{a:g}" for a in self._finite_apexes[:4])
            more = ", ..." if len(self._finite_apexes) > 4 else ""
            return f"HalfLineZigZag([{head}{more}]) on {ray}"
        return f"HalfLineZigZag(<lazy>) on {ray}"


class GeometricHalfLine(Trajectory):
    """Full-return bounce with geometric apexes ``first_turn * gamma^i``.

    The expansion-ratio family of arXiv:2002.07797, whose expected
    detection time under per-visit probability ``p`` is given in closed
    form by :func:`repro.core.halfline.halfline_expected_time` (for
    ``first_turn = 1``) and is optimized by
    :func:`repro.core.halfline.optimal_halfline_gamma`.

    Attributes:
        gamma: Expansion ratio, strictly greater than 1.
        first_turn: Magnitude of the first apex (> 0); staggered fleets
            phase-shift robots by scaling it.
        side: ``+1`` for the nonnegative ray, ``-1`` for the nonpositive
            one.
        start_time: Departure time from the origin.

    Examples:
        >>> g = GeometricHalfLine(gamma=2.0)
        >>> [round(v.position, 6) for v in g.vertices_until(7.0)]
        [0.0, 1.0, 0.0, 2.0, 0.0]
        >>> g.first_visit_time(3.0)
        9.0
        >>> g.covers(-1.0)
        False
    """

    def __init__(
        self,
        gamma: float,
        first_turn: float = 1.0,
        side: int = 1,
        start_time: float = 0.0,
    ) -> None:
        super().__init__()
        if not math.isfinite(gamma) or gamma <= 1.0:
            raise InvalidParameterError(
                f"expansion ratio gamma must be > 1, got {gamma!r}"
            )
        if not math.isfinite(first_turn) or first_turn <= 0.0:
            raise InvalidParameterError(
                f"first_turn must be a finite real > 0, got {first_turn!r}"
            )
        self.gamma = float(gamma)
        self.first_turn = float(first_turn)
        self.side = _validate_side(side)
        self.start_time = _validate_start_time(start_time)

    def apex_magnitude(self, index: int) -> float:
        """The ``index``-th apex magnitude, ``first_turn * gamma^index``."""
        if index < 0:
            raise InvalidParameterError(f"index must be >= 0, got {index}")
        return self.first_turn * self.gamma**index

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        t = self.start_time
        if t > 0:
            yield SpaceTimePoint(0.0, t)
        for i in itertools.count():
            a = self.apex_magnitude(i)
            t += a
            yield SpaceTimePoint(self.side * a, t)
            t += a
            yield SpaceTimePoint(0.0, t)

    def covers(self, x: float) -> bool:
        return x == 0.0 or (x > 0) == (self.side > 0)

    def describe(self) -> str:
        return (
            f"GeometricHalfLine(gamma={self.gamma:g}, "
            f"first_turn={self.first_turn:g}, side={self.side:+d})"
        )


def _validate_apexes(apexes: List[float]) -> None:
    if not apexes:
        raise InvalidParameterError("need at least one apex")
    prev = 0.0
    for a in apexes:
        if not math.isfinite(a) or a <= prev:
            raise InvalidParameterError(
                f"apexes must be finite and strictly increasing positive "
                f"reals, got {a!r} after {prev!r}"
            )
        prev = a
