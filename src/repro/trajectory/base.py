"""Trajectory abstraction: where is the robot, and when does it visit x?

A *trajectory* in this library is a (possibly infinite) continuous path of
a robot on the line, represented in space-time as a chain of
constant-velocity legs.  Zig-zag strategies have infinitely many turning
points, so trajectories are **lazy**: vertices are produced by an iterator
and materialized only as far as a query requires.

The two queries that everything else is built on:

* :meth:`Trajectory.position_at` — position at a given time;
* :meth:`Trajectory.first_visit_time` — the earliest time the robot is at
  a given point ``x`` (the quantity whose order statistics across a fleet
  define the search time ``T_{f+1}(x)`` of Definition 3).
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence

from repro.errors import InvalidParameterError, TrajectoryError
from repro.geometry.point import SpaceTimePoint
from repro.geometry.segment import MotionSegment

__all__ = ["Trajectory", "MaterializedView"]

_EPS = 1e-9

#: Dedup width for :meth:`Trajectory.visit_times`.  A visit exactly at a
#: turn is reported by both adjacent segments with float-identical (or
#: rounding-distance) times, so the merge only needs to absorb rounding
#: noise.  It must stay far tighter than ``_EPS``: at large times a
#: relative 1e-9 window would swallow *genuinely distinct* visits — the
#: return-leg and next out-leg visits of an expansion strategy are a
#: constant ``2|x|`` apart forever — and silently bias expected-time
#: series (see :mod:`repro.core.expected_time`).
_MERGE_EPS = 1e-12


class Trajectory(ABC):
    """Base class for robot trajectories.

    Subclasses implement :meth:`vertex_iterator`, yielding the starting
    point followed by every subsequent breakpoint in time order, and
    :meth:`covers`, an analytic answer to "does this path *ever* reach
    position ``x``?".  The base class owns lazy materialization and all
    visit queries.
    """

    def __init__(self) -> None:
        self._vertex_iter: Optional[Iterator[SpaceTimePoint]] = None
        self._vertices: List[SpaceTimePoint] = []
        self._segments: List[MotionSegment] = []
        self._exhausted = False

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------

    @abstractmethod
    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        """Yield the start point and then each breakpoint, time-ordered.

        The iterator may be infinite.  Every pair of consecutive vertices
        must satisfy the unit speed limit.
        """

    @abstractmethod
    def covers(self, x: float) -> bool:
        """Whether the trajectory eventually reaches position ``x``.

        This must be answerable without materializing the infinite path
        (e.g. a zig-zag with growing amplitude covers the whole line; a
        straight run to the right covers exactly ``[start, +inf)``).
        """

    def describe(self) -> str:
        """One-line human-readable description (overridable)."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # materialization machinery
    # ------------------------------------------------------------------

    def _iter(self) -> Iterator[SpaceTimePoint]:
        if self._vertex_iter is None:
            self._vertex_iter = self.vertex_iterator()
        return self._vertex_iter

    def _pull_vertex(self) -> bool:
        """Materialize one more vertex; return False when exhausted."""
        if self._exhausted:
            return False
        try:
            vertex = next(self._iter())
        except StopIteration:
            self._exhausted = True
            return False
        if self._vertices:
            prev = self._vertices[-1]
            if vertex.time < prev.time - _EPS:
                raise TrajectoryError(
                    f"vertex times must be non-decreasing: {prev.time} -> "
                    f"{vertex.time} in {self.describe()}"
                )
            self._segments.append(MotionSegment(prev, vertex))
        self._vertices.append(vertex)
        return True

    def _ensure_start(self) -> None:
        if not self._vertices and not self._pull_vertex():
            raise TrajectoryError(f"{self.describe()} yields no vertices")

    def ensure_time(self, time: float) -> None:
        """Materialize segments until the path extends past ``time`` (or
        the path ends)."""
        self._ensure_start()
        while (not self._exhausted) and (
            not self._segments or self._segments[-1].end.time < time
        ):
            if not self._pull_vertex():
                break

    def ensure_segments(self, count: int) -> None:
        """Materialize at least ``count`` segments (or exhaust the path)."""
        self._ensure_start()
        while len(self._segments) < count and self._pull_vertex():
            pass

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def start(self) -> SpaceTimePoint:
        """Starting space-time point (for all paper algorithms,
        the origin at time 0)."""
        self._ensure_start()
        return self._vertices[0]

    @property
    def is_finite(self) -> bool:
        """Whether the trajectory has been proven finite.

        Only meaningful after some materialization; infinite paths never
        report True.
        """
        return self._exhausted

    def materialized_segments(self) -> Sequence[MotionSegment]:
        """Segments materialized so far (for introspection/plotting)."""
        return tuple(self._segments)

    def segments_until(self, time: float) -> Sequence[MotionSegment]:
        """All segments starting at or before ``time``."""
        self.ensure_time(time)
        return tuple(s for s in self._segments if s.start.time <= time + _EPS)

    def vertices_until(self, time: float) -> Sequence[SpaceTimePoint]:
        """All vertices with time coordinate at most ``time``."""
        self.ensure_time(time)
        return tuple(v for v in self._vertices if v.time <= time + _EPS)

    def turning_points_until(self, time: float) -> List[SpaceTimePoint]:
        """Breakpoints up to ``time`` where the motion direction reverses."""
        self.ensure_time(time)
        turns: List[SpaceTimePoint] = []
        prev_dir: Optional[int] = None
        for seg in self._segments:
            if seg.start.time > time:
                break
            d = seg.direction
            if d == 0:
                continue
            if prev_dir is not None and d != prev_dir:
                turns.append(seg.start)
            prev_dir = d
        return turns

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def position_at(self, time: float) -> float:
        """Position of the robot at ``time``.

        Before the trajectory's start time the robot sits at its start
        position; after a *finite* trajectory ends it stays at the final
        position.
        """
        if not math.isfinite(time):
            raise InvalidParameterError(f"time must be finite, got {time!r}")
        self.ensure_time(time)
        if time <= self.start.time:
            return self.start.position
        if self._exhausted and time >= self._vertices[-1].time:
            return self._vertices[-1].position
        # binary search on materialized segments
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid].end.time < time:
                lo = mid + 1
            else:
                hi = mid
        return self._segments[lo].position_at(time)

    def first_visit_time(self, x: float) -> Optional[float]:
        """Earliest time at which the robot is at position ``x``.

        Returns ``None`` when :meth:`covers` says the point is never
        reached.  Standing at the start point counts as a visit.
        """
        if not math.isfinite(x):
            raise InvalidParameterError(f"position must be finite, got {x!r}")
        if not self.covers(x):
            return None
        self._ensure_start()
        if abs(self.start.position - x) <= _EPS * (1 + abs(x)):
            return self.start.time
        index = 0
        while True:
            self.ensure_segments(index + 1)
            if index >= len(self._segments):
                raise TrajectoryError(
                    f"{self.describe()} claims to cover x={x} but the path "
                    "ended before reaching it"
                )
            t = self._segments[index].visit_time(x)
            if t is not None:
                return t
            index += 1

    def visit_times(self, x: float, until: float) -> List[float]:
        """All visit times of ``x`` up to time ``until`` (merged at turns)."""
        self.ensure_time(until)
        times: List[float] = []
        for seg in self._segments:
            if seg.start.time > until:
                break
            t = seg.visit_time(x)
            if t is None or t > until:
                continue
            if times and abs(times[-1] - t) <= _MERGE_EPS * (1.0 + abs(t)):
                continue
            times.append(t)
        return times

    def visit_count(self, x: float, until: float) -> int:
        """Number of distinct visits of ``x`` up to time ``until``."""
        return len(self.visit_times(x, until))

    def max_excursion_until(self, time: float) -> float:
        """Largest ``|position|`` attained up to ``time``."""
        self.ensure_time(time)
        best = abs(self.start.position)
        for seg in self._segments:
            if seg.start.time > time:
                break
            end_t = min(seg.end.time, time)
            best = max(best, abs(seg.position_at(end_t)), abs(seg.start.position))
        return best

    def total_distance_until(self, time: float) -> float:
        """Distance travelled up to ``time``."""
        self.ensure_time(time)
        total = 0.0
        for seg in self._segments:
            if seg.start.time > time:
                break
            end_t = min(seg.end.time, time)
            total += abs(seg.position_at(end_t) - seg.start.position)
        return total

    def view_until(self, time: float) -> "MaterializedView":
        """A finite, immutable snapshot of the path up to ``time``.

        Segments extending past ``time`` are clipped, so the view's
        duration is exactly ``time - start.time``.
        """
        clipped = []
        for seg in self.segments_until(time):
            end_t = min(seg.end.time, time)
            clipped.append(seg.clipped_to_times(seg.start.time, end_t))
        return MaterializedView(clipped, self.describe())


class MaterializedView:
    """A finite snapshot of a trajectory: plain data for plotting/reports.

    Examples:
        >>> from repro.trajectory.linear import LinearTrajectory
        >>> view = LinearTrajectory(direction=1).view_until(4.0)
        >>> view.duration
        4.0
    """

    def __init__(self, segments: Sequence[MotionSegment], label: str = ""):
        if not segments:
            raise InvalidParameterError("view needs at least one segment")
        self.segments = tuple(segments)
        self.label = label

    @property
    def duration(self) -> float:
        """Elapsed time of the snapshot."""
        return self.segments[-1].end.time - self.segments[0].start.time

    @property
    def vertices(self) -> List[SpaceTimePoint]:
        """All breakpoints (start included)."""
        pts = [self.segments[0].start]
        pts.extend(s.end for s in self.segments)
        return pts

    def bounding_positions(self) -> tuple:
        """``(min_position, max_position)`` over the snapshot."""
        xs = list(
            itertools.chain.from_iterable(
                (s.start.position, s.end.position) for s in self.segments
            )
        )
        return (min(xs), max(xs))
