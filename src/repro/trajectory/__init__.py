"""Trajectory engine: lazy unit-speed paths on the line.

Concrete families:

* :class:`~repro.trajectory.linear.LinearTrajectory` — straight runs, the
  building block of the trivial ``n >= 2f+2`` algorithm;
* :class:`~repro.trajectory.zigzag.ZigZagTrajectory` /
  :class:`~repro.trajectory.zigzag.GeometricZigZag` — general and
  geometric zig-zag strategies;
* :class:`~repro.trajectory.doubling.DoublingTrajectory` — the classic
  competitive-ratio-9 strategy;
* :class:`~repro.trajectory.cone_zigzag.ConeZigZag` — zig-zags defined by
  the cone ``C_beta`` (Definition 1), including the Definition 4 start-up
  from the origin;
* :class:`~repro.trajectory.piecewise.PiecewiseTrajectory` — finite
  explicit paths;
* :class:`~repro.trajectory.halfline.HalfLineZigZag` /
  :class:`~repro.trajectory.halfline.GeometricHalfLine` — one-sided
  full-return strategies that never cross the origin (the half-line
  variant, arXiv:2002.07797).

Fleet-level visit-order statistics (``T_{f+1}``) live in
:mod:`repro.trajectory.visits`.
"""

from repro.trajectory.base import MaterializedView, Trajectory
from repro.trajectory.cone_zigzag import ConeZigZag
from repro.trajectory.doubling import DOUBLING_COMPETITIVE_RATIO, DoublingTrajectory
from repro.trajectory.halfline import GeometricHalfLine, HalfLineZigZag
from repro.trajectory.halted import HaltedTrajectory
from repro.trajectory.linear import LinearTrajectory, StationaryTrajectory
from repro.trajectory.piecewise import PiecewiseTrajectory, waypoints
from repro.trajectory.visits import (
    first_visit_times,
    kth_distinct_visit_time,
    sorted_finite_visit_times,
    visiting_order,
)
from repro.trajectory.zigzag import GeometricZigZag, ZigZagTrajectory

__all__ = [
    "ConeZigZag",
    "DOUBLING_COMPETITIVE_RATIO",
    "DoublingTrajectory",
    "GeometricHalfLine",
    "GeometricZigZag",
    "HalfLineZigZag",
    "HaltedTrajectory",
    "LinearTrajectory",
    "MaterializedView",
    "PiecewiseTrajectory",
    "StationaryTrajectory",
    "Trajectory",
    "ZigZagTrajectory",
    "first_visit_times",
    "kth_distinct_visit_time",
    "sorted_finite_visit_times",
    "visiting_order",
    "waypoints",
]
