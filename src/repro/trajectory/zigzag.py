"""General zig-zag strategies (Section 1 / Figure 1).

A zig-zag strategy is determined by its sequence of *turning points*
``x_0, x_1, x_2, ...``: the robot starts at the origin, travels at unit
speed to ``x_0``, turns around, travels to ``x_1``, and so on.  The
sequence may be finite or infinite; for the search to cover the whole
line, the turning points must alternate sides and grow without bound.

:class:`GeometricZigZag` specializes the turning points to a geometric
progression ``x_{i+1} = -kappa * x_i`` — the "expansion factor
``kappa``" strategies discussed throughout the paper, of which the
classic doubling strategy is the ``kappa = 2`` member.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Iterator, List, Optional

from repro.errors import InvalidParameterError, TrajectoryError
from repro.geometry.point import SpaceTimePoint
from repro.trajectory.base import Trajectory

__all__ = ["ZigZagTrajectory", "GeometricZigZag"]


class ZigZagTrajectory(Trajectory):
    """A unit-speed zig-zag through an explicit turning-point sequence.

    Attributes:
        turning_points: Finite list, or any iterable (possibly infinite),
            of turning positions.  Consecutive turning points must lie on
            opposite sides of the robot's direction of travel — i.e. each
            one is a genuine reversal — and must be nonzero.
        start_time: Time at which the robot leaves the origin.

    Examples:
        >>> z = ZigZagTrajectory([1.0, -2.0, 4.0, -8.0])
        >>> z.first_visit_time(1.0)
        1.0
        >>> z.first_visit_time(-1.0)
        3.0
        >>> z.first_visit_time(3.0)
        9.0
    """

    def __init__(
        self,
        turning_points: Iterable[float],
        start_time: float = 0.0,
        covers_hint: Optional[Callable[[float], bool]] = None,
    ) -> None:
        super().__init__()
        if start_time < 0:
            raise InvalidParameterError(
                f"start_time must be >= 0, got {start_time!r}"
            )
        self.start_time = start_time
        self._turning_source = turning_points
        self._finite_points: Optional[List[float]] = None
        if isinstance(turning_points, (list, tuple)):
            self._finite_points = [float(x) for x in turning_points]
            _validate_turning_points(self._finite_points)
        self._covers_hint = covers_hint

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        t = self.start_time
        if t > 0:
            yield SpaceTimePoint(0.0, t)
        pos = 0.0
        prev: Optional[float] = None
        source: Iterable[float]
        if self._finite_points is not None:
            source = self._finite_points
        else:
            source = self._turning_source
        for raw in source:
            x = float(raw)
            if x == 0.0:
                raise TrajectoryError("turning point must be nonzero")
            if prev is not None:
                _check_reversal(prev_from=pos_before, at=prev, to=x)
            pos_before = pos
            t += abs(x - pos)
            pos = x
            prev = x
            yield SpaceTimePoint(x, t)

    def covers(self, x: float) -> bool:
        if self._covers_hint is not None:
            return self._covers_hint(x)
        if self._finite_points is None:
            # Infinite source without a hint: assume the canonical growing
            # alternating pattern, which covers the whole line.
            return True
        if x == 0.0:
            return True
        lo = min(0.0, min(self._finite_points))
        hi = max(0.0, max(self._finite_points))
        return lo <= x <= hi

    def describe(self) -> str:
        if self._finite_points is not None:
            head = ", ".join(f"{x:g}" for x in self._finite_points[:4])
            more = ", ..." if len(self._finite_points) > 4 else ""
            return f"ZigZagTrajectory([{head}{more}])"
        return "ZigZagTrajectory(<lazy>)"


class GeometricZigZag(Trajectory):
    """Zig-zag with geometric turning points ``x_i = x0 * (-kappa)^i``.

    This is the family referred to in the paper as strategies with
    *expansion factor* ``kappa``.  ``GeometricZigZag(1.0, 2.0)`` is the
    classic doubling strategy with competitive ratio 9 for a single
    reliable robot.

    Attributes:
        first_turn: Signed position of the first turning point (its sign
            selects the side searched first).
        kappa: Expansion factor, strictly greater than 1.
        start_time: Departure time from the origin.

    Examples:
        >>> d = GeometricZigZag(first_turn=1.0, kappa=2.0)
        >>> [round(v.position, 6) for v in d.vertices_until(20.0)]
        [0.0, 1.0, -2.0, 4.0]
    """

    def __init__(
        self, first_turn: float, kappa: float, start_time: float = 0.0
    ) -> None:
        super().__init__()
        if first_turn == 0.0 or not math.isfinite(first_turn):
            raise InvalidParameterError(
                f"first_turn must be a nonzero finite real, got {first_turn!r}"
            )
        if not math.isfinite(kappa) or kappa <= 1.0:
            raise InvalidParameterError(
                f"expansion factor kappa must be > 1, got {kappa!r}"
            )
        if start_time < 0:
            raise InvalidParameterError(
                f"start_time must be >= 0, got {start_time!r}"
            )
        self.first_turn = float(first_turn)
        self.kappa = float(kappa)
        self.start_time = float(start_time)

    def turning_position(self, index: int) -> float:
        """The ``index``-th turning point, ``x0 * (-kappa)^index``."""
        if index < 0:
            raise InvalidParameterError(f"index must be >= 0, got {index}")
        return self.first_turn * ((-self.kappa) ** index)

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        t = self.start_time
        if t > 0:
            yield SpaceTimePoint(0.0, t)
        pos = 0.0
        for i in itertools.count():
            x = self.turning_position(i)
            t += abs(x - pos)
            pos = x
            yield SpaceTimePoint(x, t)

    def covers(self, x: float) -> bool:
        return True

    def describe(self) -> str:
        return (
            f"GeometricZigZag(first_turn={self.first_turn:g}, "
            f"kappa={self.kappa:g})"
        )


def _validate_turning_points(points: List[float]) -> None:
    """Validate an explicit turning-point list: nonzero, genuine reversals."""
    if not points:
        raise InvalidParameterError("need at least one turning point")
    pos = 0.0
    prev: Optional[float] = None
    prev_from = 0.0
    for x in points:
        if x == 0.0 or not math.isfinite(x):
            raise InvalidParameterError(
                f"turning points must be nonzero finite reals, got {x!r}"
            )
        if prev is not None:
            _check_reversal(prev_from=prev_from, at=prev, to=x)
        prev_from = pos
        pos = x
        prev = x


def _check_reversal(prev_from: float, at: float, to: float) -> None:
    """Require that the path direction reverses at turning point ``at``."""
    incoming = at - prev_from
    outgoing = to - at
    if incoming == 0.0 or outgoing == 0.0:
        raise InvalidParameterError(
            f"degenerate turning point at {at!r} (zero-length leg)"
        )
    if (incoming > 0) == (outgoing > 0):
        raise InvalidParameterError(
            f"turning point {at!r} does not reverse direction "
            f"(incoming {incoming:+g}, outgoing {outgoing:+g})"
        )
