"""Cone-defined zig-zag movements (Definition 1, Lemma 1, Definition 4).

A robot of the proportional schedule algorithm ``A(n, f)`` has a
trajectory in three conceptual parts:

1. a *start-up leg* from the origin to its first cone turning point
   ``tau'`` — travelled at reduced speed ``1/beta`` so that the boundary
   point ``(tau', beta |tau'|)`` is reached exactly on the cone;
2. from then on, a unit-speed zig-zag *inside* the cone ``C_beta`` that
   reverses direction whenever it touches the boundary;
3. implicitly, the backward extension of Definition 4: the anchor turning
   point supplied by the schedule may be large, and the constructor walks
   it backwards (``x -> -x / kappa``) until its magnitude drops below
   ``inner_radius`` (the known minimum target distance, 1 in the paper).

Lemma 1 guarantees the turning points are
``x_i = x_first * kappa^i * (-1)^i`` with
``kappa = (beta + 1)/(beta - 1)``, each visited at time ``beta * |x_i|``.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List

from repro.errors import InvalidParameterError
from repro.geometry.cone import Cone
from repro.geometry.point import SpaceTimePoint
from repro.trajectory.base import Trajectory

__all__ = ["ConeZigZag"]


class ConeZigZag(Trajectory):
    """Zig-zag of a single robot inside the cone ``C_beta``.

    Attributes:
        cone: The cone ``C_beta`` shared by the whole schedule.
        anchor: Signed position of one turning point of this robot.  The
            full (bi-infinite) zig-zag through the cone is determined by
            any single turning point; the constructor normalizes it.
        inner_radius: Magnitude below which the backward extension stops
            (Definition 4 uses the minimum target distance 1).  The first
            actual turning point of the robot is the last backward
            extension with ``|x| < inner_radius`` — unless the anchor
            itself has magnitude exactly ``inner_radius``, which matches
            the paper's special treatment of robot ``a_0`` (it starts its
            zig-zag at ``tau_0 = 1`` directly).

    Examples:
        >>> robot = ConeZigZag(Cone(3.0), anchor=1.0)
        >>> robot.first_cone_turn
        1.0
        >>> robot.first_visit_time(1.0)   # reaches 1 at time beta * 1
        3.0
        >>> robot.turning_position(1)     # then turns at -kappa
        -2.0
    """

    def __init__(
        self, cone: Cone, anchor: float, inner_radius: float = 1.0
    ) -> None:
        super().__init__()
        if not isinstance(cone, Cone):
            raise InvalidParameterError(f"cone must be a Cone, got {cone!r}")
        if anchor == 0.0 or not math.isfinite(anchor):
            raise InvalidParameterError(
                f"anchor must be a nonzero finite real, got {anchor!r}"
            )
        if inner_radius <= 0.0:
            raise InvalidParameterError(
                f"inner_radius must be positive, got {inner_radius!r}"
            )
        self.cone = cone
        self.anchor = float(anchor)
        self.inner_radius = float(inner_radius)
        self.first_cone_turn = self._backward_extend(self.anchor)

    def _backward_extend(self, x: float) -> float:
        """Walk the anchor backwards through the cone until the magnitude
        drops below ``inner_radius`` (Definition 4).

        An anchor already at magnitude exactly ``inner_radius`` is kept
        as-is (robot ``a_0`` of the paper); one strictly inside is also
        kept.
        """
        tol = 1e-12 * (1.0 + abs(x))
        if abs(x) <= self.inner_radius + tol:
            return x
        kappa = self.cone.expansion_factor
        while abs(x) > self.inner_radius + 1e-12 * (1.0 + abs(x)):
            x = -x / kappa
        return x

    # ------------------------------------------------------------------
    # turning-point formulas (Lemma 1)
    # ------------------------------------------------------------------

    def turning_position(self, index: int) -> float:
        """The ``index``-th turning point counted from the first cone
        turn; ``index`` may be any non-negative integer.

        ``x_i = x_first * kappa^i * (-1)^i`` (Lemma 1).
        """
        if index < 0:
            raise InvalidParameterError(f"index must be >= 0, got {index}")
        return self.cone.turning_point(self.first_cone_turn, index)

    def turning_time(self, index: int) -> float:
        """Time of the ``index``-th turning point: ``beta * |x_i|``."""
        return self.cone.turning_time(self.first_cone_turn, index)

    def turning_points_in_radius(self, radius: float) -> List[SpaceTimePoint]:
        """All turning points with ``|position| <= radius`` (for plots)."""
        if radius <= 0:
            raise InvalidParameterError(f"radius must be positive, got {radius}")
        points: List[SpaceTimePoint] = []
        for i in itertools.count():
            x = self.turning_position(i)
            if abs(x) > radius:
                break
            points.append(SpaceTimePoint(x, self.turning_time(i)))
        return points

    # ------------------------------------------------------------------
    # Trajectory interface
    # ------------------------------------------------------------------

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        # start-up leg: origin -> first cone turn, arriving on the boundary
        for i in itertools.count():
            x = self.turning_position(i)
            yield SpaceTimePoint(x, self.turning_time(i))

    def covers(self, x: float) -> bool:
        return True

    @property
    def startup_speed(self) -> float:
        """Speed of the leg from the origin to the first cone turn
        (``1 / beta`` by construction)."""
        return 1.0 / self.cone.beta

    def describe(self) -> str:
        return (
            f"ConeZigZag(beta={self.cone.beta:g}, "
            f"first_turn={self.first_cone_turn:g})"
        )
