"""The classic doubling strategy (Beck/Bellman; competitive ratio 9).

A single robot travels distance 1 in one direction, turns, travels 2 in
the other, turns, travels 4, and so on: turning points ``(-2)^i`` (up to a
choice of initial direction and unit).  The paper uses it both as the
historical baseline and as the optimal strategy for ``n = f + 1`` when all
robots move *together* (end of Section 1.1).

This module is a thin, self-documenting wrapper over
:class:`~repro.trajectory.zigzag.GeometricZigZag` with ``kappa = 2``.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.trajectory.zigzag import GeometricZigZag

__all__ = ["DoublingTrajectory", "DOUBLING_COMPETITIVE_RATIO"]

#: The optimal single-robot competitive ratio on the line [Beck & Newman].
DOUBLING_COMPETITIVE_RATIO = 9.0


class DoublingTrajectory(GeometricZigZag):
    """The doubling strategy, starting toward ``first_direction``.

    Attributes:
        first_direction: ``+1`` (default) to search right first.
        unit: Distance of the first turning point; the paper normalizes
            the minimum target distance to 1, making ``unit=1`` the
            canonical choice.

    Examples:
        >>> d = DoublingTrajectory()
        >>> [round(d.turning_position(i), 1) for i in range(4)]
        [1.0, -2.0, 4.0, -8.0]
        >>> d.first_visit_time(-1.0)
        3.0
    """

    def __init__(self, first_direction: int = 1, unit: float = 1.0) -> None:
        if first_direction not in (1, -1):
            raise InvalidParameterError(
                f"first_direction must be +1 or -1, got {first_direction!r}"
            )
        if unit <= 0:
            raise InvalidParameterError(f"unit must be positive, got {unit!r}")
        super().__init__(first_turn=first_direction * unit, kappa=2.0)

    def describe(self) -> str:
        side = "right" if self.first_turn > 0 else "left"
        return f"DoublingTrajectory(first={side}, unit={abs(self.first_turn):g})"
