"""Finite, explicitly specified trajectories.

Used for hand-built paths in tests, for adversarial counter-example
construction in the lower-bound game, and for replaying recorded
simulation prefixes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.errors import InvalidParameterError
from repro.geometry.point import SpaceTimePoint
from repro.geometry.segment import MotionSegment
from repro.trajectory.base import Trajectory

__all__ = ["PiecewiseTrajectory", "waypoints"]


class PiecewiseTrajectory(Trajectory):
    """A finite trajectory through explicit space-time waypoints.

    The waypoints must start at time 0, be time-ordered, and respect the
    unit speed limit (validated eagerly).  After the final waypoint the
    robot is considered to remain at its last position forever — matching
    the simulator's clamping convention — but ``covers`` only accounts for
    positions actually swept by the path.

    Examples:
        >>> path = PiecewiseTrajectory(waypoints([(0, 0), (2, 2), (-1, 5)]))
        >>> path.position_at(3.0)
        1.0
        >>> path.first_visit_time(-1.0)
        5.0
        >>> path.covers(3.0)
        False
    """

    def __init__(self, points: Sequence[SpaceTimePoint]) -> None:
        super().__init__()
        pts = list(points)
        if len(pts) < 2:
            raise InvalidParameterError("need at least two waypoints")
        if pts[0].time != 0.0:
            raise InvalidParameterError(
                f"trajectory must start at time 0, got {pts[0].time!r}"
            )
        # validate eagerly so construction fails fast
        for a, b in zip(pts, pts[1:]):
            MotionSegment(a, b)
        self._points: List[SpaceTimePoint] = pts
        lo = min(p.position for p in pts)
        hi = max(p.position for p in pts)
        self._bounds = (lo, hi)

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        return iter(self._points)

    def covers(self, x: float) -> bool:
        lo, hi = self._bounds
        return lo <= x <= hi

    @property
    def end_time(self) -> float:
        """Time of the final waypoint."""
        return self._points[-1].time

    def describe(self) -> str:
        return f"PiecewiseTrajectory({len(self._points)} waypoints)"


def waypoints(pairs: Iterable[tuple]) -> List[SpaceTimePoint]:
    """Convenience: build waypoints from ``(position, time)`` pairs.

    Examples:
        >>> waypoints([(0, 0), (1, 1)])[1]
        SpaceTimePoint(position=1.0, time=1.0)
    """
    return [SpaceTimePoint(float(x), float(t)) for x, t in pairs]
