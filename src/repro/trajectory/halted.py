"""A trajectory truncated by a crash: motion stops at a fixed time.

:class:`HaltedTrajectory` wraps any trajectory and freezes the robot at
the position it occupies at the halt time.  It is the kinematic side of
the crash-stop fault model: up to the halt the robot moves exactly as
planned; afterwards it sits still forever.  The wrapper materializes the
inner path only up to the halt time, so halting an infinite zig-zag is
cheap.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import InvalidParameterError
from repro.geometry.point import SpaceTimePoint
from repro.geometry.segment import MotionSegment
from repro.trajectory.base import Trajectory

__all__ = ["HaltedTrajectory"]

_EPS = 1e-9


class HaltedTrajectory(Trajectory):
    """The prefix of ``inner`` up to ``halt_time``, then standstill.

    Examples:
        >>> from repro.trajectory.doubling import DoublingTrajectory
        >>> crashed = HaltedTrajectory(DoublingTrajectory(), halt_time=2.0)
        >>> crashed.position_at(1.0)
        1.0
        >>> crashed.position_at(100.0) == crashed.position_at(2.0)
        True
        >>> crashed.covers(-1.0)
        False
    """

    def __init__(self, inner: Trajectory, halt_time: float) -> None:
        super().__init__()
        if not isinstance(inner, Trajectory):
            raise InvalidParameterError(
                f"inner must be a Trajectory, got {inner!r}"
            )
        if not math.isfinite(halt_time) or halt_time <= 0.0:
            raise InvalidParameterError(
                f"halt time must be a positive finite real, got {halt_time!r}"
            )
        self._inner = inner
        self.halt_time = float(halt_time)

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        previous = None
        for vertex in self._inner.vertex_iterator():
            if vertex.time >= self.halt_time:
                if previous is None:
                    # halted before the path even starts: frozen at start
                    yield SpaceTimePoint(vertex.position, vertex.time)
                    return
                position = MotionSegment(previous, vertex).position_at(
                    self.halt_time
                )
                yield SpaceTimePoint(position, self.halt_time)
                return
            yield vertex
            previous = vertex
        # inner path ended before the halt: nothing left to truncate

    def covers(self, x: float) -> bool:
        if not self._inner.covers(x):
            return False
        self._inner.ensure_time(self.halt_time)
        for segment in self._inner.segments_until(self.halt_time):
            t = segment.visit_time(x)
            if t is not None and t <= self.halt_time + _EPS:
                return True
        return False

    def describe(self) -> str:
        return (
            f"HaltedTrajectory({self._inner.describe()}, "
            f"halt_time={self.halt_time:.6g})"
        )
