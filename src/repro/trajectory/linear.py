"""Straight-line trajectories.

The trivial optimal algorithm for ``n >= 2f + 2`` robots (Section 1) sends
two groups of ``f + 1`` robots straight left and right from the origin;
each group's member follows a :class:`LinearTrajectory`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidParameterError
from repro.geometry.point import SpaceTimePoint
from repro.trajectory.base import Trajectory

__all__ = ["LinearTrajectory", "StationaryTrajectory"]


class LinearTrajectory(Trajectory):
    """An infinite straight run from the origin at constant speed.

    Attributes:
        direction: ``+1`` to search the positive half-line, ``-1`` the
            negative one.
        speed: Constant speed in ``(0, 1]``; the paper's robots always use
            1, but slower runs are useful in tests and generalized
            schedules.
        start_time: Time at which the robot leaves the origin (it waits
            at 0 before that).

    Examples:
        >>> right = LinearTrajectory(direction=1)
        >>> right.first_visit_time(5.0)
        5.0
        >>> right.first_visit_time(-1.0) is None
        True
    """

    #: Chunk length (in time units) per lazily generated vertex.
    _CHUNK = 1024.0

    def __init__(
        self, direction: int, speed: float = 1.0, start_time: float = 0.0
    ) -> None:
        super().__init__()
        if direction not in (1, -1):
            raise InvalidParameterError(
                f"direction must be +1 or -1, got {direction!r}"
            )
        if not 0.0 < speed <= 1.0:
            raise InvalidParameterError(f"speed must be in (0, 1], got {speed!r}")
        if start_time < 0:
            raise InvalidParameterError(
                f"start_time must be >= 0, got {start_time!r}"
            )
        self.direction = direction
        self.speed = speed
        self.start_time = start_time

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        yield SpaceTimePoint(0.0, 0.0)
        if self.start_time > 0:
            yield SpaceTimePoint(0.0, self.start_time)
        # Emit geometrically growing waypoints so that ensure_time(T)
        # materializes O(log T) vertices.
        span = self._CHUNK
        while True:
            t = self.start_time + span
            yield SpaceTimePoint(self.direction * self.speed * span, t)
            span *= 2.0

    def covers(self, x: float) -> bool:
        if x == 0.0:
            return True
        return (x > 0) == (self.direction > 0)

    def describe(self) -> str:
        arrow = "right" if self.direction > 0 else "left"
        return f"LinearTrajectory({arrow}, speed={self.speed:g})"


class StationaryTrajectory(Trajectory):
    """A robot that never leaves the origin.

    Used in tests and as the degenerate member of padded fleets; it visits
    exactly one point (the origin) at time 0.
    """

    _CHUNK = 1024.0

    def __init__(self) -> None:
        super().__init__()

    def vertex_iterator(self) -> Iterator[SpaceTimePoint]:
        t = 0.0
        yield SpaceTimePoint(0.0, 0.0)
        while True:
            t += self._CHUNK
            yield SpaceTimePoint(0.0, t)

    def covers(self, x: float) -> bool:
        return x == 0.0

    def describe(self) -> str:
        return "StationaryTrajectory()"
