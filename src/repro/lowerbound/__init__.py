"""Executable lower bound (Section 4 of the paper).

* :class:`~repro.lowerbound.ladder.TargetLadder` — the adversary's target
  points ``x_i = 2^(i+1) / ((alpha-1)^i (alpha-3))``;
* :mod:`repro.lowerbound.classify` — positive/negative trajectory
  classification and the Lemma 6/7 checks;
* :class:`~repro.lowerbound.game.TheoremTwoGame` — the adversary played
  against arbitrary fleets, producing a concrete (target, fault-set)
  witness that forces ratio at least ``alpha``.
"""

from repro.lowerbound.classify import (
    TrajectoryClass,
    classify_for,
    lemma6_applies,
    lemma7_deadline,
    lemma7_holds,
    visits_both_before,
)
from repro.lowerbound.game import AdversaryWitness, TheoremTwoGame
from repro.lowerbound.ladder import TargetLadder

__all__ = [
    "AdversaryWitness",
    "TargetLadder",
    "TheoremTwoGame",
    "TrajectoryClass",
    "classify_for",
    "lemma6_applies",
    "lemma7_deadline",
    "lemma7_holds",
    "visits_both_before",
]
