"""The executable Theorem 2 adversary.

Theorem 2 proves by contradiction that no algorithm with ``n < 2f + 2``
robots can have competitive ratio below ``alpha`` (for valid ``alpha``).
The proof is *constructive enough to run*: given any fleet of concrete
trajectories, the adversary walks the target ladder from ``x_0`` down to
``±1`` and, at each level, checks whether at least ``f + 1`` robots visit
each of ``±x_i`` strictly before time ``alpha * x_i``:

* **some side has at most f visitors** — the adversary corrupts exactly
  those visitors and places the target there; no reliable robot arrives
  before ``alpha * x_i``, so the achieved ratio is at least ``alpha``.
  This is the witness the game returns.
* **all checks pass, including at ±1** — the proof shows this is
  impossible (each level consumes a distinct robot following a positive
  or negative trajectory, and those robots are provably too slow for the
  next level and finally for ``±1``).  Reaching this branch against real
  trajectories means either ``alpha`` was chosen above the Theorem 2
  bound or numerics broke; the game raises
  :class:`~repro.errors.AdversaryError`.

The game therefore demonstrates the lower bound *against arbitrary code*,
not just against this library's algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.lower_bound import theorem2_lower_bound
from repro.core.parameters import SearchParameters
from repro.errors import AdversaryError, InvalidParameterError
from repro.lowerbound.ladder import TargetLadder
from repro.robots.fleet import Fleet

__all__ = ["AdversaryWitness", "TheoremTwoGame"]


@dataclass(frozen=True)
class AdversaryWitness:
    """The adversary's winning move against a fleet.

    Attributes:
        target: Where the adversary places the target.
        faulty_robots: Which robots it declares faulty (the target's
            early visitors; at most ``f``).
        detection_time: Resulting detection time — first visit of the
            target by a robot outside the faulty set (``inf`` if none
            ever arrives).
        ratio: ``detection_time / |target|``; at least the enforced
            ``alpha`` by construction.
        ladder_level: Which ladder level produced the witness (``n`` for
            the final ``±1`` level).
    """

    target: float
    faulty_robots: frozenset
    detection_time: float
    ratio: float
    ladder_level: int

    def describe(self) -> str:
        """One-line summary."""
        t = "inf" if math.isinf(self.detection_time) else f"{self.detection_time:.6g}"
        return (
            f"target at {self.target:.6g} with faults "
            f"{sorted(self.faulty_robots)} -> detection {t} "
            f"(ratio >= {self.ratio:.6g}, ladder level {self.ladder_level})"
        )


class TheoremTwoGame:
    """Play the Theorem 2 adversary against a concrete fleet.

    Attributes:
        fleet: The ``n`` trajectories under attack.
        f: The adversary's fault budget; the game requires
            ``n < 2f + 2`` (outside that regime the theorem does not
            apply — and indeed the two-group algorithm wins).
        alpha: Enforced ratio.  Defaults to marginally below the
            Theorem 2 bound for ``n``, the strongest enforceable value.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> game = TheoremTwoGame(
        ...     Fleet.from_algorithm(ProportionalAlgorithm(3, 1)), f=1
        ... )
        >>> witness = game.play()
        >>> witness.ratio >= game.alpha
        True
    """

    #: Safety margin keeping the default alpha strictly inside the bound.
    _ALPHA_MARGIN = 1e-9

    def __init__(
        self, fleet: Fleet, f: int, alpha: Optional[float] = None
    ) -> None:
        params = SearchParameters(fleet.size, f)
        if params.n >= 2 * params.f + 2:
            raise InvalidParameterError(
                f"Theorem 2 applies only to n < 2f + 2, got n={params.n}, "
                f"f={params.f}"
            )
        self.fleet = fleet
        self.f = f
        if alpha is None:
            alpha = theorem2_lower_bound(fleet.size) - self._ALPHA_MARGIN
        if alpha <= 3.0:
            raise InvalidParameterError(
                f"alpha must be > 3, got {alpha!r}"
            )
        self.alpha = float(alpha)
        self.ladder = TargetLadder(n=fleet.size, alpha=self.alpha)

    # ------------------------------------------------------------------
    # the game
    # ------------------------------------------------------------------

    def early_visitors(self, target: float, deadline: float) -> Set[int]:
        """Robots whose first visit of ``target`` is strictly before
        ``deadline``."""
        visitors: Set[int] = set()
        for index, t in enumerate(self.fleet.first_visit_times(target)):
            if t is not None and t < deadline:
                visitors.add(index)
        return visitors

    def try_level(
        self, magnitude: float, level: int
    ) -> Optional[AdversaryWitness]:
        """Attempt to win at one ladder level (both signs).

        Wins if some side of ``±magnitude`` has at most ``f`` visitors
        before ``alpha * magnitude``.
        """
        deadline = self.alpha * magnitude
        for target in (magnitude, -magnitude):
            visitors = self.early_visitors(target, deadline)
            if len(visitors) <= self.f:
                return self._make_witness(target, visitors, level)
        return None

    def _make_witness(
        self, target: float, faulty: Set[int], level: int
    ) -> AdversaryWitness:
        detection = self.fleet.with_faults(faulty).detection_time(target)
        return AdversaryWitness(
            target=target,
            faulty_robots=frozenset(faulty),
            detection_time=detection,
            ratio=detection / abs(target),
            ladder_level=level,
        )

    def play(self) -> AdversaryWitness:
        """Run the full adversary argument and return its witness.

        Raises:
            AdversaryError: if no level yields a witness — impossible for
                a valid ``alpha`` by Theorem 2, so this indicates a
                misuse (``alpha`` above the bound) or broken trajectories.
        """
        for level, magnitude in enumerate(self.ladder.magnitudes()):
            witness = self.try_level(magnitude, level)
            if witness is not None:
                return witness
        witness = self.try_level(1.0, self.fleet.size)
        if witness is not None:
            return witness
        raise AdversaryError(
            f"adversary found no witness at alpha={self.alpha}; by "
            "Theorem 2 this cannot happen for alpha within the bound — "
            "check the alpha value and the fleet's trajectories"
        )

    def pigeonhole_robots(self) -> List[Tuple[int, Optional[int]]]:
        """For each ladder level, the robot visiting *both* ``±x_i``
        early, if any (the proof's pigeonhole step).

        Returns a list of ``(level, robot_index_or_None)`` — diagnostic
        data used by tests to confirm the proof structure on concrete
        fleets.
        """
        result: List[Tuple[int, Optional[int]]] = []
        for level, magnitude in enumerate(self.ladder.magnitudes()):
            deadline = self.alpha * magnitude
            both = self.early_visitors(magnitude, deadline) & \
                self.early_visitors(-magnitude, deadline)
            result.append((level, min(both) if both else None))
        return result
