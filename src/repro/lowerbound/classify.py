"""Positive/negative trajectory classification (Lemmas 6 and 7).

Section 4 defines, for ``x > 1``:

* a robot has a **positive trajectory for x** if its first visits to the
  points ``{-x, -1, 1, x}`` occur in the order ``1, x, -1, -x``;
* a **negative trajectory for x** if the order is ``-1, -x, 1, x``.

Lemma 6: a robot that visits both ``x`` and ``-x`` strictly before time
``3x + 2`` must follow one of the two.  Lemma 7: a robot following a
positive or negative trajectory for ``x`` cannot reach both ``y`` and
``-y`` before time ``2x + y`` (for any ``y >= 1``).

These are the structural facts the adversary game leans on; the module
classifies real trajectories so tests can check the lemmas hold for the
library's own algorithms.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.trajectory.base import Trajectory

__all__ = [
    "TrajectoryClass",
    "classify_for",
    "visits_both_before",
    "lemma6_applies",
    "lemma7_deadline",
    "lemma7_holds",
]


class TrajectoryClass(enum.Enum):
    """Outcome of the positive/negative classification for some ``x``."""

    POSITIVE = "positive"  # first visits ordered 1, x, -1, -x
    NEGATIVE = "negative"  # first visits ordered -1, -x, 1, x
    NEITHER = "neither"    # some point never visited, or another order


def _first_visits(
    trajectory: Trajectory, points: Tuple[float, ...]
) -> List[Optional[float]]:
    return [trajectory.first_visit_time(p) for p in points]


def classify_for(trajectory: Trajectory, x: float) -> TrajectoryClass:
    """Classify a trajectory as positive/negative/neither for ``x > 1``.

    Examples:
        >>> from repro.trajectory import ZigZagTrajectory
        >>> pos = ZigZagTrajectory([5.0, -5.0])     # out to +5, then to -5
        >>> classify_for(pos, 2.0)
        <TrajectoryClass.POSITIVE: 'positive'>
        >>> neg = ZigZagTrajectory([-5.0, 5.0])
        >>> classify_for(neg, 2.0)
        <TrajectoryClass.NEGATIVE: 'negative'>
    """
    if x <= 1.0:
        raise InvalidParameterError(f"classification needs x > 1, got {x}")
    t_minus_x, t_minus_1, t_1, t_x = _first_visits(
        trajectory, (-x, -1.0, 1.0, x)
    )
    if any(t is None for t in (t_minus_x, t_minus_1, t_1, t_x)):
        return TrajectoryClass.NEITHER
    if t_1 < t_x < t_minus_1 < t_minus_x:
        return TrajectoryClass.POSITIVE
    if t_minus_1 < t_minus_x < t_1 < t_x:
        return TrajectoryClass.NEGATIVE
    return TrajectoryClass.NEITHER


def visits_both_before(
    trajectory: Trajectory, magnitude: float, deadline: float
) -> bool:
    """Whether the robot visits both ``+magnitude`` and ``-magnitude``
    strictly before ``deadline``."""
    if magnitude <= 0:
        raise InvalidParameterError(
            f"magnitude must be positive, got {magnitude}"
        )
    for point in (magnitude, -magnitude):
        t = trajectory.first_visit_time(point)
        if t is None or t >= deadline:
            return False
    return True


def lemma6_applies(trajectory: Trajectory, x: float) -> bool:
    """Check the Lemma 6 implication on a concrete trajectory.

    If the robot visits both ``±x`` strictly before ``3x + 2``, then it
    must classify as positive or negative for ``x``.  Returns ``True``
    when the implication holds (including vacuously).
    """
    if x <= 1.0:
        raise InvalidParameterError(f"lemma 6 needs x > 1, got {x}")
    if not visits_both_before(trajectory, x, 3.0 * x + 2.0):
        return True  # premise false; implication vacuously true
    return classify_for(trajectory, x) in (
        TrajectoryClass.POSITIVE,
        TrajectoryClass.NEGATIVE,
    )


def lemma7_deadline(x: float, y: float) -> float:
    """The Lemma 7 deadline ``2x + y``.

    A robot following a positive or negative trajectory for ``x`` cannot
    reach both ``±y`` before this time.
    """
    if x < 1.0 or y < 1.0:
        raise InvalidParameterError(
            f"lemma 7 needs x, y >= 1, got x={x}, y={y}"
        )
    return 2.0 * x + y


def lemma7_holds(trajectory: Trajectory, x: float, y: float) -> bool:
    """Check the Lemma 7 implication on a concrete trajectory.

    If the robot classifies as positive or negative for ``x``, it must
    not visit both ``±y`` strictly before ``2x + y``.
    """
    cls = classify_for(trajectory, x)
    if cls is TrajectoryClass.NEITHER:
        return True  # premise false
    deadline = lemma7_deadline(x, y)
    return not visits_both_before(trajectory, y, deadline - 1e-12)
