"""The adversary's target ladder (proof of Theorem 2).

For a candidate ratio ``alpha > 3`` satisfying
``(alpha-1)^n (alpha-3) <= 2^(n+1)``, the adversary threatens to place the
target at one of the points ``±1, ±x_{n-1}, ..., ±x_0`` where

    ``x_i = 2^(i+1) / ((alpha-1)^i (alpha-3))``.

The ladder's two structural facts, both verified by this module (and by
tests):

* the recurrence ``x_i = (alpha - 1)/2 * x_{i+1}`` (Equation 16), and
* the ordering ``x_0 > x_1 > ... > x_{n-1} > 1`` (Equation 20), which
  holds precisely because of the constraint on ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.lower_bound import theorem2_residual
from repro.errors import InvalidParameterError

__all__ = ["TargetLadder"]


@dataclass(frozen=True)
class TargetLadder:
    """The ladder of adversarial target magnitudes for ``n`` robots.

    Attributes:
        n: Number of robots the adversary plays against.
        alpha: The competitive ratio the adversary enforces; must exceed
            3 and satisfy the Theorem 2 constraint (otherwise the ladder
            ordering breaks and the construction is invalid).

    Examples:
        >>> ladder = TargetLadder(n=3, alpha=3.5)
        >>> [round(x, 3) for x in ladder.magnitudes()]
        [4.0, 3.2, 2.56]
        >>> ladder.ordered_descending_above_one()
        True
    """

    n: int
    alpha: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {self.n}")
        if not math.isfinite(self.alpha) or self.alpha <= 3.0:
            raise InvalidParameterError(
                f"alpha must be a finite real > 3, got {self.alpha!r}"
            )
        if theorem2_residual(self.alpha, self.n) > 0:
            raise InvalidParameterError(
                f"alpha={self.alpha} violates (alpha-1)^n (alpha-3) <= "
                f"2^(n+1) for n={self.n}; the ladder ordering would break"
            )

    def magnitude(self, i: int) -> float:
        """``x_i = 2^(i+1) / ((alpha-1)^i (alpha-3))`` for ``0 <= i < n``."""
        if not 0 <= i < self.n:
            raise InvalidParameterError(
                f"ladder index must be in 0..{self.n - 1}, got {i}"
            )
        return 2.0 ** (i + 1) / (
            (self.alpha - 1.0) ** i * (self.alpha - 3.0)
        )

    def magnitudes(self) -> List[float]:
        """``[x_0, x_1, ..., x_{n-1}]`` in the proof's processing order
        (descending)."""
        return [self.magnitude(i) for i in range(self.n)]

    def all_targets(self) -> List[float]:
        """Every point the adversary may use: ``±x_0 .. ±x_{n-1}, ±1``,
        in the proof's processing order."""
        targets: List[float] = []
        for x in self.magnitudes():
            targets.extend((x, -x))
        targets.extend((1.0, -1.0))
        return targets

    # ------------------------------------------------------------------
    # structural facts (Equations 16 and 20)
    # ------------------------------------------------------------------

    def recurrence_holds(self, tol: float = 1e-9) -> bool:
        """Check ``x_i = (alpha-1)/2 * x_{i+1}`` for all ``i``."""
        xs = self.magnitudes()
        factor = (self.alpha - 1.0) / 2.0
        return all(
            abs(a - factor * b) <= tol * abs(a)
            for a, b in zip(xs, xs[1:])
        )

    def ordered_descending_above_one(self) -> bool:
        """Check ``x_0 > x_1 > ... > x_{n-1} > 1`` (Equation 20)."""
        xs = self.magnitudes()
        return all(a > b for a, b in zip(xs, xs[1:])) and xs[-1] > 1.0
