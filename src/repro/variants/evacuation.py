"""The ``evacuation`` variant: commit, then gather (arXiv:2605.08355).

**Domain** — the whole line, searched by the Byzantine confirmation
schedule for ``(n, f)``: evacuation inherits the claim/commit machinery
wholesale, because with faulty agents the evacuation point must be
*committed* through a quorum before anyone dares converge on it.

**Termination predicate** — the new part: the run is over only when
every *reliable* robot stands at the committed point.  After the
protocol commits at ``t_c``, each robot walks straight from wherever it
is (its searching position, or its verification-diversion position for
robots in the final claim's pool) to the committed position at unit
speed; :class:`~repro.simulation.events.GatherEvent` records each
arrival.  ``detection_time`` of the returned
:class:`EvacuationOutcome` is the *evacuation* time — the latest
reliable arrival — so campaigns, executors, and perf workloads score
the variant's real objective without special cases.

**Feasibility** — ``n >= 2f + 1`` (a reliable majority), the
near-majority bound of :mod:`repro.core.evacuation`; infeasible specs
are rejected eagerly at build time.

Crash-stop robots never gather (their halt strands them), which is
consistent with the predicate: they are faulty, and faulty robots are
excluded from it.  Other faulty robots do walk to the point and their
arrivals are logged with ``reliable=False`` — the invariant audits
(:mod:`repro.variants.invariants`) verify they are never counted toward
the evacuation time.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.byzantine.outcome import ByzantineOutcome
from repro.byzantine.simulate import ByzantineSearchSimulation
from repro.core.evacuation import evacuation_feasible, min_evacuation_fleet
from repro.errors import InvalidParameterError, SimulationError
from repro.observability import instrument as obs
from repro.robots.behaviors import CrashStopFault, FaultBehavior
from repro.robots.fleet import Fleet
from repro.simulation.events import Event, GatherEvent
from repro.variants.base import ProblemVariant

__all__ = [
    "EvacuationOutcome",
    "EvacuationSearchSimulation",
    "EvacuationVariant",
]


@dataclass(frozen=True)
class EvacuationOutcome(ByzantineOutcome):
    """Result of one commit-then-gather evacuation run.

    ``detection_time`` is the *evacuation* time — the instant the last
    reliable robot reached the committed point — so
    ``competitive_ratio`` is the evacuation ratio of arXiv:2605.08355.
    The commit instant is kept separately.

    Attributes (beyond :class:`~repro.byzantine.outcome.ByzantineOutcome`):
        commit_time: When the confirmation quorum committed the point
            (``inf`` when the search never terminated).
        straggler: The reliable robot whose arrival completed the
            evacuation, or ``None`` when it never completed.
        gathered_reliable: How many reliable robots reached the point.

    Examples:
        >>> outcome = EvacuationOutcome(
        ...     2.0, 10.0, 1, frozenset({0}),
        ...     committed_position=2.0, quorum=2, commit_time=6.0,
        ...     straggler=2, gathered_reliable=2,
        ... )
        >>> outcome.competitive_ratio
        5.0
        >>> outcome.gather_overhead
        4.0
    """

    commit_time: float = math.inf
    straggler: Optional[int] = None
    gathered_reliable: int = 0

    @property
    def evacuated(self) -> bool:
        """Whether every reliable robot reached the committed point."""
        return math.isfinite(self.detection_time)

    @property
    def gather_overhead(self) -> float:
        """Time the gather phase added on top of the commit."""
        if not self.evacuated or not math.isfinite(self.commit_time):
            return math.inf
        return self.detection_time - self.commit_time

    def describe(self) -> str:
        base = super().describe()
        if not self.evacuated:
            return base + "\nevacuation: never completed"
        straggler = (
            f" (straggler a_{self.straggler})"
            if self.straggler is not None
            else ""
        )
        extra = (
            f"evacuation: committed at t={self.commit_time:.6g}, "
            f"{self.gathered_reliable} reliable robot(s) gathered by "
            f"t={self.detection_time:.6g}{straggler}"
        )
        return base + "\n" + extra


class EvacuationSearchSimulation(ByzantineSearchSimulation):
    """Confirmation-protocol search followed by a gather phase.

    Runs the parent protocol loop unchanged to the commit, then walks
    every robot straight to the committed point and records per-robot
    :class:`~repro.simulation.events.GatherEvent` arrivals:

    * the claimant and verifiers already at the point at commit time
      arrive *at* the commit instant;
    * verifiers still mid-flight toward the final claim complete their
      diversion and arrive at their recorded arrival time;
    * every other robot departs its searching position at commit time;
    * crash-stop robots never arrive.

    Examples:
        >>> from repro.schedule.byzantine import ByzantineConfirmationAlgorithm
        >>> fleet = Fleet.from_algorithm(ByzantineConfirmationAlgorithm(3, 1))
        >>> outcome = EvacuationSearchSimulation(fleet, 2.0).run()
        >>> outcome.evacuated and outcome.committed_truthfully
        True
        >>> outcome.detection_time >= outcome.commit_time
        True
    """

    def run(self) -> EvacuationOutcome:
        telemetry = obs.current()
        started = _time.perf_counter() if telemetry is not None else 0.0
        with obs.span(
            "variants.evacuation",
            target=self.target,
            n=self.fleet.size,
            f=self.fault_model.fault_budget,
        ):
            behaviors = self.fault_model.behaviors(self.fleet, self.target)
            if len(behaviors) > self.fault_model.fault_budget:
                raise SimulationError(
                    f"fault model assigned {len(behaviors)} faults, more "
                    f"than its budget {self.fault_model.fault_budget}"
                )
            commit = self._run_protocol(behaviors)
            outcome = self._gather(commit, behaviors)
        if telemetry is not None:
            obs.count("variants_runs_total")
            obs.count("variants_evacuations_total")
            obs.count(
                "variants_gather_arrivals_total",
                sum(
                    1
                    for event in outcome.events
                    if isinstance(event, GatherEvent)
                ),
            )
            obs.observe(
                "variants_wall_seconds", _time.perf_counter() - started
            )
        if self.check_invariants:
            from repro.variants.invariants import check_evacuation_outcome

            check_evacuation_outcome(
                outcome,
                quorum=self.protocol.quorum,
                fault_budget=self.fault_model.fault_budget,
                fleet_size=self.fleet.size,
            )
        return outcome

    # ------------------------------------------------------------------
    # gather phase
    # ------------------------------------------------------------------

    def _gather(
        self,
        commit: ByzantineOutcome,
        behaviors: Dict[int, FaultBehavior],
    ) -> EvacuationOutcome:
        if (
            not math.isfinite(commit.detection_time)
            or commit.committed_position is None
        ):
            return EvacuationOutcome(
                target=commit.target,
                detection_time=math.inf,
                detecting_robot=None,
                faulty_robots=commit.faulty_robots,
                events=commit.events,
                committed_position=None,
                quorum=commit.quorum,
                claims_raised=commit.claims_raised,
                claims_refuted=commit.claims_refuted,
                commit_time=math.inf,
            )
        t_c = commit.detection_time
        point = commit.committed_position
        events: List[Event] = list(commit.events)
        arrivals = self._gather_arrivals(t_c, point, behaviors)
        reliable: List[Tuple[float, int]] = []
        for robot, arrival in arrivals:
            is_reliable = robot not in behaviors
            events.append(
                GatherEvent(arrival, robot, point, reliable=is_reliable)
            )
            if is_reliable:
                reliable.append((arrival, robot))
        if reliable:
            evacuation_time, straggler = max(reliable)
        else:
            # Degenerate direct use (no reliable robot at all): the
            # commit itself is the last thing that happens.
            evacuation_time, straggler = t_c, None
        return EvacuationOutcome(
            target=commit.target,
            detection_time=evacuation_time,
            detecting_robot=commit.detecting_robot,
            faulty_robots=commit.faulty_robots,
            events=tuple(sorted(events, key=lambda e: e.time)),
            committed_position=point,
            quorum=commit.quorum,
            claims_raised=commit.claims_raised,
            claims_refuted=commit.claims_refuted,
            commit_time=t_c,
            straggler=straggler,
            gathered_reliable=len(reliable),
        )

    def _gather_arrivals(
        self,
        t_c: float,
        point: float,
        behaviors: Dict[int, FaultBehavior],
    ) -> List[Tuple[int, float]]:
        """``(robot, arrival time)`` for every robot that gathers."""
        record = self._final_claim
        pool = set(record.pool) if record is not None else set()
        flight: Dict[int, float] = {}
        if record is not None:
            for arrival, j, _travel in record.arrivals:
                flight[j] = max(arrival, t_c)
            flight[record.claimant] = t_c
        arrivals: List[Tuple[int, float]] = []
        for i in range(self.fleet.size):
            if isinstance(behaviors.get(i), CrashStopFault):
                continue  # stranded: a halted robot cannot walk anywhere
            if i in flight:
                arrivals.append((i, flight[i]))
            elif i in pool:
                # In the pool but filtered from arrivals: only crash-stop
                # robots are, and those were skipped above.
                continue
            else:
                position = self._position(self._plans, self._delays, i, t_c)
                arrivals.append((i, t_c + abs(position - point)))
        return arrivals


class EvacuationVariant(ProblemVariant):
    """Search-and-evacuation with a near majority of faulty agents.

    Examples:
        >>> from repro.robustness.campaign import ScenarioSpec, build_scenario
        >>> spec = ScenarioSpec(3, 1, 2.0, "none", variant="evacuation")
        >>> outcome = EvacuationVariant().run(
        ...     build_scenario(spec), check_invariants=False
        ... )
        >>> outcome.evacuated
        True
        >>> outcome.detection_time >= outcome.commit_time
        True
    """

    name = "evacuation"

    def validate_spec(self, spec: Any) -> None:
        if not evacuation_feasible(spec.n, spec.f):
            raise InvalidParameterError(
                f"evacuation with f={spec.f} faulty agents needs a "
                f"reliable majority: n >= {min_evacuation_fleet(spec.f)}, "
                f"got n={spec.n}"
            )

    def realize(self, spec: Any) -> Tuple[Any, Any]:
        from repro.robustness.campaign import _fault_model_for
        from repro.schedule.byzantine import ByzantineConfirmationAlgorithm

        self.validate_spec(spec)
        model, _ = _fault_model_for(spec)
        algorithm = ByzantineConfirmationAlgorithm(spec.n, spec.f)
        return Fleet.from_algorithm(algorithm), model

    def run(self, scenario: Any, check_invariants: bool = True) -> Any:
        spec = scenario.spec
        fleet, model = scenario.build()
        timelines = None
        if getattr(spec, "mode", "sync") != "sync":
            from repro.async_sched.engine import timelines_for
            from repro.async_sched.schedulers import scheduler_from_spec

            timelines = timelines_for(
                [r.effective_trajectory for r in fleet],
                scheduler_from_spec(spec.mode),
                spec.target,
                seed=spec.seed or 0,
            )
        return EvacuationSearchSimulation(
            fleet,
            spec.target,
            fault_model=model,
            check_invariants=check_invariants,
            timelines=timelines,
        ).run()
