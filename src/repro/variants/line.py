"""The ``line`` variant: the source paper's problem, as a variant.

The whole-line, first-reliable-detection problem that the rest of the
library implements is itself a member of the variant family — the
identity member.  :class:`LineVariant` realizes specs exactly the way
the campaign layer always has (same regime dispatch, same fault DSL)
and runs them through the same engine dispatch (continuous engine,
event engine for scheduled time, confirmation protocol), so a spec with
``variant="line"`` behaves bit-for-bit like one from before variants
existed.  The parity harness (:mod:`repro.variants.parity`) pins that
claim against direct engine invocation on a seeded grid.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.variants.base import ProblemVariant

__all__ = ["LineVariant"]


class LineVariant(ProblemVariant):
    """Whole-line search, first reliable detection terminates.

    Examples:
        >>> from repro.robustness.campaign import ScenarioSpec, build_scenario
        >>> variant = LineVariant()
        >>> fleet, model = variant.realize(ScenarioSpec(3, 1, 2.0, "none"))
        >>> fleet.size
        3
        >>> outcome = variant.run(
        ...     build_scenario(ScenarioSpec(3, 1, 2.0, "none")),
        ...     check_invariants=False,
        ... )
        >>> round(outcome.detection_time, 9)
        3.679894733
    """

    name = "line"

    def validate_spec(self, spec: Any) -> None:
        """Every campaign-valid spec is line-valid."""

    def realize(self, spec: Any) -> Tuple[Any, Any]:
        from repro.robustness.campaign import _fault_model_for, _line_realize

        model, _ = _fault_model_for(spec)
        return _line_realize(spec), model

    def run(self, scenario: Any, check_invariants: bool = True) -> Any:
        from repro.robustness.campaign import _dispatch_engines

        fleet, model = scenario.build()
        return _dispatch_engines(
            scenario, fleet, model, check_invariants, allow_batch=True
        )
