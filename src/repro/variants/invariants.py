"""Invariant audits for evacuation outcomes.

The evacuation predicate is easy to get subtly wrong — terminating at
the commit, counting a faulty robot's arrival, gathering before the
point is even known — so every audited run is checked for:

* ``gather_before_commit`` — no :class:`~repro.simulation.events.GatherEvent`
  may precede the commit instant: robots cannot converge on a point
  before the quorum has committed it;
* ``premature_evacuation`` — the reported evacuation time must not be
  earlier than the last reliable arrival, and (when the fleet size is
  known) every reliable robot must have a gather event: the run may not
  terminate while a reliable robot is still walking;
* ``faulty_counted_toward_gather`` — faulty robots must not determine
  the evacuation time: gather events must be labeled consistently with
  the fault assignment, the straggler must be reliable, and the
  evacuation time must equal the last *reliable* arrival.

The commit phase is additionally re-audited through
:func:`repro.byzantine.invariants.audit_byzantine_outcome` on a
reconstructed commit-time view of the outcome, so the protocol-level
invariants (chronology, quorum discipline, no false-target commit)
keep holding under the extended run.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.byzantine.invariants import audit_byzantine_outcome
from repro.byzantine.outcome import ByzantineOutcome
from repro.core.tolerance import times_close
from repro.errors import InvariantViolationError
from repro.simulation.events import GatherEvent
from repro.simulation.invariants import InvariantViolation
from repro.variants.evacuation import EvacuationOutcome

__all__ = ["audit_evacuation_outcome", "check_evacuation_outcome"]


def _commit_view(outcome: EvacuationOutcome) -> ByzantineOutcome:
    """The outcome as the commit phase saw it: gather events stripped,
    detection time rewound to the commit instant."""
    return ByzantineOutcome(
        target=outcome.target,
        detection_time=outcome.commit_time,
        detecting_robot=outcome.detecting_robot,
        faulty_robots=outcome.faulty_robots,
        events=tuple(
            e for e in outcome.events if not isinstance(e, GatherEvent)
        ),
        committed_position=outcome.committed_position,
        quorum=outcome.quorum,
        claims_raised=outcome.claims_raised,
        claims_refuted=outcome.claims_refuted,
    )


def audit_evacuation_outcome(
    outcome: EvacuationOutcome,
    quorum: Optional[int] = None,
    fault_budget: Optional[int] = None,
    fleet_size: Optional[int] = None,
) -> List[InvariantViolation]:
    """Audit a gather-phase outcome; returns all violations found.

    Examples:
        >>> from repro.robots.fleet import Fleet
        >>> from repro.schedule.byzantine import ByzantineConfirmationAlgorithm
        >>> from repro.variants.evacuation import EvacuationSearchSimulation
        >>> fleet = Fleet.from_algorithm(ByzantineConfirmationAlgorithm(3, 1))
        >>> outcome = EvacuationSearchSimulation(fleet, 2.0).run()
        >>> audit_evacuation_outcome(outcome, fleet_size=3)
        []
    """
    violations: List[InvariantViolation] = []
    gathers = [e for e in outcome.events if isinstance(e, GatherEvent)]
    reliable_gathers = [g for g in gathers if g.reliable]

    # The commit phase must hold up on its own.
    violations.extend(
        audit_byzantine_outcome(
            _commit_view(outcome), quorum=quorum, fault_budget=fault_budget
        )
    )

    for gather in gathers:
        labeled_faulty = gather.robot_index in outcome.faulty_robots
        if gather.reliable == labeled_faulty:
            violations.append(
                InvariantViolation(
                    "faulty_counted_toward_gather",
                    f"gather event of a_{gather.robot_index} labeled "
                    f"reliable={gather.reliable} but the robot is "
                    f"{'faulty' if labeled_faulty else 'reliable'}",
                )
            )

    if not math.isfinite(outcome.detection_time):
        if gathers:
            violations.append(
                InvariantViolation(
                    "gather_before_commit",
                    f"{len(gathers)} gather event(s) logged although the "
                    "search never committed",
                )
            )
        return violations

    commit_time = outcome.commit_time
    for gather in gathers:
        if gather.time < commit_time and not times_close(
            gather.time, commit_time
        ):
            violations.append(
                InvariantViolation(
                    "gather_before_commit",
                    f"a_{gather.robot_index} gathered at t={gather.time:.6g} "
                    f"before the commit at t={commit_time:.6g}",
                )
            )

    latest_reliable = max(
        (g.time for g in reliable_gathers), default=commit_time
    )
    if outcome.detection_time < latest_reliable and not times_close(
        outcome.detection_time, latest_reliable
    ):
        violations.append(
            InvariantViolation(
                "premature_evacuation",
                f"evacuation reported done at t={outcome.detection_time:.6g} "
                f"but a reliable robot arrived at t={latest_reliable:.6g}",
            )
        )
    if fleet_size is not None:
        expected = fleet_size - len(outcome.faulty_robots)
        if len(reliable_gathers) != expected:
            violations.append(
                InvariantViolation(
                    "premature_evacuation",
                    f"only {len(reliable_gathers)} of {expected} reliable "
                    "robot(s) have gather events",
                )
            )

    if (
        outcome.straggler is not None
        and outcome.straggler in outcome.faulty_robots
    ):
        violations.append(
            InvariantViolation(
                "faulty_counted_toward_gather",
                f"straggler a_{outcome.straggler} is faulty",
            )
        )
    if (
        reliable_gathers
        and outcome.detection_time > latest_reliable
        and not times_close(outcome.detection_time, latest_reliable)
    ):
        violations.append(
            InvariantViolation(
                "faulty_counted_toward_gather",
                f"evacuation time t={outcome.detection_time:.6g} exceeds the "
                f"last reliable arrival t={latest_reliable:.6g}",
            )
        )
    return violations


def check_evacuation_outcome(
    outcome: EvacuationOutcome,
    quorum: Optional[int] = None,
    fault_budget: Optional[int] = None,
    fleet_size: Optional[int] = None,
) -> None:
    """Raise :class:`InvariantViolationError` on any audit failure."""
    violations = audit_evacuation_outcome(
        outcome,
        quorum=quorum,
        fault_budget=fault_budget,
        fleet_size=fleet_size,
    )
    if violations:
        detail = "; ".join(v.describe() for v in violations)
        raise InvariantViolationError(
            f"evacuation outcome failed {len(violations)} audit(s): {detail}"
        )
