"""Variant-dispatch parity harness: ``variant="line"`` vs. the engine.

The variant subsystem routes ``variant="line"`` scenarios through the
:class:`~repro.variants.line.LineVariant` singleton and the campaign's
shared engine dispatch.  This harness pins the claim that the detour is
invisible: on a seeded grid of (regime, target, fault-kind) points, the
variant path must reproduce a *direct* continuous-engine invocation —
fresh fleet, fresh fault model — with **exact** float equality on
detection times (``==``, not ``times_close``) and the same detecting
robot.  It mirrors :mod:`repro.async_sched.parity`, which makes the
same demand of the discrete-event engine.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet
from repro.robustness.campaign import (
    ScenarioSpec,
    _fault_model_for,
    build_scenario,
)
from repro.simulation.engine import SearchSimulation

__all__ = [
    "VariantParityCase",
    "VariantParityReport",
    "run_variant_parity",
]

#: Default regimes: the async parity harness's proportional coverage
#: plus two trivial-regime fleets (``n >= 2f + 2`` routes through
#: ``TwoGroupAlgorithm``), so both sides of the regime rule are pinned.
DEFAULT_PAIRS: Tuple[Tuple[int, int], ...] = (
    (2, 1),
    (3, 2),
    (3, 1),
    (5, 2),
    (4, 2),
    (7, 3),
    (4, 1),
    (6, 2),
)

#: Fault spec strings exercised per target, spanning the behavior
#: taxonomy the continuous engine supports.
DEFAULT_FAULT_KINDS: Tuple[str, ...] = (
    "none",
    "adversarial",
    "fixed",
    "crash_stop:2.0",
    "byzantine:0.5;1.5",
    "probabilistic:0.7",
)


@dataclass(frozen=True)
class VariantParityCase:
    """One compared point; agreement means bit-exact equality."""

    n: int
    f: int
    target: float
    fault: str
    engine_time: float
    variant_time: float
    engine_robot: Optional[int]
    variant_robot: Optional[int]

    @property
    def agree(self) -> bool:
        """Exact detection-time equality (inf matches inf) and the same
        detecting robot."""
        times_equal = (
            self.engine_time == self.variant_time
            if math.isfinite(self.engine_time)
            or math.isfinite(self.variant_time)
            else True
        )
        return times_equal and self.engine_robot == self.variant_robot

    def describe(self) -> str:
        verdict = "ok " if self.agree else "MISMATCH"
        return (
            f"{verdict} A({self.n},{self.f}) x={self.target:.6g} "
            f"fault={self.fault}: engine={self.engine_time!r} "
            f"variant={self.variant_time!r} robots="
            f"{self.engine_robot}/{self.variant_robot}"
        )


@dataclass
class VariantParityReport:
    """The outcome of one parity run: every case, plus the verdict."""

    seed: int
    cases: List[VariantParityCase] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def regimes(self) -> List[Tuple[int, int]]:
        return sorted({(c.n, c.f) for c in self.cases})

    def mismatches(self) -> List[VariantParityCase]:
        return [c for c in self.cases if not c.agree]

    @property
    def passed(self) -> bool:
        return not self.mismatches()

    def describe(self, max_mismatches: int = 10) -> str:
        bad = self.mismatches()
        lines = [
            f"variant parity[line]: {self.total - len(bad)}/{self.total} "
            f"points bit-exact across {len(self.regimes)} regimes "
            f"(seed={self.seed})"
        ]
        for case in bad[:max_mismatches]:
            lines.append("  " + case.describe())
        hidden = len(bad) - max_mismatches
        if hidden > 0:
            lines.append(f"  ... and {hidden} more mismatches")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        def encode(t: float):
            return t if math.isfinite(t) else repr(t)

        return {
            "format": "linesearch-variant-parity-report",
            "version": 1,
            "seed": self.seed,
            "total": self.total,
            "passed": self.passed,
            "regimes": [list(r) for r in self.regimes],
            "mismatches": len(self.mismatches()),
            "cases": [
                {
                    "n": c.n,
                    "f": c.f,
                    "target": c.target,
                    "fault": c.fault,
                    "engine_time": encode(c.engine_time),
                    "variant_time": encode(c.variant_time),
                    "engine_robot": c.engine_robot,
                    "variant_robot": c.variant_robot,
                    "agree": c.agree,
                }
                for c in self.cases
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _seeded_targets(
    rng: random.Random, count: int, x_max: float
) -> List[float]:
    """``count`` targets, log-uniform in ``[1, x_max]``, random signs."""
    targets = []
    log_max = math.log(x_max)
    for _ in range(count):
        magnitude = math.exp(rng.uniform(0.0, log_max))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        targets.append(sign * magnitude)
    return targets


def run_variant_parity(
    pairs: Sequence[Tuple[int, int]] = DEFAULT_PAIRS,
    targets_per_pair: int = 8,
    fault_kinds: Sequence[str] = DEFAULT_FAULT_KINDS,
    seed: int = 2016,
    x_max: float = 16.0,
) -> VariantParityReport:
    """Replay a seeded grid through both paths; demand bit-exactness.

    Args:
        pairs: ``(n, f)`` regimes, realized with the library's regime
            rule on both sides.
        targets_per_pair: Seeded log-uniform targets per regime.
        fault_kinds: Campaign fault-DSL strings compared per target.
        seed: Master seed; also each scenario's fault seed.
        x_max: Largest target magnitude drawn.

    Examples:
        >>> report = run_variant_parity(
        ...     pairs=[(3, 1)], targets_per_pair=2,
        ...     fault_kinds=("none", "adversarial"),
        ... )
        >>> report.passed
        True
        >>> report.total
        4
    """
    if targets_per_pair < 1:
        raise InvalidParameterError("targets_per_pair must be >= 1")
    if x_max <= 1.0:
        raise InvalidParameterError(f"x_max must exceed 1, got {x_max}")
    from repro.schedule import algorithm_for
    from repro.variants import variant_for

    line = variant_for("line")
    rng = random.Random(seed)
    cases: List[VariantParityCase] = []
    for n, f in pairs:
        fleet = Fleet.from_algorithm(algorithm_for(n, f))
        targets = _seeded_targets(rng, targets_per_pair, x_max)
        for target in targets:
            for fault in fault_kinds:
                spec = ScenarioSpec(
                    n=n, f=f, target=target, fault=fault, seed=seed
                )
                # Fresh fault model per path: stochastic models mutate
                # generator state on every assign().
                engine = SearchSimulation(
                    fleet, target, fault_model=_fault_model_for(spec)[0]
                ).run(with_events=False)
                variant = line.run(
                    build_scenario(spec), check_invariants=False
                )
                cases.append(
                    VariantParityCase(
                        n=n,
                        f=f,
                        target=target,
                        fault=fault,
                        engine_time=engine.detection_time,
                        variant_time=variant.detection_time,
                        engine_robot=engine.detecting_robot,
                        variant_robot=variant.detecting_robot,
                    )
                )
    return VariantParityReport(seed=seed, cases=cases)
