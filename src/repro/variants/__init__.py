"""Problem variants: alternative domains, termination predicates, objectives.

The base reproduction searches the whole line and terminates on the
first reliable detection.  The adjacent literature varies each axis of
that problem statement, and this subpackage makes the axes explicit: a
:class:`~repro.variants.base.ProblemVariant` is a *domain* (which
schedules are admissible), a *termination predicate* (when the task
counts as done), and an *objective* (what number the run is scored by).

Concrete variants:

* ``line`` (:mod:`repro.variants.line`) — the source paper's problem,
  delegating to the existing engines; the parity harness
  (:mod:`repro.variants.parity`) pins it bit-exact against direct
  engine invocation;
* ``halfline`` (:mod:`repro.variants.halfline`) — p-faulty search on a
  ray (arXiv:2002.07797): one-sided schedules that never cross the
  origin, scored by the expected detection time of
  :mod:`repro.core.expected_time` and validated against the closed
  forms of :mod:`repro.core.halfline`;
* ``evacuation`` (:mod:`repro.variants.evacuation`) — search-and-
  evacuation with a near majority of faulty agents (arXiv:2605.08355):
  commit via the Byzantine confirmation machinery, then a gather phase
  with per-robot arrival events; feasibility and ratio bounds in
  :mod:`repro.core.evacuation`.

Campaign specs select a variant via ``ScenarioSpec.variant`` (default
``"line"``, omitted from digests so existing scenario keys are
unchanged); :func:`~repro.variants.base.variant_for` is the registry.
"""

from repro.variants.base import VARIANT_NAMES, ProblemVariant, variant_for
from repro.variants.evacuation import (
    EvacuationOutcome,
    EvacuationSearchSimulation,
    EvacuationVariant,
)
from repro.variants.halfline import (
    HalfLineSweepPoint,
    HalfLineSweepReport,
    HalfLineVariant,
    halfline_expected_estimate,
    halfline_fleet,
    run_halfline_sweep,
)
from repro.variants.invariants import (
    audit_evacuation_outcome,
    check_evacuation_outcome,
)
from repro.variants.line import LineVariant
from repro.variants.parity import (
    VariantParityCase,
    VariantParityReport,
    run_variant_parity,
)

__all__ = [
    "EvacuationOutcome",
    "EvacuationSearchSimulation",
    "EvacuationVariant",
    "HalfLineSweepPoint",
    "HalfLineSweepReport",
    "HalfLineVariant",
    "LineVariant",
    "ProblemVariant",
    "VARIANT_NAMES",
    "VariantParityCase",
    "VariantParityReport",
    "audit_evacuation_outcome",
    "check_evacuation_outcome",
    "halfline_expected_estimate",
    "halfline_fleet",
    "run_halfline_sweep",
    "run_variant_parity",
    "variant_for",
]
