"""The :class:`ProblemVariant` abstraction and the variant registry.

A problem variant pins down the three axes a search problem statement
can vary along:

* **domain** — which schedules are admissible (the whole line, one ray,
  ...); realized by :meth:`ProblemVariant.realize`, which builds the
  fleet and fault model for a scenario spec;
* **termination predicate** — when a run is over (first reliable
  detection, quorum commit, all reliable robots gathered, ...);
  realized by :meth:`ProblemVariant.run`, which executes a scenario to
  an outcome;
* **objective** — the number a run is scored by
  (:meth:`ProblemVariant.objective`, the competitive/evacuation ratio
  by default).

Variants are stateless singletons looked up by name through
:func:`variant_for`; :data:`VARIANT_NAMES` is the authoritative name
tuple, mirrored by ``repro.robustness.campaign.VARIANTS`` (the two are
pinned against each other by the test suite — campaign cannot import
this module at module level without a cycle).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Tuple

from repro.errors import InvalidParameterError

__all__ = ["VARIANT_NAMES", "ProblemVariant", "variant_for"]

#: Registered variant names, in registry order.
VARIANT_NAMES = ("line", "halfline", "evacuation")


class ProblemVariant(ABC):
    """One problem statement: domain + termination predicate + objective.

    Subclasses set :attr:`name` and implement :meth:`validate_spec`,
    :meth:`realize`, and :meth:`run`.  Instances are stateless — the
    registry hands out singletons and scenario workers may share them
    freely.
    """

    #: Registry name; the value stored in ``ScenarioSpec.variant``.
    name: str = ""

    @abstractmethod
    def validate_spec(self, spec: Any) -> None:
        """Reject specs this variant cannot execute.

        Raises :class:`~repro.errors.InvalidParameterError` on
        infeasible parameters (e.g. an evacuation fleet without a
        reliable majority); returns ``None`` when the spec is fine.
        """

    @abstractmethod
    def realize(self, spec: Any) -> Tuple[Any, Any]:
        """Build the ``(fleet, fault_model)`` pair for a spec.

        This is the *domain* axis: the returned fleet's trajectories
        define which part of the line the variant searches and how.
        """

    @abstractmethod
    def run(self, scenario: Any, check_invariants: bool = True) -> Any:
        """Execute a scenario to a :class:`~repro.simulation.metrics.SearchOutcome`.

        This is the *termination predicate* axis: the returned
        outcome's ``detection_time`` is the instant the variant's own
        predicate was met (first detection, quorum commit, all reliable
        robots gathered, ...), so every downstream consumer — campaign
        executors, reports, perf workloads — scores variants uniformly.
        """

    def objective(self, outcome: Any) -> Optional[float]:
        """Score an outcome; the competitive ratio by default."""
        return outcome.competitive_ratio

    def describe(self) -> str:
        """One-line summary."""
        return f"variant {self.name!r}"


_REGISTRY: Dict[str, ProblemVariant] = {}


def variant_for(name: str) -> ProblemVariant:
    """The registered singleton for a variant name.

    Examples:
        >>> variant_for("line").name
        'line'
        >>> variant_for("halfline").name
        'halfline'
        >>> variant_for("evacuation").name
        'evacuation'
    """
    if not _REGISTRY:
        from repro.variants.evacuation import EvacuationVariant
        from repro.variants.halfline import HalfLineVariant
        from repro.variants.line import LineVariant

        for variant in (LineVariant(), HalfLineVariant(), EvacuationVariant()):
            _REGISTRY[variant.name] = variant
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown variant {name!r}; variants: {', '.join(VARIANT_NAMES)}"
        ) from None
