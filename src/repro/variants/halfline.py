"""The ``halfline`` variant: p-faulty search on a ray (arXiv:2002.07797).

**Domain** — the ray containing the target: the fleet is a staggered
:class:`~repro.schedule.halfline.HalfLineAlgorithm` whose schedules
never cross the origin (``side`` follows the target's sign — in the
half-line model the searcher *knows* which ray the target is on; what
it does not know is the distance).

**Termination predicate** — unchanged from the base problem: the first
reliable detection ends the run, so the whole fault taxonomy, the
scheduled-time modes, and the confirmation protocol compose with the
one-sided fleet through the campaign's shared engine dispatch.

**Objective** — the paper's: the *expected* detection time under
per-visit detection probability ``p``, computed by wiring the
one-sided fleet into :func:`repro.core.expected_time.expected_detection_time`
(:func:`halfline_expected_estimate`).  :func:`run_halfline_sweep`
validates the closed forms of :mod:`repro.core.halfline` against that
simulation across a p-grid and checks the numeric turning-point
optimizer against ``gamma*(p)`` — the report is the CI gate for the
variant's analytics.
"""

from __future__ import annotations

import json
import math
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.expected_time import ExpectedTimeEstimate, expected_detection_time
from repro.core.halfline import (
    halfline_bracket,
    halfline_expected_time,
    optimal_halfline_gamma,
    optimal_halfline_ratio,
    optimize_halfline_gamma,
)
from repro.errors import InvalidParameterError
from repro.observability import instrument as obs
from repro.robots.fleet import Fleet
from repro.schedule.halfline import HalfLineAlgorithm
from repro.variants.base import ProblemVariant

__all__ = [
    "HalfLineSweepPoint",
    "HalfLineSweepReport",
    "HalfLineVariant",
    "halfline_fleet",
    "halfline_expected_estimate",
    "run_halfline_sweep",
]

#: Default p-grid for sweeps: spans weak to near-certain detection.
DEFAULT_P_GRID: Tuple[float, ...] = (0.2, 0.35, 0.5, 0.65, 0.75, 0.9)

#: Default validation target — deliberately irrational-looking so it
#: never lands on a turning point of any swept ``gamma`` (exactly at an
#: apex the two per-round visits merge and the closed form does not
#: apply).
DEFAULT_SWEEP_TARGET = 3.7


class HalfLineVariant(ProblemVariant):
    """One-sided search with p-faulty detection.

    Examples:
        >>> from repro.robustness.campaign import ScenarioSpec, build_scenario
        >>> spec = ScenarioSpec(3, 1, 2.5, "none", variant="halfline")
        >>> outcome = HalfLineVariant().run(
        ...     build_scenario(spec), check_invariants=False
        ... )
        >>> round(outcome.detection_time, 9)
        5.0198421
        >>> fleet, _ = HalfLineVariant().realize(spec)
        >>> all(t.covers(2.5) and not t.covers(-2.5) for t in fleet.trajectories)
        True
    """

    name = "halfline"

    def validate_spec(self, spec: Any) -> None:
        """Every fault kind, mode, and protocol composes with the ray."""

    def realize(self, spec: Any) -> Tuple[Any, Any]:
        from repro.robustness.campaign import _fault_model_for

        model, _ = _fault_model_for(spec)
        side = 1 if spec.target >= 0 else -1
        algorithm = HalfLineAlgorithm(spec.n, spec.f, side=side)
        return Fleet.from_algorithm(algorithm), model

    def run(self, scenario: Any, check_invariants: bool = True) -> Any:
        from repro.robustness.campaign import _dispatch_engines

        telemetry = obs.current()
        started = _time.perf_counter() if telemetry is not None else 0.0
        with obs.span(
            "variants.run",
            variant=self.name,
            target=scenario.spec.target,
            n=scenario.spec.n,
            f=scenario.spec.f,
        ):
            fleet, model = scenario.build()
            # The batch kernels assume whole-line proportional fleets;
            # the ray always renders through the engines.
            outcome = _dispatch_engines(
                scenario, fleet, model, check_invariants, allow_batch=False
            )
        if telemetry is not None:
            obs.count("variants_runs_total")
            obs.count("variants_halfline_runs_total")
            obs.observe(
                "variants_wall_seconds", _time.perf_counter() - started
            )
        return outcome


def halfline_fleet(
    n: int = 1,
    gamma: float = 2.0,
    f: int = 0,
    side: int = 1,
) -> Fleet:
    """A staggered half-line fleet, ready for the expected-time objective.

    Examples:
        >>> fleet = halfline_fleet(gamma=2.0)
        >>> fleet.trajectories[0].first_visit_time(3.0)
        9.0
    """
    return Fleet.from_algorithm(HalfLineAlgorithm(n, f, gamma=gamma, side=side))


def halfline_expected_estimate(
    target: float,
    gamma: float,
    p: float,
    rtol: float = 1e-12,
) -> ExpectedTimeEstimate:
    """Simulated ``E[T]`` of the single-robot full-return strategy.

    Wires the one-sided fleet into the probabilistic objective of
    :func:`repro.core.expected_time.expected_detection_time` — the
    quantity :func:`repro.core.halfline.halfline_expected_time` claims
    in closed form.  Tight ``rtol`` by default: the validation sweep
    demands relative error below 1e-9 against the closed form.

    Examples:
        >>> estimate = halfline_expected_estimate(3.0, 2.0, 0.75)
        >>> round(estimate.expected_time, 9)
        10.085714286
    """
    if target <= 0:
        raise InvalidParameterError(
            f"half-line targets are positive distances, got {target!r}"
        )
    fleet = halfline_fleet(n=1, gamma=gamma)
    return expected_detection_time(fleet, target, p, rtol=rtol)


@dataclass(frozen=True)
class HalfLineSweepPoint:
    """Closed form vs. simulation vs. numeric optimizer, at one ``p``."""

    p: float
    gamma_closed: float
    gamma_numeric: float
    ratio_closed: float
    expected_closed: float
    expected_simulated: float

    @property
    def expected_rel_error(self) -> float:
        """Relative disagreement of the two ``E[T]`` values."""
        scale = max(abs(self.expected_closed), abs(self.expected_simulated))
        if scale == 0.0:
            return 0.0
        if math.isinf(self.expected_closed) or math.isinf(
            self.expected_simulated
        ):
            return 0.0 if self.expected_closed == self.expected_simulated else math.inf
        return abs(self.expected_closed - self.expected_simulated) / scale

    @property
    def gamma_rel_error(self) -> float:
        """Relative disagreement of closed-form and numeric ``gamma*``."""
        return abs(self.gamma_closed - self.gamma_numeric) / self.gamma_closed

    def ok(self, rtol: float = 1e-9, gamma_rtol: float = 1e-6) -> bool:
        """Whether both validations pass at the given tolerances."""
        return (
            self.expected_rel_error <= rtol
            and self.gamma_rel_error <= gamma_rtol
        )

    def describe(self) -> str:
        verdict = "ok " if self.ok() else "FAIL"
        return (
            f"{verdict} p={self.p:g}: gamma*={self.gamma_closed:.9g} "
            f"(numeric {self.gamma_numeric:.9g}), R*={self.ratio_closed:.6g}, "
            f"E[T] closed={self.expected_closed:.12g} vs "
            f"simulated={self.expected_simulated:.12g} "
            f"(rel err {self.expected_rel_error:.3g})"
        )


@dataclass
class HalfLineSweepReport:
    """The validation sweep: the variant's analytics against simulation."""

    target: float
    points: List[HalfLineSweepPoint] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def passed(self) -> bool:
        return all(point.ok() for point in self.points)

    def describe(self) -> str:
        good = sum(1 for point in self.points if point.ok())
        lines = [
            f"half-line sweep at x={self.target:g}: {good}/{self.total} "
            f"p-grid points validated (closed form vs simulation, "
            f"optimizer vs gamma*)"
        ]
        lines.extend("  " + point.describe() for point in self.points)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "linesearch-halfline-sweep-report",
            "version": 1,
            "target": self.target,
            "total": self.total,
            "passed": self.passed,
            "points": [
                {
                    "p": point.p,
                    "gamma_closed": point.gamma_closed,
                    "gamma_numeric": point.gamma_numeric,
                    "ratio_closed": point.ratio_closed,
                    "expected_closed": point.expected_closed,
                    "expected_simulated": point.expected_simulated,
                    "expected_rel_error": point.expected_rel_error,
                    "gamma_rel_error": point.gamma_rel_error,
                    "ok": point.ok(),
                }
                for point in self.points
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_halfline_sweep(
    ps: Sequence[float] = DEFAULT_P_GRID,
    target: float = DEFAULT_SWEEP_TARGET,
    rtol: float = 1e-12,
) -> HalfLineSweepReport:
    """Validate the half-line closed forms across a p-grid.

    For each ``p``: recover ``gamma*`` numerically and in closed form,
    evaluate the closed-form ``E[T]`` at ``gamma*``, and compare it
    against the simulated expectation of the actual one-sided fleet.
    The target must not sit exactly on a turning point of any swept
    strategy (see :mod:`repro.core.halfline`).

    Examples:
        >>> report = run_halfline_sweep(ps=(0.5, 0.75), target=3.7)
        >>> report.passed
        True
        >>> report.total
        2
    """
    if target <= 0:
        raise InvalidParameterError(
            f"half-line targets are positive distances, got {target!r}"
        )
    telemetry = obs.current()
    points: List[HalfLineSweepPoint] = []
    for p in ps:
        gamma = optimal_halfline_gamma(p)
        bracket = halfline_bracket(target, gamma)
        if math.isclose(
            gamma**bracket, target, rel_tol=1e-9
        ) or math.isclose(gamma ** max(bracket - 1, 0), target, rel_tol=1e-9):
            raise InvalidParameterError(
                f"target {target!r} sits on a turning point of "
                f"gamma*={gamma!r} at p={p!r}; the closed form does not "
                "apply there — pick a generic target"
            )
        closed = halfline_expected_time(target, gamma, p)
        simulated = halfline_expected_estimate(target, gamma, p, rtol=rtol)
        points.append(
            HalfLineSweepPoint(
                p=float(p),
                gamma_closed=gamma,
                gamma_numeric=optimize_halfline_gamma(p),
                ratio_closed=optimal_halfline_ratio(p),
                expected_closed=closed,
                expected_simulated=simulated.expected_time,
            )
        )
        if telemetry is not None:
            obs.count("variants_halfline_sweep_points_total")
    return HalfLineSweepReport(target=float(target), points=points)
