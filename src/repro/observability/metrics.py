"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A deliberately small, dependency-free metrics core in the Prometheus
style: metrics are named, carry help text, optionally split by label
sets, and aggregate cheaply under a single registry lock.  Histograms
use *fixed* buckets declared at creation, so merging snapshots from
worker processes is exact — bucket counts add, no re-binning.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain dicts: picklable
for the executor's result pipes, JSON-ready for artifacts, and the
input format of :meth:`MetricsRegistry.merge` on the parent side.

Examples:
    >>> registry = MetricsRegistry()
    >>> done = registry.counter("scenarios_completed_total", "finished scenarios")
    >>> done.inc()
    >>> done.inc(2, fault="random")
    >>> done.value()
    3.0
    >>> done.value(fault="random")
    2.0
    >>> wall = registry.histogram("scenario_wall_seconds", "per-scenario wall",
    ...                           buckets=(0.1, 1.0, 10.0))
    >>> wall.observe(0.05); wall.observe(3.0)
    >>> wall.count(), wall.sum()
    (2, 3.05)
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "quantile_from_buckets",
    "snapshot_delta",
]

#: Default histogram buckets for wall-clock timings, in seconds — spans
#: the microsecond engine hot path through multi-minute campaign sweeps.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)

_LabelKey = Tuple[Tuple[str, str], ...]


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
) -> Optional[float]:
    """Estimated ``q``-quantile of a fixed-bucket histogram.

    ``bounds`` are the finite upper bounds, ``counts`` the per-bucket
    (non-cumulative) observation counts with the overflow bucket last,
    i.e. ``len(counts) == len(bounds) + 1``.

    **This is an estimate, not the sample quantile.**  The histogram
    only remembers which bucket each observation fell into, so the
    quantile is linearly interpolated *within* its bucket (assuming
    observations spread uniformly there); it is exact only when the
    true quantile lands on a bucket boundary.  Two documented edge
    rules: the first bucket's lower edge is taken as ``0`` (or its
    bound, if negative), and a quantile landing in the overflow bucket
    is clamped to the largest finite bound — an underestimate.
    Returns ``None`` for an empty histogram.

    Examples:
        >>> quantile_from_buckets((1.0, 2.0, 4.0), (2, 2, 0, 0), 0.5)
        1.0
        >>> quantile_from_buckets((1.0, 2.0, 4.0), (0, 4, 0, 0), 0.5)
        1.5
        >>> quantile_from_buckets((1.0,), (0, 3), 0.99)   # overflow clamp
        1.0
        >>> quantile_from_buckets((1.0,), (0, 0), 0.5) is None
        True
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"quantile must be in [0, 1], got {q!r}")
    if len(counts) != len(bounds) + 1:
        raise InvalidParameterError(
            f"need {len(bounds) + 1} bucket counts (overflow last), "
            f"got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, bucket in enumerate(counts[:-1]):
        if cumulative + bucket >= rank and bucket > 0:
            lo = bounds[i - 1] if i > 0 else min(0.0, bounds[0])
            hi = bounds[i]
            fraction = (rank - cumulative) / bucket
            return lo + (hi - lo) * max(0.0, min(1.0, fraction))
        cumulative += bucket
    return float(bounds[-1])


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/help/lock plumbing for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        if not name or not name.replace("_", "a").isalnum():
            raise InvalidParameterError(
                f"metric names are [a-zA-Z0-9_]+, got {name!r}"
            )
        self.name = name
        self.help = help_text
        self._lock = lock


class Counter(_Metric):
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise InvalidParameterError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value: the labeled series, or the sum of all series."""
        with self._lock:
            if labels:
                return self._values.get(_label_key(labels), 0.0)
            return sum(self._values.values())

    def series(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)


class Gauge(_Metric):
    """A value that can go up and down (pool size, queue depth, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            if labels:
                return self._values.get(_label_key(labels), 0.0)
            return sum(self._values.values())

    def series(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)


class Histogram(_Metric):
    """Fixed-bucket histogram: cumulative bucket counts, sum, and count.

    Buckets are upper bounds (exclusive of ``+Inf``, which is implicit);
    they are fixed at creation so cross-process merges add exactly.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or len(set(bounds)) != len(bounds):
            raise InvalidParameterError(
                f"histogram buckets must be distinct and non-empty, got {buckets!r}"
            )
        self.buckets = bounds
        self._counts: List[int] = [0] * (len(bounds) + 1)  # + overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation.  (Labels are accepted for API symmetry
        but histograms aggregate over them — one series per histogram.)"""
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def count(self) -> int:
        with self._lock:
            return self._count

    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is overflow."""
        with self._lock:
            return list(self._counts)

    def mean(self) -> Optional[float]:
        with self._lock:
            return self._sum / self._count if self._count else None

    def estimate_quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile — see :func:`quantile_from_buckets`
        for the interpolation rule and its exactness caveats.

        Examples:
            >>> import threading
            >>> h = Histogram("wall", "", threading.Lock(), buckets=(1.0, 2.0))
            >>> for v in (0.5, 1.5, 1.5, 1.5):
            ...     h.observe(v)
            >>> h.estimate_quantile(0.5)
            1.3333333333333333
        """
        with self._lock:
            counts = list(self._counts)
        return quantile_from_buckets(self.buckets, counts, q)


class MetricsRegistry:
    """Named home of every metric, with get-or-create semantics.

    Asking for an existing name returns the existing metric (the hot
    path never re-registers); asking with a conflicting kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- cross-process aggregation ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict state of every metric — picklable and JSON-ready.

        Examples:
            >>> registry = MetricsRegistry()
            >>> registry.counter("runs_total", "runs").inc(3)
            >>> snap = registry.snapshot()
            >>> snap["runs_total"]["kind"], snap["runs_total"]["series"]
            ('counter', [[[], 3.0]])
        """
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            entry: Dict[str, Any] = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = metric.bucket_counts()
                entry["sum"] = metric.sum()
                entry["count"] = metric.count()
            else:
                entry["series"] = [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(metric.series().items())
                ]
            out[metric.name] = entry
        return out

    def delta_since(
        self, before: Optional[Dict[str, Any]]
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """``(snapshot, delta)`` relative to an earlier :meth:`snapshot`.

        The delta is itself in snapshot format and contains only the
        families that changed, so :meth:`merge`-ing it into a registry
        that already holds ``before`` reproduces the new snapshot —
        the contract the dashboard's incremental stream relies on.
        Pass ``None`` (or ``{}``) to treat everything nonzero as new.

        Examples:
            >>> registry = MetricsRegistry()
            >>> registry.counter("runs_total").inc(2)
            >>> base, delta = registry.delta_since(None)
            >>> delta["runs_total"]["series"]
            [[[], 2.0]]
            >>> later, delta = registry.delta_since(base)
            >>> delta
            {}
            >>> registry.counter("runs_total").inc()
            >>> later, delta = registry.delta_since(base)
            >>> delta["runs_total"]["series"]
            [[[], 1.0]]
        """
        snapshot = self.snapshot()
        return snapshot, snapshot_delta(before or {}, snapshot)

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges take the incoming value
        (last-writer-wins, appropriate for worker-reported state).
        Unknown metrics are created with the snapshot's help text.

        Examples:
            >>> a, b = MetricsRegistry(), MetricsRegistry()
            >>> a.counter("runs_total").inc(1); b.counter("runs_total").inc(2)
            >>> a.merge(b.snapshot())
            >>> a.counter("runs_total").value()
            3.0
        """
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for raw_key, value in entry.get("series", []):
                    labels = {k: v for k, v in raw_key}
                    counter.inc(value, **labels)
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for raw_key, value in entry.get("series", []):
                    labels = {k: v for k, v in raw_key}
                    gauge.set(value, **labels)
            elif kind == "histogram":
                histogram = self.histogram(
                    name, entry.get("help", ""),
                    buckets=entry.get("buckets", DEFAULT_TIME_BUCKETS),
                )
                if tuple(entry.get("buckets", ())) != histogram.buckets:
                    raise InvalidParameterError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                with histogram._lock:
                    for i, c in enumerate(entry.get("counts", [])):
                        histogram._counts[i] += c
                    histogram._sum += entry.get("sum", 0.0)
                    histogram._count += entry.get("count", 0)
            else:
                raise InvalidParameterError(
                    f"cannot merge metric {name!r} of kind {kind!r}"
                )


def snapshot_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """Changed families between two :meth:`MetricsRegistry.snapshot` dicts.

    The result is in snapshot format, restricted to what changed:
    counter series carry the *increment*, histograms the bucket/sum/
    count increments, gauges the current value (their merge semantics
    are last-writer-wins, so the absolute value is the delta).  Merging
    the result into a registry holding ``before`` yields ``after``.

    Examples:
        >>> a, b = MetricsRegistry(), MetricsRegistry()
        >>> a.counter("runs_total").inc(1)
        >>> b.counter("runs_total").inc(4)
        >>> delta = snapshot_delta(a.snapshot(), b.snapshot())
        >>> delta["runs_total"]["series"]
        [[[], 3.0]]
        >>> a.merge(delta)
        >>> a.counter("runs_total").value()
        4.0
    """
    delta: Dict[str, Any] = {}
    for name, entry in after.items():
        kind = entry.get("kind")
        prior = before.get(name) or {}
        if kind == "histogram":
            if (
                entry.get("count") == prior.get("count", 0)
                and entry.get("sum") == prior.get("sum", 0.0)
            ):
                continue
            old_counts = prior.get("counts") or [0] * len(entry["counts"])
            delta[name] = {
                "kind": "histogram",
                "help": entry.get("help", ""),
                "buckets": list(entry.get("buckets", [])),
                "counts": [
                    new - old for new, old in zip(entry["counts"], old_counts)
                ],
                "sum": entry.get("sum", 0.0) - prior.get("sum", 0.0),
                "count": entry.get("count", 0) - prior.get("count", 0),
            }
        else:
            old_series = {
                tuple(tuple(pair) for pair in key): value
                for key, value in prior.get("series", [])
            }
            series = []
            for key, value in entry.get("series", []):
                old = old_series.get(tuple(tuple(pair) for pair in key))
                if old == value:
                    continue
                if kind == "counter":
                    series.append([key, value - (old or 0.0)])
                else:
                    series.append([key, value])
            if series:
                delta[name] = {
                    "kind": kind,
                    "help": entry.get("help", ""),
                    "series": series,
                }
    return delta
