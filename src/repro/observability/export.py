"""Telemetry exporters: JSONL traces, Prometheus text format, summaries.

Three consumers, three formats:

* **machines replaying a run** read the JSONL trace — a header line
  identifying the format and the library version, then one span per
  line (:func:`write_trace_jsonl` / :func:`read_trace_jsonl`);
* **monitoring systems** scrape the Prometheus text exposition written
  by :func:`write_prometheus` — counters, gauges, and histograms with
  cumulative ``_bucket`` series, plus a ``linesearch_build_info`` gauge
  carrying the library version as a label;
* **humans** read :func:`summary` — an aligned table aggregating span
  durations by name (count / total / mean / max), the thing you look
  at when a sweep is mysteriously slow.

Examples:
    >>> from repro.observability.instrument import Telemetry
    >>> telemetry = Telemetry()
    >>> telemetry.metrics.counter("scenarios_completed_total", "done").inc(5)
    >>> text = to_prometheus(telemetry)
    >>> 'scenarios_completed_total 5' in text
    True
    >>> 'linesearch_build_info{version=' in text
    True
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro._version import __version__
from repro.errors import InvalidParameterError
from repro.observability.instrument import Telemetry
from repro.observability.metrics import Counter, Gauge, Histogram
from repro.observability.tracing import SpanRecord

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "read_trace_jsonl",
    "summary",
    "to_prometheus",
    "write_prometheus",
    "write_trace_jsonl",
]

TRACE_FORMAT = "linesearch-trace"
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# JSONL trace
# ----------------------------------------------------------------------

def write_trace_jsonl(
    path: str,
    telemetry: Telemetry,
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write every finished span to ``path`` as JSONL; returns the span count.

    Line 1 is a header: format name, trace version, and the telemetry
    metadata (library version, python version, ...).  Every following
    line is one span dict.
    """
    records = telemetry.tracer.records()
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "metadata": dict(telemetry.metadata, **(extra_metadata or {})),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return len(records)


def read_trace_jsonl(
    path: str,
) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    """Read a trace written by :func:`write_trace_jsonl`.

    Returns ``(metadata, spans)``.  Raises
    :class:`~repro.errors.InvalidParameterError` when the file is
    missing or is not a linesearch trace.
    """
    if not os.path.exists(path):
        raise InvalidParameterError(f"no trace file at {path!r}")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise InvalidParameterError(f"trace {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise InvalidParameterError(
            f"trace {path!r} has a corrupt header"
        ) from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise InvalidParameterError(f"{path!r} is not a linesearch trace")
    if header.get("version") != TRACE_VERSION:
        raise InvalidParameterError(
            f"trace {path!r} has version {header.get('version')!r}; "
            f"this library reads version {TRACE_VERSION}"
        )
    spans = [
        SpanRecord.from_dict(json.loads(line))
        for line in lines[1:]
        if line.strip()
    ]
    return header.get("metadata", {}), spans


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if value != int(value) else str(int(value))


def to_prometheus(telemetry: Telemetry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Includes a ``linesearch_build_info`` gauge whose labels carry the
    telemetry metadata (library version and python version), the
    conventional way to attach build identity to a scrape.
    """
    lines: List[str] = []
    version = str(telemetry.metadata.get("version", __version__))
    python = str(telemetry.metadata.get("python", ""))
    lines.append(
        "# HELP linesearch_build_info build/version metadata of the "
        "telemetry producer"
    )
    lines.append("# TYPE linesearch_build_info gauge")
    lines.append(
        'linesearch_build_info{version="%s",python="%s"} 1'
        % (_escape_label(version), _escape_label(python))
    )
    for metric in telemetry.metrics.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series() or {(): 0.0}
            for key in sorted(series):
                lines.append(
                    f"{metric.name}{_format_labels(key)} "
                    f"{_format_value(series[key])}"
                )
        elif isinstance(metric, Histogram):
            cumulative = 0
            counts = metric.bucket_counts()
            for bound, bucket in zip(metric.buckets, counts):
                cumulative += bucket
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric.name}_sum {_format_value(metric.sum())}")
            lines.append(f"{metric.name}_count {metric.count()}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, telemetry: Telemetry) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(telemetry))


# ----------------------------------------------------------------------
# human summary
# ----------------------------------------------------------------------

def summary(
    spans: Iterable[SpanRecord],
    top: int = 20,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Aggregate spans by name into an aligned where-did-time-go table.

    Rows are sorted by total duration, descending — the first row is
    the biggest consumer of wall-clock time.

    Examples:
        >>> from repro.observability.tracing import Tracer
        >>> tracer = Tracer()
        >>> with tracer.span("simulate"):
        ...     pass
        >>> print(summary(tracer.records()).splitlines()[0])
        span | count | total s | mean s | max s
    """
    from repro.experiments.report import render_table

    aggregate: Dict[str, List[float]] = {}
    for record in spans:
        aggregate.setdefault(record.name, []).append(record.duration)
    rows = []
    for name, durations in aggregate.items():
        rows.append(
            [
                name,
                len(durations),
                sum(durations),
                sum(durations) / len(durations),
                max(durations),
            ]
        )
    rows.sort(key=lambda row: row[2], reverse=True)
    hidden = max(0, len(rows) - top)
    table = render_table(
        ["span", "count", "total s", "mean s", "max s"],
        rows[:top],
        precision=6,
    )
    parts = []
    if metadata:
        version = metadata.get("version")
        if version:
            parts.append(f"trace from linesearch {version}")
    parts.append(table)
    if hidden:
        parts.append(f"... and {hidden} more span name(s)")
    return "\n".join(parts)
