"""Telemetry exporters: JSONL traces, Prometheus text format, summaries.

Three consumers, three formats:

* **machines replaying a run** read the JSONL trace — a header line
  identifying the format and the library version, then one span per
  line (:func:`write_trace_jsonl` / :func:`read_trace_jsonl`);
* **monitoring systems** scrape the Prometheus text exposition written
  by :func:`write_prometheus` — counters, gauges, and histograms with
  cumulative ``_bucket`` series, plus a ``linesearch_build_info`` gauge
  carrying the library version as a label;
* **humans** read :func:`summary` — an aligned table aggregating span
  durations by name (count / total / mean / max), the thing you look
  at when a sweep is mysteriously slow — and
  :func:`prometheus_summary`, the same service for a ``metrics.prom``
  file (counters/gauges table plus estimated histogram quantiles,
  reparsed via :func:`parse_prometheus`).

Histogram quantiles everywhere in this module are *estimates*
interpolated within the fixed buckets (see
:func:`~repro.observability.metrics.quantile_from_buckets`); they are
exact only when the true quantile sits on a bucket bound.

Examples:
    >>> from repro.observability.instrument import Telemetry
    >>> telemetry = Telemetry()
    >>> telemetry.metrics.counter("scenarios_completed_total", "done").inc(5)
    >>> text = to_prometheus(telemetry)
    >>> 'scenarios_completed_total 5' in text
    True
    >>> 'linesearch_build_info{version=' in text
    True
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro._version import __version__
from repro.errors import InvalidParameterError
from repro.observability.instrument import Telemetry
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import SpanRecord

__all__ = [
    "QUANTILE_POINTS",
    "SSE_MEDIA_TYPE",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "format_sse",
    "parse_prometheus",
    "parse_sse",
    "prometheus_summary",
    "read_trace_jsonl",
    "summary",
    "to_prometheus",
    "write_prometheus",
    "write_trace_jsonl",
]

#: Quantiles reported for fixed-bucket histograms, everywhere they are
#: summarized (the ``.prom`` comment line, ``summary()``, the CLI).
QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.9, 0.99)

TRACE_FORMAT = "linesearch-trace"
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# JSONL trace
# ----------------------------------------------------------------------

def write_trace_jsonl(
    path: str,
    telemetry: Telemetry,
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write every finished span to ``path`` as JSONL; returns the span count.

    Line 1 is a header: format name, trace version, and the telemetry
    metadata (library version, python version, ...).  Every following
    line is one span dict.
    """
    records = telemetry.tracer.records()
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "metadata": dict(telemetry.metadata, **(extra_metadata or {})),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return len(records)


def read_trace_jsonl(
    path: str,
) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    """Read a trace written by :func:`write_trace_jsonl`.

    Returns ``(metadata, spans)``.  Raises
    :class:`~repro.errors.InvalidParameterError` when the file is
    missing or is not a linesearch trace.

    Blank lines anywhere are skipped.  A *torn final line* — the
    half-written tail a crashed producer leaves behind — is silently
    dropped, mirroring the campaign journal's recovery rule; a corrupt
    line anywhere *before* the end means the file is damaged, not
    merely truncated, and raises.
    """
    if not os.path.exists(path):
        raise InvalidParameterError(f"no trace file at {path!r}")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise InvalidParameterError(f"trace {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise InvalidParameterError(
            f"trace {path!r} has a corrupt header"
        ) from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise InvalidParameterError(f"{path!r} is not a linesearch trace")
    if header.get("version") != TRACE_VERSION:
        raise InvalidParameterError(
            f"trace {path!r} has version {header.get('version')!r}; "
            f"this library reads version {TRACE_VERSION}"
        )
    body = [
        (number, line)
        for number, line in enumerate(lines[1:], start=2)
        if line.strip()
    ]
    spans: List[SpanRecord] = []
    for position, (number, line) in enumerate(body):
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("span lines are JSON objects")
            spans.append(SpanRecord.from_dict(data))
        except (ValueError, KeyError, TypeError):
            if position == len(body) - 1:
                break  # torn final line: a crash mid-write, tolerated
            raise InvalidParameterError(
                f"trace {path!r} has a corrupt span on line {number}"
            ) from None
    return header.get("metadata", {}), spans


# ----------------------------------------------------------------------
# Server-Sent-Events framing (the dashboard stream's wire format)
# ----------------------------------------------------------------------

#: The Content-Type an SSE response must carry.
SSE_MEDIA_TYPE = "text/event-stream"


def format_sse(
    data: Any,
    event: Optional[str] = None,
    event_id: Optional[Any] = None,
) -> str:
    """Frame one JSON payload as a Server-Sent-Events block.

    ``event`` becomes the ``event:`` field (the browser-side listener
    name), ``event_id`` the ``id:`` field.  The payload is serialized
    with sorted keys so identical state frames identically — the same
    determinism rule as every other exporter in this module.  The block
    is terminated by the required blank line.

    Examples:
        >>> print(format_sse({"depth": 2}, event="jobs", event_id=7), end="")
        event: jobs
        id: 7
        data: {"depth": 2}
        <BLANKLINE>
    """
    lines: List[str] = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    payload = json.dumps(data, sort_keys=True)
    # json.dumps never emits raw newlines, but frame defensively: a
    # data field per line is how SSE carries multi-line payloads.
    for part in payload.split("\n"):
        lines.append(f"data: {part}")
    return "\n".join(lines) + "\n\n"


def _sse_field(line: str) -> Tuple[str, str]:
    field, _, value = line.partition(":")
    if value.startswith(" "):
        value = value[1:]
    return field, value


def parse_sse(text: str) -> List[Dict[str, Any]]:
    """Parse a stream of :func:`format_sse` blocks back into events.

    Returns ``[{"event", "id", "data"}, ...]`` with ``data`` already
    JSON-decoded (``event`` defaults to ``"message"`` per the SSE spec;
    ``id`` is ``None`` when absent).  Comment lines (``:`` prefixed,
    the keep-alive idiom) are ignored, as are blocks carrying no data.

    Truncation follows the trace-file rule: a *torn tail* — either an
    unterminated final block or a terminated final block whose payload
    no longer decodes, the half-written leavings of a dead producer —
    is silently dropped, while a corrupt block anywhere earlier means
    the stream is damaged and raises
    :class:`~repro.errors.InvalidParameterError`.

    Examples:
        >>> frames = format_sse({"a": 1}, event="x") + format_sse({"b": 2})
        >>> [e["event"] for e in parse_sse(frames)]
        ['x', 'message']
        >>> parse_sse(frames + "event: torn\\ndata: {\\"half")[-1]["data"]
        {'b': 2}
    """
    blocks: List[Tuple[str, Optional[str], List[str], bool]] = []
    event, event_id, data = "message", None, []
    for line in text.split("\n"):
        line = line.rstrip("\r")
        if line == "":
            if data:
                blocks.append((event, event_id, data, True))
            event, event_id, data = "message", None, []
            continue
        if line.startswith(":"):
            continue
        field, value = _sse_field(line)
        if field == "event":
            event = value
        elif field == "id":
            event_id = value
        elif field == "data":
            data.append(value)
    if data:
        blocks.append((event, event_id, data, False))  # unterminated tail
    events: List[Dict[str, Any]] = []
    for position, (event, event_id, data, terminated) in enumerate(blocks):
        last = position == len(blocks) - 1
        if not terminated:
            break  # torn tail: producer died mid-block, tolerated
        try:
            payload = json.loads("\n".join(data))
        except json.JSONDecodeError:
            if last:
                break  # terminated but half-written payload: tolerated
            raise InvalidParameterError(
                f"corrupt SSE payload in block {position + 1}"
            ) from None
        events.append({"event": event, "id": event_id, "data": payload})
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if value != int(value) else str(int(value))


def to_prometheus(telemetry: Telemetry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Includes a ``linesearch_build_info`` gauge whose labels carry the
    telemetry metadata (library version and python version), the
    conventional way to attach build identity to a scrape.
    """
    lines: List[str] = []
    version = str(telemetry.metadata.get("version", __version__))
    python = str(telemetry.metadata.get("python", ""))
    lines.append(
        "# HELP linesearch_build_info build/version metadata of the "
        "telemetry producer"
    )
    lines.append("# TYPE linesearch_build_info gauge")
    lines.append(
        'linesearch_build_info{version="%s",python="%s"} 1'
        % (_escape_label(version), _escape_label(python))
    )
    for metric in telemetry.metrics.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series() or {(): 0.0}
            for key in sorted(series):
                lines.append(
                    f"{metric.name}{_format_labels(key)} "
                    f"{_format_value(series[key])}"
                )
        elif isinstance(metric, Histogram):
            cumulative = 0
            counts = metric.bucket_counts()
            for bound, bucket in zip(metric.buckets, counts):
                cumulative += bucket
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric.name}_sum {_format_value(metric.sum())}")
            lines.append(f"{metric.name}_count {metric.count()}")
            estimates = _quantile_estimates(metric)
            if estimates:
                # a comment, not a sample: these are bucket-interpolated
                # estimates (exact only at bucket bounds), and histogram
                # families must expose only _bucket/_sum/_count series
                lines.append(
                    f"# {metric.name} estimated quantiles "
                    "(interpolated within fixed buckets, exact only at "
                    "bucket bounds): " + estimates
                )
    return "\n".join(lines) + "\n"


def _quantile_estimates(histogram: Histogram) -> str:
    """``p50=... p90=... p99=...`` for a histogram, or ``""`` if empty."""
    parts = []
    for q in QUANTILE_POINTS:
        value = histogram.estimate_quantile(q)
        if value is None:
            return ""
        parts.append(f"p{int(q * 100)}={value:.6g}")
    return " ".join(parts)


def write_prometheus(path: str, telemetry: Telemetry) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(telemetry))


# ----------------------------------------------------------------------
# human summary
# ----------------------------------------------------------------------

def summary(
    spans: Iterable[SpanRecord],
    top: int = 20,
    metadata: Optional[Dict[str, Any]] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> str:
    """Aggregate spans by name into an aligned where-did-time-go table.

    Rows are sorted by total duration, descending — the first row is
    the biggest consumer of wall-clock time.  Passing the run's
    ``metrics`` registry appends a second table of estimated histogram
    quantiles (p50/p90/p99, interpolated within the fixed buckets —
    see :func:`~repro.observability.metrics.quantile_from_buckets` for
    why they are estimates, not sample quantiles).

    Examples:
        >>> from repro.observability.tracing import Tracer
        >>> tracer = Tracer()
        >>> with tracer.span("simulate"):
        ...     pass
        >>> print(summary(tracer.records()).splitlines()[0])
        span | count | total s | mean s | max s
    """
    from repro.experiments.report import render_table

    aggregate: Dict[str, List[float]] = {}
    for record in spans:
        aggregate.setdefault(record.name, []).append(record.duration)
    rows = []
    for name, durations in aggregate.items():
        rows.append(
            [
                name,
                len(durations),
                sum(durations),
                sum(durations) / len(durations),
                max(durations),
            ]
        )
    rows.sort(key=lambda row: row[2], reverse=True)
    hidden = max(0, len(rows) - top)
    table = render_table(
        ["span", "count", "total s", "mean s", "max s"],
        rows[:top],
        precision=6,
    )
    parts = []
    if metadata:
        version = metadata.get("version")
        if version:
            parts.append(f"trace from linesearch {version}")
    parts.append(table)
    if hidden:
        parts.append(f"... and {hidden} more span name(s)")
    if metrics is not None:
        quantile_rows = []
        for metric in metrics.metrics():
            if isinstance(metric, Histogram) and metric.count():
                quantile_rows.append(
                    [metric.name, metric.count()]
                    + [metric.estimate_quantile(q) for q in QUANTILE_POINTS]
                )
        if quantile_rows:
            parts.append(
                "histogram quantiles (estimated from fixed buckets):"
            )
            parts.append(
                render_table(
                    ["histogram", "count"]
                    + [f"~p{int(q * 100)}" for q in QUANTILE_POINTS],
                    quantile_rows,
                    precision=6,
                )
            )
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Prometheus text parsing (the .prom side of `linesearch telemetry`)
# ----------------------------------------------------------------------

_UNESCAPE = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        pair = value[i:i + 2]
        if pair in _UNESCAPE:
            out.append(_UNESCAPE[pair])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for match in re.finditer(r'(\w+)="((?:[^"\\]|\\.)*)"', text):
        labels[match.group(1)] = _unescape_label(match.group(2))
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse a Prometheus text exposition back into metric families.

    The inverse of :func:`to_prometheus`, to the extent the format
    allows: returns ``{family_name: {"kind", "help", "samples"}}``
    where each sample is ``(metric_name, labels_dict, value)``.
    Histogram ``_bucket``/``_sum``/``_count`` series are grouped under
    their family name.  Lines that are neither comments nor parseable
    samples raise :class:`~repro.errors.InvalidParameterError`.

    Examples:
        >>> from repro.observability.instrument import Telemetry
        >>> telemetry = Telemetry()
        >>> telemetry.metrics.counter("runs_total", "runs").inc(3)
        >>> families = parse_prometheus(to_prometheus(telemetry))
        >>> families["runs_total"]["kind"], families["runs_total"]["samples"]
        ('counter', [('runs_total', {}, 3.0)])
    """
    families: Dict[str, Dict[str, Any]] = {}
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = re.match(r"#\s+(HELP|TYPE)\s+(\w+)\s+(.*)", line)
            if match:
                directive, name, rest = match.groups()
                if directive == "TYPE":
                    kinds[name] = rest.strip()
                else:
                    helps[name] = rest
            continue
        match = re.match(
            r"([a-zA-Z_][a-zA-Z0-9_]*)(\{.*\})?\s+(\S+)$", line
        )
        if not match:
            raise InvalidParameterError(
                f"unparseable Prometheus sample on line {number}: {line!r}"
            )
        name, label_text, raw_value = match.groups()
        try:
            value = float(raw_value.replace("+Inf", "inf"))
        except ValueError:
            raise InvalidParameterError(
                f"bad sample value on line {number}: {raw_value!r}"
            ) from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                family = name[: -len(suffix)]
                break
        entry = families.setdefault(
            family,
            {
                "kind": kinds.get(family, "untyped"),
                "help": helps.get(family, ""),
                "samples": [],
            },
        )
        entry["samples"].append(
            (name, _parse_labels(label_text or ""), value)
        )
    return families


def _histogram_quantiles_from_samples(
    family: str, samples
) -> Optional[Tuple[float, ...]]:
    """Reconstruct ``QUANTILE_POINTS`` estimates from parsed samples."""
    from repro.observability.metrics import quantile_from_buckets

    buckets = sorted(
        (float(labels["le"]), value)
        for name, labels, value in samples
        if name == f"{family}_bucket" and "le" in labels
        and math.isfinite(float(labels["le"]))
    )
    totals = [
        value for name, labels, value in samples
        if name == f"{family}_count"
    ]
    if not buckets or not totals:
        return None
    bounds = tuple(b for b, _ in buckets)
    cumulative = [int(c) for _, c in buckets]
    counts = [cumulative[0]] + [
        hi - lo for lo, hi in zip(cumulative, cumulative[1:])
    ]
    counts.append(int(totals[0]) - cumulative[-1])
    estimates = tuple(
        quantile_from_buckets(bounds, counts, q) for q in QUANTILE_POINTS
    )
    return None if any(e is None for e in estimates) else estimates


def prometheus_summary(text: str, top: int = 20) -> str:
    """Human tables for a ``metrics.prom`` file.

    Counters and gauges land in one value table (labeled series each
    on their own row, sorted by value within a family, ``top`` rows
    shown); histograms get count/sum/mean plus the estimated
    p50/p90/p99 reconstructed from their cumulative buckets — the same
    bucket-interpolation estimates as :func:`summary`, with the same
    exactness caveat.

    Examples:
        >>> from repro.observability.instrument import Telemetry
        >>> telemetry = Telemetry()
        >>> telemetry.metrics.counter("runs_total", "runs").inc(3)
        >>> print(prometheus_summary(to_prometheus(telemetry)).splitlines()[0])
        metric | kind | value
    """
    from repro.experiments.report import render_table

    families = parse_prometheus(text)
    value_rows: List[List[Any]] = []
    histogram_rows: List[List[Any]] = []
    for family in sorted(families):
        entry = families[family]
        if entry["kind"] == "histogram":
            sums = [v for n, _, v in entry["samples"]
                    if n == f"{family}_sum"]
            counts = [v for n, _, v in entry["samples"]
                      if n == f"{family}_count"]
            if not counts or counts[0] == 0:
                continue
            row: List[Any] = [
                family, int(counts[0]), sums[0] if sums else 0.0,
                (sums[0] / counts[0]) if sums else 0.0,
            ]
            estimates = _histogram_quantiles_from_samples(
                family, entry["samples"]
            )
            row.extend(estimates if estimates else ["?"] * len(QUANTILE_POINTS))
            histogram_rows.append(row)
        else:
            rows = []
            for name, labels, value in entry["samples"]:
                label_text = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                shown = f"{name}{{{label_text}}}" if labels else name
                rows.append([shown, entry["kind"], value])
            rows.sort(key=lambda r: (-(r[2]), r[0]))
            value_rows.extend(rows)
    parts = []
    hidden = max(0, len(value_rows) - top)
    parts.append(
        render_table(
            ["metric", "kind", "value"], value_rows[:top], precision=6
        )
    )
    if hidden:
        parts.append(f"... and {hidden} more series")
    if histogram_rows:
        parts.append("")
        parts.append("histograms (quantiles estimated from fixed buckets):")
        parts.append(
            render_table(
                ["histogram", "count", "sum", "mean"]
                + [f"~p{int(q * 100)}" for q in QUANTILE_POINTS],
                histogram_rows,
                precision=6,
            )
        )
    return "\n".join(parts)
