"""Span-based tracing: nested, monotonic-clock timed, process-portable.

A *span* is one timed unit of work — a simulation phase, a campaign
scenario, a journal flush.  Spans nest: while a span is open on the
current thread, any span opened beneath it records that span as its
parent, so a finished trace is a forest whose roots are the outermost
operations.  Timing uses :func:`time.perf_counter` (monotonic, never
wall-clock), so spans are immune to NTP jumps.

Two properties make the tracer safe in the executor's world:

* **thread safety** — the open-span stack is thread-local and the
  finished-record list is guarded by a lock, so concurrent threads
  trace independently without interleaving corruption;
* **process portability** — finished spans are plain dicts (via
  :meth:`SpanRecord.to_dict`) whose ids embed the producing pid, so a
  worker process can flush its spans through the result pipe and the
  parent can :meth:`~Tracer.adopt` them under its own scenario span
  without id collisions.

Examples:
    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", phase="detect") as inner:
    ...         pass
    >>> records = tracer.records()
    >>> [r.name for r in records]       # children finish first
    ['inner', 'outer']
    >>> records[0].parent_id == records[1].span_id
    True
    >>> records[0].attributes["phase"]
    'detect'
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "child_index",
    "children_of",
    "roots",
    "self_durations",
    "walk_tree",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, lineage, timing, and attributes.

    ``start`` is a :func:`time.perf_counter` reading — meaningful only
    relative to other spans from the same process (``pid``); durations
    are comparable everywhere.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    duration: float
    pid: int
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: picklable, JSON-ready; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            duration=float(data["duration"]),
            pid=int(data.get("pid", 0)),
            attributes=dict(data.get("attributes", {})),
        )


class _ActiveSpan:
    """An open span: a context manager that records itself on exit.

    Returned by :meth:`Tracer.span`; also usable directly to attach
    attributes discovered mid-flight via :meth:`set`.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "_start", "attributes")

    def __init__(self, tracer: "Tracer", name: str, parent_id: Optional[str],
                 attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._new_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self._start = 0.0

    def set(self, **attributes: Any) -> "_ActiveSpan":
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, duration)
        return False


class Tracer:
    """Collects finished spans; hands out nested :class:`_ActiveSpan` handles.

    Span ids are ``"{pid:x}:{counter:x}"`` — unique within a process by
    the counter, across processes by the pid — so traces merged from
    worker processes never collide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._counter = itertools.count(1)

    # -- span lifecycle ------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span as a context manager, nested under the thread's
        currently open span (if any)."""
        return _ActiveSpan(self, name, self.current_span_id(), attributes)

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost span open on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    def _new_id(self) -> str:
        return f"{os.getpid():x}:{next(self._counter):x}"

    def _push(self, span: _ActiveSpan) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: _ActiveSpan, duration: float) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start=span._start,
            duration=duration,
            pid=os.getpid(),
            attributes=span.attributes,
        )
        with self._lock:
            self._records.append(record)

    # -- direct recording & cross-process merge ------------------------

    def record_span(
        self,
        name: str,
        duration: float,
        start: Optional[float] = None,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> str:
        """Record an already-measured span without opening a context.

        The executor uses this for pooled scenarios: the work happened
        in a worker process, the parent only observed its wall clock.
        Returns the new span's id so worker spans can be adopted under it.
        """
        record = SpanRecord(
            name=name,
            span_id=self._new_id(),
            parent_id=(
                parent_id if parent_id is not None else self.current_span_id()
            ),
            start=time.perf_counter() - duration if start is None else start,
            duration=duration,
            pid=os.getpid(),
            attributes=attributes,
        )
        with self._lock:
            self._records.append(record)
        return record.span_id

    def adopt(
        self,
        records: Iterable[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> int:
        """Merge span dicts produced by another process.

        Root spans (``parent_id is None``) are re-parented under
        ``parent_id``, so a worker's trace hangs off the parent's
        scenario span; non-root lineage is preserved untouched.
        Returns the number of spans adopted.
        """
        adopted = []
        for data in records:
            record = SpanRecord.from_dict(data)
            if record.parent_id is None and parent_id is not None:
                record = SpanRecord(
                    name=record.name,
                    span_id=record.span_id,
                    parent_id=parent_id,
                    start=record.start,
                    duration=record.duration,
                    pid=record.pid,
                    attributes=record.attributes,
                )
            adopted.append(record)
        with self._lock:
            self._records.extend(adopted)
        return len(adopted)

    # -- reading -------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all finished spans as plain dicts.

        This is the worker-side flush: the dicts travel through the
        result pipe and the parent tracer :meth:`adopt`\\ s them.
        """
        with self._lock:
            records, self._records = self._records, []
        return [r.to_dict() for r in records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def roots(records: Iterable[SpanRecord]) -> List[SpanRecord]:
    """The forest roots: spans whose parent is absent from ``records``.

    Examples:
        >>> tracer = Tracer()
        >>> with tracer.span("a"):
        ...     with tracer.span("b"):
        ...         pass
        >>> [r.name for r in roots(tracer.records())]
        ['a']
    """
    records = list(records)
    known = {r.span_id for r in records}
    return [r for r in records if r.parent_id not in known]


def children_of(
    records: Iterable[SpanRecord], span_id: str
) -> List[SpanRecord]:
    """Direct children of ``span_id`` within ``records``."""
    return [r for r in records if r.parent_id == span_id]


def child_index(
    records: Iterable[SpanRecord],
) -> Dict[Optional[str], List[SpanRecord]]:
    """Map each parent span id to its direct children, in record order.

    The whole forest in one pass — the profiler walks this instead of
    re-scanning the record list per span.  Spans whose parent is absent
    from ``records`` (adopted fragments, truncated traces) are grouped
    under ``None`` together with the true roots.

    Examples:
        >>> tracer = Tracer()
        >>> with tracer.span("a"):
        ...     with tracer.span("b"):
        ...         pass
        ...     with tracer.span("c"):
        ...         pass
        >>> index = child_index(tracer.records())
        >>> [r.name for r in index[None]]
        ['a']
        >>> root = index[None][0]
        >>> [r.name for r in index[root.span_id]]
        ['b', 'c']
    """
    records = list(records)
    known = {r.span_id for r in records}
    index: Dict[Optional[str], List[SpanRecord]] = {}
    for record in records:
        parent = record.parent_id if record.parent_id in known else None
        index.setdefault(parent, []).append(record)
    return index


def self_durations(records: Iterable[SpanRecord]) -> Dict[str, float]:
    """Self time of every span: its duration minus its children's.

    Clamped at zero — clock granularity (or adopted spans measured on
    another host) can make children appear to outlast their parent by
    a few nanoseconds.

    Examples:
        >>> tracer = Tracer()
        >>> parent = tracer.record_span("outer", duration=2.0)
        >>> _ = tracer.record_span("inner", duration=0.5, parent_id=parent)
        >>> by_id = self_durations(tracer.records())
        >>> round(by_id[parent], 9)
        1.5
    """
    records = list(records)
    out = {r.span_id: r.duration for r in records}
    known = set(out)
    for record in records:
        if record.parent_id in known:
            out[record.parent_id] -= record.duration
    return {span_id: max(0.0, value) for span_id, value in out.items()}


def walk_tree(records: Iterable[SpanRecord]):
    """Depth-first walk of the span forest, yielding ``(path, span)``.

    ``path`` is the tuple of span *names* from the root down to (and
    including) the yielded span — the stack a flamegraph line is made
    of.  Children are visited in record (completion) order; a cycle in
    corrupted parent links is broken rather than recursed forever.

    Examples:
        >>> tracer = Tracer()
        >>> with tracer.span("a"):
        ...     with tracer.span("b"):
        ...         pass
        >>> [(";".join(path), span.name) for path, span in
        ...  walk_tree(tracer.records())]
        [('a', 'a'), ('a;b', 'b')]
    """
    index = child_index(records)
    seen: set = set()

    def visit(span: SpanRecord, prefix):
        if span.span_id in seen:
            return
        seen.add(span.span_id)
        path = prefix + (span.name,)
        yield path, span
        for kid in index.get(span.span_id, []):
            yield from visit(kid, path)

    for root in index.get(None, []):
        yield from visit(root, ())
