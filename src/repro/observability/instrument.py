"""Zero-overhead-when-disabled instrumentation facade.

The hot layers (the simulation engine, the sweeps, the campaign
executor) call the module-level helpers in here — :func:`span`,
:func:`count`, :func:`observe` — unconditionally.  When telemetry is
disabled (the default) each helper is a single global-load plus an
``is None`` test returning a shared no-op object: no allocation, no
locks, no timestamps.  ``benchmarks/bench_telemetry.py`` pins the cost
of that disabled path below 2% of a ``simulate_search`` call.

Enable collection with :func:`enable` (or pass a preconfigured
:class:`Telemetry`); every helper then routes to the active tracer and
metrics registry.  The previous state is returned so scopes can nest::

    previous = enable()
    try:
        ...instrumented work...
    finally:
        configure(previous)

Examples:
    >>> telemetry = enable()
    >>> with span("work", phase="demo"):
    ...     count("demo_total")
    >>> [r.name for r in telemetry.tracer.records()]
    ['work']
    >>> telemetry.metrics.counter("demo_total").value()
    1.0
    >>> disable() is telemetry
    True
    >>> is_enabled()
    False
"""

from __future__ import annotations

import platform
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.observability.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer

__all__ = [
    "Telemetry",
    "WELL_KNOWN_METRICS",
    "configure",
    "count",
    "current",
    "disable",
    "enable",
    "gauge_set",
    "instrumented",
    "is_enabled",
    "observe",
    "span",
]


#: Help text for the metrics the instrumented layers emit, pre-registered
#: on every fresh :class:`Telemetry` so exports are self-describing (and
#: so a campaign that recorded zero of something still exports the zero).
WELL_KNOWN_METRICS = {
    "counter": {
        "simulation_runs_total": "search simulations executed",
        "simulation_visits_computed_total":
            "target visit events computed across simulations",
        "scenarios_completed_total":
            "campaign scenarios recorded (success or isolated failure)",
        "scenarios_failed_total":
            "campaign scenarios recorded as failures, by error class",
        "scenario_retries_total":
            "extra attempts spent on scenarios beyond their first",
        "watchdog_timeouts_total":
            "scenarios killed by the executor's wall-clock watchdog",
        "worker_crashes_total": "worker processes that died mid-scenario",
        "campaign_interrupts_total":
            "campaigns stopped cooperatively (SIGTERM / stop_check) "
            "after a journal checkpoint",
        "journal_flushes_total": "campaign journal flushes, by fsync",
        "service_requests_total":
            "service requests handled, by endpoint and status",
        "service_jobs_submitted_total": "jobs admitted by the service",
        "service_jobs_completed_total":
            "jobs finished by the service, by final status",
        "service_cache_hits_total":
            "scenario results served from the fingerprint cache",
        "service_cache_misses_total":
            "scenario results the fingerprint cache could not serve",
        "service_overload_rejections_total":
            "submissions rejected because the admission queue was full",
        "service_rate_limited_total":
            "submissions rejected by a client's token bucket",
        "service_deadline_expirations_total":
            "jobs cancelled because their deadline passed",
        "service_drains_total": "graceful drains begun (SIGTERM/SIGINT)",
        "sweep_points_total": "parameter-sweep points evaluated",
        "batch_points_total": "targets evaluated through the batch kernels",
        "batch_compiles_total":
            "fleet compilations into batch segment arrays",
        "async_runs_total": "discrete-event engine runs executed",
        "async_activations_total":
            "activation bursts materialized across event-engine timelines",
        "async_sweep_points_total":
            "CR-degradation sweep points evaluated",
        "variants_runs_total": "problem-variant scenario runs executed",
        "variants_halfline_runs_total":
            "half-line variant scenario runs executed",
        "variants_evacuations_total": "evacuation simulations executed",
        "variants_gather_arrivals_total":
            "gather-phase arrival events recorded across evacuations",
        "variants_halfline_sweep_points_total":
            "half-line closed-form validation sweep points evaluated",
    },
    "histogram": {
        "simulation_wall_seconds": "wall-clock time of one simulation run",
        "async_wall_seconds":
            "wall-clock time of one discrete-event engine run",
        "scenario_wall_seconds": "wall-clock time of one campaign scenario",
        "journal_flush_seconds": "wall-clock time of one journal flush",
        "service_request_seconds":
            "wall-clock time spent handling one service request",
        "service_job_seconds": "wall-clock time one job spent executing",
        "variants_wall_seconds":
            "wall-clock time of one problem-variant run",
    },
    "gauge": {
        "campaign_scenarios_total": "scenarios in the current campaign",
        "campaign_scenarios_resumed":
            "scenarios skipped because the journal already held them",
        "service_queue_depth": "jobs waiting in the admission queue",
        "service_workers_alive": "service worker threads currently alive",
        "service_jobs_running": "jobs currently executing",
        "service_cache_size": "entries resident in the scenario result cache",
    },
}


class Telemetry:
    """One tracer + one metrics registry + run metadata, as a unit."""

    __slots__ = ("tracer", "metrics", "metadata")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name, help_text in WELL_KNOWN_METRICS["counter"].items():
            self.metrics.counter(name, help_text)
        for name, help_text in WELL_KNOWN_METRICS["histogram"].items():
            self.metrics.histogram(name, help_text)
        for name, help_text in WELL_KNOWN_METRICS["gauge"].items():
            self.metrics.gauge(name, help_text)
        self.metadata = {
            "library": "linesearch",
            "version": __version__,
            "python": platform.python_version(),
        }
        if metadata:
            self.metadata.update(metadata)


class _NoopSpan:
    """The disabled-path span: enters, exits, accepts attributes, does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()

#: The active telemetry, or ``None`` when disabled.  Module-global on
#: purpose: the disabled fast path must be one load + one ``is None``.
_TELEMETRY: Optional[Telemetry] = None


def configure(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``telemetry`` (or ``None`` to disable); returns the
    previous state so callers can restore it."""
    global _TELEMETRY
    previous = _TELEMETRY
    _TELEMETRY = telemetry
    return previous


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Switch collection on (creating a fresh :class:`Telemetry` if
    none is given) and return the active instance."""
    active = telemetry if telemetry is not None else Telemetry()
    configure(active)
    return active


def disable() -> Optional[Telemetry]:
    """Switch collection off; returns the telemetry that was active."""
    return configure(None)


def current() -> Optional[Telemetry]:
    """The active :class:`Telemetry`, or ``None`` when disabled."""
    return _TELEMETRY


def is_enabled() -> bool:
    """Whether any telemetry is being collected."""
    return _TELEMETRY is not None


# ----------------------------------------------------------------------
# hot-path helpers — each starts with the disabled fast path
# ----------------------------------------------------------------------

def span(name: str, **attributes: Any):
    """A tracer span when enabled, a shared no-op otherwise."""
    telemetry = _TELEMETRY
    if telemetry is None:
        return _NOOP_SPAN
    return telemetry.tracer.span(name, **attributes)


def count(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment counter ``name`` when enabled."""
    telemetry = _TELEMETRY
    if telemetry is None:
        return
    telemetry.metrics.counter(name).inc(amount, **labels)


def observe(name: str, value: float, buckets=DEFAULT_TIME_BUCKETS) -> None:
    """Record ``value`` into histogram ``name`` when enabled."""
    telemetry = _TELEMETRY
    if telemetry is None:
        return
    telemetry.metrics.histogram(name, buckets=buckets).observe(value)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    """Set gauge ``name`` when enabled."""
    telemetry = _TELEMETRY
    if telemetry is None:
        return
    telemetry.metrics.gauge(name).set(value, **labels)


def instrumented(name: str, **attributes: Any):
    """Decorator: trace every call of the wrapped function as a span.

    The disabled path adds one global load and an ``is None`` test on
    top of the plain call.

    Examples:
        >>> @instrumented("math.double")
        ... def double(x):
        ...     return 2 * x
        >>> double(21)
        42
        >>> telemetry = enable()
        >>> double(2)
        4
        >>> telemetry.tracer.records()[0].name
        'math.double'
        >>> _ = disable()
    """
    def decorate(func):
        import functools

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            telemetry = _TELEMETRY
            if telemetry is None:
                return func(*args, **kwargs)
            with telemetry.tracer.span(name, **attributes):
                return func(*args, **kwargs)

        return wrapper

    return decorate
