"""Observability: structured tracing, metrics, and exporters.

The telemetry spine of the reproduction.  Simulations, sweeps, and
chaos campaigns are instrumented with nested spans and a metrics
registry; both are **off by default** and cost a single ``is None``
test per call site until enabled (see
:mod:`repro.observability.instrument`).  When enabled, the campaign
executor's worker processes flush their spans and metric snapshots
back through their result pipes, so one trace covers the whole fleet.

Entry points:

* :func:`~repro.observability.instrument.enable` /
  :func:`~repro.observability.instrument.disable` — switch collection
  on and off; :class:`~repro.observability.instrument.Telemetry`
  bundles one tracer, one registry, and run metadata;
* :class:`~repro.observability.tracing.Tracer` — nested spans with
  monotonic timing, thread-safe, process-portable records;
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges, fixed-bucket histograms, exact cross-process merging;
* :mod:`repro.observability.export` — JSONL traces, the Prometheus
  text format, and a human ``summary()`` table;
* ``linesearch chaos --telemetry-dir OUT`` and
  ``linesearch telemetry OUT/trace.jsonl`` — the same from the CLI.
"""

from repro.observability.export import (
    QUANTILE_POINTS,
    SSE_MEDIA_TYPE,
    TRACE_FORMAT,
    TRACE_VERSION,
    format_sse,
    parse_prometheus,
    parse_sse,
    prometheus_summary,
    read_trace_jsonl,
    summary,
    to_prometheus,
    write_prometheus,
    write_trace_jsonl,
)
from repro.observability.instrument import (
    Telemetry,
    configure,
    count,
    current,
    disable,
    enable,
    gauge_set,
    instrumented,
    is_enabled,
    observe,
    span,
)
from repro.observability.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
    snapshot_delta,
)
from repro.observability.tracing import (
    SpanRecord,
    Tracer,
    child_index,
    children_of,
    roots,
    self_durations,
    walk_tree,
)

#: Aliases exported at the package top level for discoverability.
enable_telemetry = enable
disable_telemetry = disable

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUANTILE_POINTS",
    "SSE_MEDIA_TYPE",
    "SpanRecord",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Telemetry",
    "Tracer",
    "child_index",
    "children_of",
    "configure",
    "count",
    "current",
    "disable",
    "disable_telemetry",
    "enable",
    "enable_telemetry",
    "format_sse",
    "gauge_set",
    "instrumented",
    "is_enabled",
    "observe",
    "parse_prometheus",
    "parse_sse",
    "prometheus_summary",
    "quantile_from_buckets",
    "read_trace_jsonl",
    "roots",
    "self_durations",
    "snapshot_delta",
    "span",
    "summary",
    "to_prometheus",
    "walk_tree",
    "write_prometheus",
    "write_trace_jsonl",
]
