"""Command-line interface: ``linesearch``.

Subcommands:

* ``info n f`` — regime, formulas, and bounds for a parameter pair;
* ``simulate`` — run one search scenario and print the event log;
* ``ratio`` — measure the empirical competitive ratio of an algorithm;
* ``table1`` — reproduce Table 1;
* ``figure5`` — reproduce Figure 5 (``--side left|right``);
* ``diagram`` — regenerate the illustrative figures (``--figure 1..7``);
* ``lowerbound`` — play the Theorem 2 adversary game;
* ``schedule`` — inspect an ``A(n, f)`` schedule's turning points;
* ``validate`` — admissibility check for a configuration;
* ``experiment`` — run any experiment from the registry by id;
* ``export`` — write experiment data as CSV;
* ``batch`` — the batch evaluation subsystem: ``batch backends``
  lists the kernel backends usable here, ``batch ratio`` measures a
  competitive ratio through the vectorized kernels, ``batch sweep``
  evaluates a ratio profile over a geometric target grid, and
  ``batch parity`` replays a seeded grid through both the kernels and
  the event engine, gating (exit 1) on any disagreement;
* ``chaos`` — run a seeded fault-injection campaign across the fault
  taxonomy with per-scenario isolation and invariant checking, on the
  resilient executor: parallel workers (``--jobs``), watchdog timeouts
  (``--timeout``), retry budgets (``--retries``), a crash-safe
  journal (``--journal`` / ``--resume``), and full telemetry capture
  (``--telemetry-dir`` writes a JSONL span trace, a Prometheus text
  file, and a human summary);
* ``serve`` — run the long-lived search service: a threaded HTTP
  server with a bounded admission queue (explicit ``overloaded``
  shedding), per-client rate limits, per-request deadlines, a
  scenario-fingerprint result cache, graceful drain on SIGTERM, and
  crash-safe restart that resumes interrupted campaigns
  byte-identically from their journals;
* ``dashboard`` — the live campaign dashboard outside the browser:
  ``--attach URL`` follows a running ``serve`` instance (optionally
  consuming its SSE stream until idle with ``--follow``) while
  ``--telemetry-dir DIR`` replays a drained run's ``trace.jsonl`` +
  ``metrics.prom`` into the byte-identical final panel state; either
  mode can save the canonical state JSON (``--state-json``), a
  self-contained HTML page (``--html``), or the animated trajectory
  panel SVG (``--svg``);
* ``telemetry`` — summarize a telemetry artifact written by
  ``chaos --telemetry-dir``: a ``trace.jsonl`` span trace (where the
  wall-clock time went, by span) or a ``metrics.prom`` file
  (counters/gauges table plus estimated histogram quantiles);
* ``perf`` — the performance observatory: ``perf run`` times a named
  workload suite and writes a fingerprinted ``BENCH_<suite>.json``
  record, ``perf compare`` gates a candidate record against a
  baseline with noise-aware thresholds (exit 1 on regression),
  ``perf report`` pretty-prints a record, and ``perf flamegraph``
  converts a span trace into collapsed-stack text for flamegraph
  tools.

Exit codes: ``0`` success, ``1`` a chaos campaign recorded failures
(suppressed by ``--allow-failures``) or a perf comparison found a
regression, ``2`` usage or domain error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.errors import LineSearchError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="linesearch",
        description=(
            "Reproduction of 'Search on a Line with Faulty Robots' "
            "(Czyzowicz et al., PODC 2016)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="bounds and formulas for (n, f)")
    p_info.add_argument("n", type=int)
    p_info.add_argument("f", type=int)

    p_sim = sub.add_parser("simulate", help="run one search scenario")
    p_sim.add_argument("n", type=int)
    p_sim.add_argument("f", type=int)
    p_sim.add_argument("target", type=float)
    p_sim.add_argument(
        "--faults",
        choices=("adversarial", "random", "none"),
        default="adversarial",
        help="fault model (default: adversarial)",
    )
    p_sim.add_argument("--seed", type=int, default=None)

    p_ratio = sub.add_parser(
        "ratio", help="measure the empirical competitive ratio"
    )
    p_ratio.add_argument("n", type=int)
    p_ratio.add_argument("f", type=int)
    p_ratio.add_argument("--beta", type=float, default=None,
                         help="override the cone slope (ablation)")
    p_ratio.add_argument("--x-max", type=float, default=200.0)

    sub.add_parser("table1", help="reproduce Table 1")

    p_fig5 = sub.add_parser("figure5", help="reproduce Figure 5")
    p_fig5.add_argument("--side", choices=("left", "right", "both"),
                        default="both")

    p_diag = sub.add_parser(
        "diagram", help="regenerate Figure 1-4 style diagrams"
    )
    p_diag.add_argument(
        "--figure", choices=("1", "2", "3", "4", "6", "7", "all"),
        default="all",
    )
    p_diag.add_argument("--svg", type=str, default=None,
                        help="also write an SVG of figure 3 to this path")

    p_lb = sub.add_parser(
        "lowerbound", help="play the Theorem 2 adversary game"
    )
    p_lb.add_argument("n", type=int)
    p_lb.add_argument("f", type=int)
    p_lb.add_argument("--alpha", type=float, default=None)

    p_exp = sub.add_parser("experiment", help="run a registered experiment")
    p_exp.add_argument("id", nargs="?", default=None,
                       help="experiment id (omit to list)")

    p_export = sub.add_parser(
        "export", help="export experiment data as CSV"
    )
    p_export.add_argument("id", nargs="?", default=None,
                          help="experiment id (omit to list)")
    p_export.add_argument("--out", type=str, default=None,
                          help="write to this file instead of stdout")
    p_export.add_argument("--measure", action="store_true",
                          help="include simulation measurements")

    p_val = sub.add_parser(
        "validate", help="check an algorithm's admissibility"
    )
    p_val.add_argument("n", type=int)
    p_val.add_argument("f", type=int)
    p_val.add_argument("--beta", type=float, default=None)
    p_val.add_argument("--x-max", type=float, default=20.0)

    p_sched = sub.add_parser(
        "schedule", help="inspect the A(n,f) schedule's turning points"
    )
    p_sched.add_argument("n", type=int)
    p_sched.add_argument("f", type=int)
    p_sched.add_argument("--turns", type=int, default=5,
                         help="turning points shown per robot")
    p_sched.add_argument("--diagram", action="store_true",
                         help="also draw the space-time diagram")

    p_batch = sub.add_parser(
        "batch", help="batch evaluation: vectorized kernels + parity"
    )
    batch_sub = p_batch.add_subparsers(dest="batch_command", required=True)

    batch_sub.add_parser(
        "backends", help="list the kernel backends usable here"
    )

    pb_ratio = batch_sub.add_parser(
        "ratio", help="competitive ratio through the batch kernels"
    )
    pb_ratio.add_argument("n", type=int)
    pb_ratio.add_argument("f", type=int)
    pb_ratio.add_argument("--backend", choices=("pure", "numpy"),
                          default=None,
                          help="kernel backend (default: auto-select)")
    pb_ratio.add_argument("--x-max", type=float, default=200.0)

    pb_sweep = batch_sub.add_parser(
        "sweep", help="ratio profile over a geometric target grid"
    )
    pb_sweep.add_argument("n", type=int)
    pb_sweep.add_argument("f", type=int)
    pb_sweep.add_argument("--points", type=int, default=10000,
                          help="targets per sign (default: 10000)")
    pb_sweep.add_argument("--x-max", type=float, default=100.0)
    pb_sweep.add_argument("--backend", choices=("pure", "numpy"),
                          default=None,
                          help="kernel backend (default: auto-select)")

    pb_parity = batch_sub.add_parser(
        "parity", help="replay a seeded grid through batch AND the engine"
    )
    pb_parity.add_argument(
        "--pairs", nargs="+", default=None, metavar="N,F",
        help="regimes compared (default: the built-in six)",
    )
    pb_parity.add_argument("--targets", type=int, default=40,
                           help="seeded targets per regime (default: 40)")
    pb_parity.add_argument("--fault-sets", type=int, default=5,
                           help="fault assignments per target (default: 5)")
    pb_parity.add_argument("--seed", type=int, default=2016)
    pb_parity.add_argument("--x-max", type=float, default=32.0)
    pb_parity.add_argument("--backend", choices=("pure", "numpy"),
                           default=None,
                           help="kernel backend (default: auto-select)")
    pb_parity.add_argument("--report-json", type=str, default=None,
                           metavar="PATH",
                           help="write the full parity report as JSON")

    p_async = sub.add_parser(
        "async",
        help="discrete-event scheduling: CR-degradation sweeps + parity",
    )
    async_sub = p_async.add_subparsers(dest="async_command", required=True)

    pa_sweep = async_sub.add_parser(
        "sweep",
        help="competitive-ratio degradation as activation delays grow",
    )
    pa_sweep.add_argument("n", type=int)
    pa_sweep.add_argument("f", type=int)
    pa_sweep.add_argument(
        "--scheduler", choices=("ssync", "async", "adversarial"),
        default="adversarial",
        help="activation scheduler family swept over the delay knob "
             "(default: adversarial — the greedy target-aware delayer)",
    )
    pa_sweep.add_argument(
        "--delays", nargs="+", type=float, default=[0.0, 0.5, 1.0, 2.0],
        help="max-delay knob values (default: 0 0.5 1 2)",
    )
    pa_sweep.add_argument("--quantum", type=float, default=0.5,
                          help="plan time per activation burst "
                               "(default: 0.5)")
    pa_sweep.add_argument("--seed", type=int, default=0)
    pa_sweep.add_argument("--x-max", type=float, default=8.0,
                          help="largest |target| probed (default: 8)")
    pa_sweep.add_argument("--points", type=int, default=12,
                          help="targets probed, both signs "
                               "(default: 12)")
    pa_sweep.add_argument(
        "--speeds", nargs="+", type=float, default=None,
        help="per-robot speeds in (0, 1] (multi-speed fleets; "
             "default: unit speed)",
    )
    pa_sweep.add_argument("--report-json", type=str, default=None,
                          metavar="PATH",
                          help="write the full degradation report as JSON")

    pa_parity = async_sub.add_parser(
        "parity",
        help="prove the FSYNC event engine reproduces the continuous "
             "engine bit-exactly",
    )
    pa_parity.add_argument(
        "--pairs", nargs="+", default=None, metavar="N,F",
        help="regimes compared (default: the built-in six)",
    )
    pa_parity.add_argument("--targets", type=int, default=12,
                           help="seeded targets per regime (default: 12)")
    pa_parity.add_argument("--seed", type=int, default=2016)
    pa_parity.add_argument("--x-max", type=float, default=16.0)
    pa_parity.add_argument("--quantum", type=float, default=0.5,
                           help="FSYNC round length (default: 0.5)")
    pa_parity.add_argument("--report-json", type=str, default=None,
                           metavar="PATH",
                           help="write the full parity report as JSON")

    p_chaos = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign"
    )
    p_chaos.add_argument(
        "--pairs", nargs="+", default=["3,1", "4,2", "5,3"],
        metavar="N,F", help="fleet parameter pairs (default: 3,1 4,2 5,3)",
    )
    p_chaos.add_argument(
        "--targets", nargs="+", type=float,
        default=[1.0, -1.5, 2.5, -4.0, 7.0],
        help="target positions probed per pair",
    )
    p_chaos.add_argument(
        "--faults", nargs="+", default=None,
        help="fault spec strings (default: the whole taxonomy)",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="master seed for the campaign")
    p_chaos.add_argument("--method", choices=("event", "batch"),
                         default="event",
                         help="scenario evaluation path; 'batch' uses "
                              "the analytic kernels where the fault "
                              "model allows (implies the invariant "
                              "audit stays on the engine)")
    p_chaos.add_argument("--protocol", choices=("none", "confirmation"),
                         default="none",
                         help="termination protocol; 'confirmation' "
                              "requires n >= 2f+1 per pair and commits "
                              "a detection only after f+1 confirming "
                              "votes (Byzantine-tolerant)")
    p_chaos.add_argument("--mode", type=str, default="sync",
                         metavar="SPEC",
                         help="activation timing: 'sync' (default) or a "
                              "scheduler spec like "
                              "'event:adversarial:1.0' routing every "
                              "scenario through the discrete-event "
                              "engine (incompatible with "
                              "--method batch)")
    p_chaos.add_argument("--variant", type=str, default="line",
                         choices=("line", "halfline", "evacuation"),
                         help="problem variant the grid is swept over "
                              "(default: line; variant scenarios never "
                              "take the batch fast path, so "
                              "--method batch is refused)")
    p_chaos.add_argument("--no-invariants", action="store_true",
                         help="skip the runtime invariant audit")
    p_chaos.add_argument("--max-failures", type=int, default=10,
                         help="failures shown in the report")
    p_chaos.add_argument("--jobs", type=int, default=1,
                         help="worker processes (default: 1, in-process)")
    p_chaos.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-scenario wall-clock budget; overdue "
                              "scenarios are killed and recorded as "
                              "ScenarioTimeoutError failures")
    p_chaos.add_argument("--retries", type=int, default=1,
                         help="retries for failed stochastic scenarios "
                              "(default: 1)")
    p_chaos.add_argument("--journal", type=str, default=None,
                         metavar="PATH",
                         help="append every outcome to this crash-safe "
                              "JSONL journal")
    p_chaos.add_argument("--resume", action="store_true",
                         help="skip scenarios already recorded in "
                              "--journal (requires --journal)")
    p_chaos.add_argument("--report-json", type=str, default=None,
                         metavar="PATH",
                         help="also write the full CampaignReport as JSON")
    p_chaos.add_argument("--allow-failures", action="store_true",
                         help="exit 0 even when scenarios fail")
    p_chaos.add_argument("--telemetry-dir", type=str, default=None,
                         metavar="DIR",
                         help="collect spans and metrics for the whole "
                              "campaign and write trace.jsonl, "
                              "metrics.prom, and summary.txt into DIR")

    p_var = sub.add_parser(
        "variants",
        help="problem variants: half-line analytics + evacuation runs",
    )
    var_sub = p_var.add_subparsers(dest="variants_command", required=True)

    pv_sweep = var_sub.add_parser(
        "sweep",
        help="validate the half-line closed forms against simulation "
             "across a p-grid",
    )
    pv_sweep.add_argument(
        "--ps", nargs="+", type=float, default=None,
        help="detection probabilities swept (default: the built-in grid)",
    )
    pv_sweep.add_argument("--target", type=float, default=3.7,
                          help="validation target distance (default: 3.7)")
    pv_sweep.add_argument("--rtol", type=float, default=1e-12,
                          help="series summation tolerance "
                               "(default: 1e-12)")
    pv_sweep.add_argument("--report-json", type=str, default=None,
                          metavar="PATH",
                          help="write the full sweep report as JSON")

    pv_bound = var_sub.add_parser(
        "bound",
        help="closed-form half-line optima and evacuation bounds",
    )
    pv_bound.add_argument("p", type=float,
                          help="per-visit detection probability in (0, 1]")
    pv_bound.add_argument("--target", type=float, default=None,
                          help="also evaluate E[T] at this distance "
                               "under the optimal expansion ratio")
    pv_bound.add_argument("--pair", type=str, default=None, metavar="N,F",
                          help="also print the evacuation feasibility "
                               "and ratio bound for this fleet")

    pv_evac = var_sub.add_parser(
        "evacuate",
        help="run one audited commit-then-gather evacuation scenario",
    )
    pv_evac.add_argument("n", type=int)
    pv_evac.add_argument("f", type=int)
    pv_evac.add_argument("target", type=float)
    pv_evac.add_argument("--fault", type=str, default="none",
                         help="fault spec string (default: none)")
    pv_evac.add_argument("--seed", type=int, default=None)
    pv_evac.add_argument("--mode", type=str, default="sync",
                         metavar="SPEC",
                         help="activation timing: 'sync' (default) or a "
                              "scheduler spec like "
                              "'event:adversarial:1.0'")
    pv_evac.add_argument("--no-invariants", action="store_true",
                         help="skip the evacuation invariant audit")

    pv_parity = var_sub.add_parser(
        "parity",
        help="prove variant='line' dispatch reproduces the continuous "
             "engine bit-exactly",
    )
    pv_parity.add_argument(
        "--pairs", nargs="+", default=None, metavar="N,F",
        help="regimes compared (default: the built-in six)",
    )
    pv_parity.add_argument("--targets", type=int, default=8,
                           help="seeded targets per regime (default: 8)")
    pv_parity.add_argument("--seed", type=int, default=2016)
    pv_parity.add_argument("--x-max", type=float, default=16.0)
    pv_parity.add_argument("--report-json", type=str, default=None,
                           metavar="PATH",
                           help="write the full parity report as JSON")

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived search service (HTTP, crash-safe)",
    )
    p_serve.add_argument("--state-dir", required=True, metavar="DIR",
                         help="durable state directory (job manifest, "
                              "journals, reports); restart resumes "
                              "interrupted campaigns from it")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8347,
                         help="bind port; 0 picks a free port "
                              "(default: 8347)")
    p_serve.add_argument("--port-file", type=str, default=None,
                         metavar="PATH",
                         help="write the chosen port here once bound "
                              "(for scripts using --port 0)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker threads executing jobs "
                              "(default: 2)")
    p_serve.add_argument("--queue-capacity", type=int, default=16,
                         help="admission queue bound; beyond it "
                              "submissions get 'overloaded' "
                              "(default: 16)")
    p_serve.add_argument("--rate-capacity", type=float, default=None,
                         help="per-client token-bucket burst size "
                              "(default: rate limiting off)")
    p_serve.add_argument("--rate-per-second", type=float, default=10.0,
                         help="per-client token refill rate "
                              "(default: 10)")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="result-cache entries; 0 disables "
                              "(default: 4096)")
    p_serve.add_argument("--default-deadline", type=float, default=300.0,
                         help="deadline for submissions that carry "
                              "none, seconds (default: 300)")
    p_serve.add_argument("--max-deadline", type=float, default=3600.0,
                         help="ceiling on client deadlines "
                              "(default: 3600)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-scenario watchdog budget forwarded "
                              "to the executor")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="executor worker processes per campaign "
                              "(default: 1, in-process)")
    p_serve.add_argument("--method", choices=("event", "batch"),
                         default="event",
                         help="evaluation path for submissions that "
                              "don't choose (default: event)")
    p_serve.add_argument("--no-parity-check", action="store_true",
                         help="skip the startup engine-parity harness")
    p_serve.add_argument("--telemetry-dir", type=str, default=None,
                         metavar="DIR",
                         help="on drain, write trace.jsonl, "
                              "metrics.prom, and summary.txt into DIR")

    p_dash = sub.add_parser(
        "dashboard",
        help="campaign dashboard: attach to a service or replay telemetry",
    )
    dash_mode = p_dash.add_mutually_exclusive_group(required=True)
    dash_mode.add_argument("--attach", type=str, default=None, metavar="URL",
                           help="base URL of a running 'linesearch serve' "
                                "(e.g. http://127.0.0.1:8347)")
    dash_mode.add_argument("--telemetry-dir", type=str, default=None,
                           metavar="DIR",
                           help="replay mode: reconstruct the final panel "
                                "state from DIR/trace.jsonl + "
                                "DIR/metrics.prom")
    p_dash.add_argument("--follow", action="store_true",
                        help="(attach) consume the SSE stream until the "
                             "service goes idle before reading the state")
    p_dash.add_argument("--timeout", type=float, default=60.0,
                        help="attach-mode socket/stream timeout, seconds "
                             "(default: 60)")
    p_dash.add_argument("--state-json", type=str, default=None,
                        metavar="PATH",
                        help="write the canonical panel state as JSON "
                             "(the byte-identity surface CI diffs)")
    p_dash.add_argument("--html", type=str, default=None, metavar="PATH",
                        help="write a self-contained replay HTML page")
    p_dash.add_argument("--svg", type=str, default=None, metavar="PATH",
                        help="write the animated space-time trajectory "
                             "panel as standalone SVG")
    p_dash.add_argument("--top", type=int, default=10,
                        help="span rows in the terminal summary "
                             "(default: 10)")

    p_tel = sub.add_parser(
        "telemetry",
        help="summarize a telemetry trace written by chaos --telemetry-dir",
    )
    p_tel.add_argument("trace", type=str,
                       help="path to a trace.jsonl or metrics.prom file")
    p_tel.add_argument("--top", type=int, default=20,
                       help="rows shown, by total time / value (default: 20)")

    p_perf = sub.add_parser(
        "perf", help="performance observatory: suites, baselines, flamegraphs"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    pp_run = perf_sub.add_parser(
        "run", help="time a workload suite, write BENCH_<suite>.json"
    )
    pp_run.add_argument("--suite", default="quick",
                        help="suite name (default: quick; see --list)")
    pp_run.add_argument("--repeats", type=int, default=None,
                        help="timed runs per workload (default: 5)")
    pp_run.add_argument("--warmup", type=int, default=None,
                        help="untimed warmup runs per workload (default: 1)")
    pp_run.add_argument("--workload", action="append", default=None,
                        metavar="NAME",
                        help="restrict to this workload (repeatable)")
    pp_run.add_argument("--quick", action="store_true",
                        help="force the reduced parameter sets (CI smoke)")
    pp_run.add_argument("--out", type=str, default=None, metavar="PATH",
                        help="record path (default: "
                             "benchmarks/BENCH_<suite>.json)")
    pp_run.add_argument("--list", action="store_true",
                        help="list suites and workloads, run nothing")

    pp_cmp = perf_sub.add_parser(
        "compare", help="gate a candidate record against a baseline"
    )
    pp_cmp.add_argument("baseline", type=str,
                        help="baseline BENCH_*.json record")
    pp_cmp.add_argument("candidate", type=str,
                        help="candidate BENCH_*.json record")
    pp_cmp.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRACTION",
                        help="relative slowdown gate (default: 0.25 = 25%%)")
    pp_cmp.add_argument("--noise-stdevs", type=float, default=3.0,
                        help="pooled-stdev noise gate (default: 3.0)")

    pp_rep = perf_sub.add_parser(
        "report", help="pretty-print a BENCH_*.json record"
    )
    pp_rep.add_argument("record", type=str, help="a BENCH_*.json record")

    pp_flame = perf_sub.add_parser(
        "flamegraph",
        help="collapsed-stack text (flamegraph input) from a span trace",
    )
    pp_flame.add_argument("trace", type=str,
                          help="path to a trace.jsonl file")
    pp_flame.add_argument("--out", type=str, default=None, metavar="PATH",
                          help="write here instead of stdout")
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------

def _cmd_info(args: argparse.Namespace) -> str:
    from repro.core import (
        SearchParameters,
        competitive_ratio,
        lower_bound,
        optimal_beta,
        optimal_expansion_factor,
    )

    params = SearchParameters(args.n, args.f)
    lines = [params.describe()]
    lines.append(f"competitive ratio achieved: {competitive_ratio(args.n, args.f):.6g}")
    lines.append(f"lower bound on any algorithm: {lower_bound(args.n, args.f):.6g}")
    if params.is_proportional:
        lines.append(f"optimal cone slope beta*: {optimal_beta(args.n, args.f):.6g}")
        lines.append(
            "expansion factor: "
            f"{optimal_expansion_factor(args.n, args.f):.6g}"
        )
    return "\n".join(lines)


def _make_algorithm(n: int, f: int, beta: Optional[float] = None):
    from repro.baselines import TwoGroupAlgorithm
    from repro.core import SearchParameters
    from repro.schedule import CustomBetaAlgorithm, ProportionalAlgorithm

    params = SearchParameters(n, f)
    if params.is_proportional:
        if beta is not None:
            return CustomBetaAlgorithm(n, f, beta)
        return ProportionalAlgorithm(n, f)
    if beta is not None:
        raise LineSearchError(
            "--beta only applies in the proportional regime f < n < 2f+2"
        )
    return TwoGroupAlgorithm(n, f)


def _cmd_simulate(args: argparse.Namespace) -> str:
    from repro.robots import AdversarialFaults, Fleet, RandomFaults
    from repro.simulation import SearchSimulation

    algorithm = _make_algorithm(args.n, args.f)
    if args.faults == "adversarial":
        model = AdversarialFaults(args.f)
    elif args.faults == "random":
        model = RandomFaults(args.f, seed=args.seed)
    else:
        model = AdversarialFaults(0)
    sim = SearchSimulation(
        Fleet.from_algorithm(algorithm), args.target, fault_model=model
    )
    outcome = sim.run()
    return f"{algorithm.describe()}\n{outcome.describe()}"


def _cmd_ratio(args: argparse.Namespace) -> str:
    from repro.simulation import measure_competitive_ratio

    algorithm = _make_algorithm(args.n, args.f, beta=args.beta)
    estimate = measure_competitive_ratio(algorithm, x_max=args.x_max)
    theory = algorithm.theoretical_competitive_ratio()
    lines = [algorithm.describe(), estimate.describe()]
    if theory is not None:
        lines.append(f"agreement with closed form: {estimate.matches(theory)}")
    return "\n".join(lines)


def _cmd_table1(_: argparse.Namespace) -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1(measure=True))


def _cmd_figure5(args: argparse.Namespace) -> str:
    from repro.experiments.registry import run_experiment

    parts: List[str] = []
    if args.side in ("left", "both"):
        parts.append(run_experiment("figure5_left"))
    if args.side in ("right", "both"):
        parts.append(run_experiment("figure5_right"))
    return "\n\n".join(parts)


def _cmd_diagram(args: argparse.Namespace) -> str:
    from repro.experiments.diagrams import (
        all_diagrams,
        figure1_diagram,
        figure2_diagram,
        figure3_diagram,
        figure4_diagram,
        figure6_diagram,
        figure7_diagram,
    )

    if args.svg:
        from repro.schedule import ProportionalAlgorithm
        from repro.viz import save_fleet_svg

        algorithm = ProportionalAlgorithm(3, 1)
        save_fleet_svg(
            args.svg,
            algorithm.build(),
            until=algorithm.beta * algorithm.expansion_factor**2,
            cone=algorithm.schedule.cone,
        )
    pick = {
        "1": figure1_diagram,
        "2": figure2_diagram,
        "3": figure3_diagram,
        "4": figure4_diagram,
        "6": figure6_diagram,
        "7": figure7_diagram,
    }
    if args.figure == "all":
        return "\n\n".join(all_diagrams().values())
    return pick[args.figure]()


def _cmd_lowerbound(args: argparse.Namespace) -> str:
    from repro.lowerbound import TheoremTwoGame
    from repro.robots import Fleet

    algorithm = _make_algorithm(args.n, args.f)
    game = TheoremTwoGame(
        Fleet.from_algorithm(algorithm), f=args.f, alpha=args.alpha
    )
    witness = game.play()
    return (
        f"adversary enforces alpha = {game.alpha:.6g} against "
        f"{algorithm.name}\nwitness: {witness.describe()}"
    )


def _cmd_experiment(args: argparse.Namespace) -> str:
    from repro.experiments.registry import experiment_ids, run_experiment

    if args.id is None:
        return "available experiments:\n  " + "\n  ".join(experiment_ids())
    return run_experiment(args.id)


def _cmd_export(args: argparse.Namespace) -> str:
    from repro.experiments.export import export_csv, exportable_ids

    if args.id is None:
        return "exportable experiments:\n  " + "\n  ".join(exportable_ids())
    csv_text = export_csv(args.id, measure=args.measure)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(csv_text + "\n")
        return f"wrote {args.out} ({len(csv_text.splitlines()) - 1} rows)"
    return csv_text


def _cmd_validate(args: argparse.Namespace) -> str:
    from repro.schedule.validation import validate_algorithm

    algorithm = _make_algorithm(args.n, args.f, beta=args.beta)
    report = validate_algorithm(algorithm, x_max=args.x_max)
    return report.describe()


def _cmd_schedule(args: argparse.Namespace) -> str:
    from repro.experiments.report import render_table
    from repro.schedule import ProportionalAlgorithm

    algorithm = ProportionalAlgorithm(args.n, args.f)
    robots = algorithm.build()
    headers = ["robot", "first cone turn"] + [
        f"turn {i + 1}" for i in range(args.turns)
    ]
    body = []
    for index, robot in enumerate(robots):
        row = [f"a_{index}", robot.first_cone_turn]
        row.extend(robot.turning_position(i + 1) for i in range(args.turns))
        body.append(row)
    lines = [
        algorithm.describe(),
        f"beta* = {algorithm.beta:.6g}, kappa = "
        f"{algorithm.expansion_factor:.6g}, r = "
        f"{algorithm.proportionality_ratio:.6g}",
        render_table(headers, body, precision=4),
    ]
    if args.diagram:
        from repro.viz import render_fleet_diagram

        until = algorithm.beta * algorithm.expansion_factor**2
        lines.append(
            render_fleet_diagram(
                robots, until=until, cone=algorithm.schedule.cone
            )
        )
    return "\n".join(lines)


def _parse_pairs(raw_pairs):
    pairs = []
    for raw in raw_pairs:
        try:
            n_text, f_text = raw.split(",")
            pairs.append((int(n_text), int(f_text)))
        except ValueError:
            raise LineSearchError(
                f"--pairs entries must look like N,F — got {raw!r}"
            ) from None
    return pairs


def _cmd_batch(args: argparse.Namespace):
    from repro.batch import BatchEvaluator, available_backends

    if args.batch_command == "backends":
        lines = [f"available batch backends: {', '.join(available_backends())}"]
        lines.append(
            "auto-selection prefers numpy when the 'scientific' extra "
            "is installed"
        )
        return "\n".join(lines)

    if args.batch_command == "ratio":
        from repro.schedule import algorithm_for

        algorithm = algorithm_for(args.n, args.f)
        evaluator = BatchEvaluator(algorithm, backend=args.backend)
        estimate = evaluator.estimate(x_max=args.x_max)
        theory = algorithm.theoretical_competitive_ratio()
        lines = [
            algorithm.describe(),
            f"backend: {evaluator.backend.name}",
            estimate.describe(),
        ]
        if theory is not None:
            lines.append(
                f"agreement with closed form: {estimate.matches(theory)}"
            )
        return "\n".join(lines)

    if args.batch_command == "sweep":
        from repro.robots import Fleet
        from repro.schedule import algorithm_for
        from repro.simulation.sweep import geometric_grid, target_sweep

        if args.points < 2:
            raise LineSearchError("--points must be >= 2")
        algorithm = algorithm_for(args.n, args.f)
        fleet = Fleet.from_algorithm(algorithm)
        grid = geometric_grid(1.0, args.x_max, args.points)
        targets = grid + [-x for x in grid]
        # Route through the sweep's batch path; backend override via a
        # dedicated evaluator when requested.
        if args.backend is None:
            profile = target_sweep(
                fleet, args.f, targets, method="batch"
            )
        else:
            evaluator = BatchEvaluator(
                fleet, fault_budget=args.f, backend=args.backend
            )
            profile = evaluator.ratio_profile(targets)
        worst = profile.supremum
        return "\n".join(
            [
                algorithm.describe(),
                f"{len(targets)} targets in [1, {args.x_max:g}] "
                "(both signs, geometric)",
                f"sup K(x) = {worst.ratio:.9g} at x = {worst.x:.9g}",
            ]
        )

    if args.batch_command == "parity":
        from repro.batch import run_parity_harness
        from repro.batch.parity import DEFAULT_PAIRS

        pairs = (
            _parse_pairs(args.pairs) if args.pairs else list(DEFAULT_PAIRS)
        )
        report = run_parity_harness(
            pairs=pairs,
            targets_per_pair=args.targets,
            fault_sets_per_target=args.fault_sets,
            seed=args.seed,
            backend=args.backend,
            x_max=args.x_max,
        )
        lines = [report.describe()]
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            lines.append(f"wrote {args.report_json}")
        return "\n".join(lines), 0 if report.passed else 1

    raise LineSearchError(f"unknown batch subcommand {args.batch_command!r}")


def _cmd_async(args: argparse.Namespace):
    if args.async_command == "sweep":
        from repro.async_sched import run_degradation_sweep

        report = run_degradation_sweep(
            args.n,
            args.f,
            delays=tuple(args.delays),
            scheduler=args.scheduler,
            quantum=args.quantum,
            seed=args.seed,
            x_max=args.x_max,
            points=args.points,
            speeds=args.speeds,
        )
        lines = [report.describe()]
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            lines.append(f"wrote {args.report_json}")
        return "\n".join(lines)

    if args.async_command == "parity":
        from repro.async_sched import run_async_parity
        from repro.async_sched.parity import DEFAULT_PAIRS

        pairs = (
            _parse_pairs(args.pairs) if args.pairs else list(DEFAULT_PAIRS)
        )
        report = run_async_parity(
            pairs=pairs,
            targets_per_pair=args.targets,
            seed=args.seed,
            x_max=args.x_max,
            quantum=args.quantum,
        )
        lines = [report.describe()]
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            lines.append(f"wrote {args.report_json}")
        return "\n".join(lines), 0 if report.passed else 1

    raise LineSearchError(f"unknown async subcommand {args.async_command!r}")


def _cmd_variants(args: argparse.Namespace):
    if args.variants_command == "sweep":
        from repro.variants.halfline import DEFAULT_P_GRID, run_halfline_sweep

        report = run_halfline_sweep(
            ps=tuple(args.ps) if args.ps else DEFAULT_P_GRID,
            target=args.target,
            rtol=args.rtol,
        )
        lines = [report.describe()]
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            lines.append(f"wrote {args.report_json}")
        return "\n".join(lines), 0 if report.passed else 1

    if args.variants_command == "bound":
        from repro.core.evacuation import (
            evacuation_feasible,
            evacuation_ratio_bound,
        )
        from repro.core.halfline import (
            halfline_expected_time,
            optimal_halfline_gamma,
            optimal_halfline_ratio,
        )

        p = args.p
        gamma = optimal_halfline_gamma(p)
        ratio = optimal_halfline_ratio(p)
        lines = [
            f"half-line search at p={p:g}:",
            f"  optimal expansion ratio gamma* = {gamma:.12g}",
            f"  worst-case expected ratio R*   = {ratio:.12g}",
        ]
        if args.target is not None:
            expected = halfline_expected_time(args.target, gamma, p)
            lines.append(
                f"  E[T({args.target:g})] at gamma*    = {expected:.12g}"
            )
        if args.pair is not None:
            (n, f), = _parse_pairs([args.pair])
            feasible = evacuation_feasible(n, f)
            lines.append(f"evacuation with A({n},{f}):")
            lines.append(
                f"  feasible (n >= 2f+1): {'yes' if feasible else 'no'}"
            )
            lines.append(
                f"  evacuation ratio bound: "
                f"{evacuation_ratio_bound(n, f):.6g}"
            )
        return "\n".join(lines)

    if args.variants_command == "evacuate":
        from repro.robustness.campaign import ScenarioSpec, build_scenario
        from repro.variants import variant_for

        spec = ScenarioSpec(
            n=args.n,
            f=args.f,
            target=args.target,
            fault=args.fault,
            seed=args.seed,
            mode=args.mode,
            variant="evacuation",
        )
        outcome = variant_for("evacuation").run(
            build_scenario(spec),
            check_invariants=not args.no_invariants,
        )
        return outcome.describe()

    if args.variants_command == "parity":
        from repro.variants.parity import DEFAULT_PAIRS, run_variant_parity

        pairs = (
            _parse_pairs(args.pairs) if args.pairs else list(DEFAULT_PAIRS)
        )
        report = run_variant_parity(
            pairs=pairs,
            targets_per_pair=args.targets,
            seed=args.seed,
            x_max=args.x_max,
        )
        lines = [report.describe()]
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            lines.append(f"wrote {args.report_json}")
        return "\n".join(lines), 0 if report.passed else 1

    raise LineSearchError(
        f"unknown variants subcommand {args.variants_command!r}"
    )


def _cmd_chaos(args: argparse.Namespace):
    from repro.robustness import (
        FAULT_KINDS,
        CampaignExecutor,
        RetryPolicy,
        chaos_scenarios,
    )

    if args.resume and not args.journal:
        raise LineSearchError("--resume requires --journal PATH")
    if args.retries < 0:
        raise LineSearchError("--retries must be >= 0")
    if args.mode != "sync" and args.method == "batch":
        raise LineSearchError(
            "--method batch cannot run scheduled-time scenarios; "
            "drop --mode or use --method event"
        )
    if args.variant != "line" and args.method == "batch":
        raise LineSearchError(
            "--method batch cannot run problem-variant scenarios; "
            "drop --variant or use --method event"
        )
    pairs = _parse_pairs(args.pairs)
    scenarios = chaos_scenarios(
        pairs,
        args.targets,
        faults=tuple(args.faults) if args.faults else FAULT_KINDS,
        seed=args.seed,
        method=args.method,
        protocol=args.protocol,
        mode=args.mode,
        variant=args.variant,
    )
    executor = CampaignExecutor(
        jobs=args.jobs,
        timeout=args.timeout,
        retry_policy=RetryPolicy(max_attempts=1 + args.retries),
        journal_path=args.journal,
        resume=args.resume,
    )
    telemetry = previous = None
    if args.telemetry_dir:
        from repro.observability import Telemetry, configure

        _prepare_telemetry_dir(args.telemetry_dir)
        telemetry = Telemetry(
            metadata={"command": "chaos", "seed": args.seed}
        )
        previous = configure(telemetry)
    from repro.errors import CampaignInterrupted

    interrupted = None
    try:
        report = executor.execute(
            scenarios, check_invariants=not args.no_invariants
        )
    except CampaignInterrupted as exc:
        # SIGTERM (an orchestrator draining us): the journal is already
        # checkpointed; report what completed and exit cleanly so the
        # next invocation can --resume.
        interrupted = exc
        report = exc.report
    finally:
        if telemetry is not None:
            from repro.observability import configure

            configure(previous)
    protocol_note = (
        f", protocol {args.protocol}" if args.protocol != "none" else ""
    )
    mode_note = f", mode {args.mode}" if args.mode != "sync" else ""
    variant_note = (
        f", variant {args.variant}" if args.variant != "line" else ""
    )
    lines = [
        f"{len(scenarios)} scenarios "
        f"(seed {args.seed}{protocol_note}{mode_note}{variant_note})"
    ]
    if args.journal:
        verb = "resumed from" if args.resume else "journaled to"
        lines.append(f"{verb} {args.journal}")
    if interrupted is not None:
        lines.append(f"interrupted: {interrupted}")
    lines.append(report.describe(max_failures=args.max_failures))
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        lines.append(f"wrote {args.report_json}")
    if telemetry is not None:
        lines.append(_write_telemetry(args.telemetry_dir, telemetry))
    if interrupted is not None:
        # A journaled interrupt is a clean checkpoint (resume continues
        # it); an unjournaled one lost work and must not look like
        # success to automation.
        code = 0 if args.journal else 1
    else:
        code = 0 if (report.failed == 0 or args.allow_failures) else 1
    return "\n".join(lines), code


def _prepare_telemetry_dir(directory: str) -> None:
    """Create ``directory`` (nested paths included) before the campaign
    runs, turning unwritable/obstructed paths into a clean usage error
    instead of a traceback after minutes of completed work."""
    import os

    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise LineSearchError(
            f"cannot create --telemetry-dir {directory!r}: {exc}"
        ) from None
    if not os.access(directory, os.W_OK):
        raise LineSearchError(
            f"--telemetry-dir {directory!r} is not writable"
        )


def _write_telemetry(directory: str, telemetry) -> str:
    """Write the campaign's trace, Prometheus file, and summary to
    ``directory``; returns a one-line confirmation."""
    import os

    from repro.observability import (
        summary,
        write_prometheus,
        write_trace_jsonl,
    )

    _prepare_telemetry_dir(directory)
    trace_path = os.path.join(directory, "trace.jsonl")
    prom_path = os.path.join(directory, "metrics.prom")
    summary_path = os.path.join(directory, "summary.txt")
    try:
        span_count = write_trace_jsonl(trace_path, telemetry)
        write_prometheus(prom_path, telemetry)
        with open(summary_path, "w", encoding="utf-8") as handle:
            handle.write(
                summary(
                    telemetry.tracer.records(),
                    metadata=telemetry.metadata,
                    metrics=telemetry.metrics,
                )
                + "\n"
            )
    except OSError as exc:
        raise LineSearchError(
            f"cannot write telemetry into {directory!r}: {exc}"
        ) from None
    return (
        f"telemetry: {span_count} spans -> {trace_path}, "
        f"metrics -> {prom_path}, summary -> {summary_path}"
    )


def _cmd_serve(args: argparse.Namespace):
    import os

    from repro.service.server import LineSearchService, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        rate_capacity=args.rate_capacity,
        rate_per_second=args.rate_per_second,
        cache_size=args.cache_size,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        scenario_timeout=args.timeout,
        executor_jobs=args.jobs,
        default_method=args.method,
        parity_check=not args.no_parity_check,
    )
    telemetry = previous = None
    if args.telemetry_dir:
        from repro.observability import Telemetry, configure

        _prepare_telemetry_dir(args.telemetry_dir)
        telemetry = Telemetry(
            metadata={"command": "serve", "state_dir": args.state_dir}
        )
        previous = configure(telemetry)
    try:
        service = LineSearchService(config)
        service.start()
        if args.port_file:
            tmp = args.port_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(f"{service.port}\n")
            os.replace(tmp, args.port_file)
        print(
            f"linesearch service listening on {service.address} "
            f"(state: {config.state_dir})",
            flush=True,
        )
        code = service.serve_forever()
    finally:
        if telemetry is not None:
            from repro.observability import configure

            configure(previous)
    lines = [f"drained; state preserved in {config.state_dir}"]
    if telemetry is not None:
        lines.append(_write_telemetry(args.telemetry_dir, telemetry))
    return "\n".join(lines), code


def _cmd_dashboard(args: argparse.Namespace) -> str:
    import json as json_module

    from repro.dashboard import render_dashboard_html, replay_state

    lines: List[str] = []
    if args.attach is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.attach, timeout=args.timeout)
        if args.follow:
            frames = 0
            for event in client.dashboard_stream(
                until_idle=True, timeout=args.timeout
            ):
                frames += 1
                if event["event"] == "done":
                    dropped = event["data"].get("dropped", 0)
                    lines.append(
                        f"stream closed after {frames} frame(s)"
                        + (f", {dropped} dropped" if dropped else "")
                    )
        state_dict = client.dashboard_state()
        # The client-side canonical dump: byte-identical to
        # DashboardState.to_json() on the server.
        state_json = (
            json_module.dumps(state_dict, sort_keys=True, indent=2) + "\n"
        )
        from repro.dashboard.state import DashboardState

        state = DashboardState(
            metrics=state_dict["metrics"],
            progress=state_dict["progress"],
            ratio_profiles=state_dict["ratio_profiles"],
            span_table=state_dict["span_table"],
            collapsed=state_dict["collapsed"],
        )
        lines.insert(0, f"attached to {client.base_url}")
    else:
        state = replay_state(args.telemetry_dir)
        state_dict = state.to_dict()
        state_json = state.to_json()
        lines.append(f"replayed {args.telemetry_dir}")
    lines.append(state.describe(top=args.top))
    if args.state_json:
        with open(args.state_json, "w", encoding="utf-8") as handle:
            handle.write(state_json)
        lines.append(f"wrote {args.state_json}")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_dashboard_html(state=state_dict))
        lines.append(f"wrote {args.html}")
    if args.svg:
        from repro.dashboard import demo_trajectory_svg

        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(demo_trajectory_svg() + "\n")
        lines.append(f"wrote {args.svg}")
    return "\n".join(lines)


def _cmd_telemetry(args: argparse.Namespace) -> str:
    import os

    from repro.errors import InvalidParameterError
    from repro.observability import (
        prometheus_summary,
        read_trace_jsonl,
        summary,
    )

    if not os.path.exists(args.trace):
        raise InvalidParameterError(f"no trace file at {args.trace!r}")
    with open(args.trace, "r", encoding="utf-8") as handle:
        head = handle.read(1 << 20)
    # Sniff the artifact kind: traces open with a JSON header object,
    # Prometheus text opens with a # comment (or a bare sample line).
    if not head.lstrip().startswith("{"):
        with open(args.trace, "r", encoding="utf-8") as handle:
            return prometheus_summary(handle.read(), top=args.top)
    metadata, spans = read_trace_jsonl(args.trace)
    if not spans:
        return f"trace {args.trace} holds no spans"
    return summary(spans, top=args.top, metadata=metadata)


def _cmd_perf(args: argparse.Namespace):
    from repro.perf import (
        compare_reports,
        load_suite_report,
        profile_spans,
        run_suite,
        suite_names,
        workload_names,
        write_suite_report,
    )

    if args.perf_command == "run":
        from repro.perf.suite import (
            DEFAULT_REPEATS,
            DEFAULT_WARMUP,
            SUITES,
        )

        if args.list:
            lines = ["suites:"]
            for name in suite_names():
                size, members = SUITES[name]
                lines.append(f"  {name} ({size}): {', '.join(members)}")
            lines.append("workloads: " + ", ".join(workload_names()))
            return "\n".join(lines)
        report = run_suite(
            args.suite,
            repeats=(
                DEFAULT_REPEATS if args.repeats is None else args.repeats
            ),
            warmup=DEFAULT_WARMUP if args.warmup is None else args.warmup,
            only=args.workload,
            quick=args.quick,
        )
        path = write_suite_report(report, args.out)
        lines = []
        for name in sorted(report["workloads"]):
            seconds = report["workloads"][name]["seconds"]
            lines.append(
                f"{name:>20}: median {seconds['median']:.6f}s "
                f"(min {seconds['min']:.6f}s, "
                f"stdev {seconds['stdev']:.2g}s)"
            )
        for name, reason in sorted(report.get("skipped", {}).items()):
            lines.append(f"{name:>20}: skipped ({reason})")
        lines.append(
            f"wrote {path} ({len(report['workloads'])} workload(s), "
            f"suite {report['suite']!r}, size {report['size']!r})"
        )
        return "\n".join(lines)

    if args.perf_command == "compare":
        baseline = load_suite_report(args.baseline)
        candidate = load_suite_report(args.candidate)
        report = compare_reports(
            baseline,
            candidate,
            max_regression=args.max_regression,
            noise_stdevs=args.noise_stdevs,
        )
        return report.describe(), 0 if report.passed else 1

    if args.perf_command == "report":
        record = load_suite_report(args.record)
        fingerprint = record.get("fingerprint", {})
        lines = [
            f"suite {record['suite']!r} (size {record.get('size')!r}, "
            f"{record.get('repeats')} repeats, "
            f"{record.get('warmup')} warmup)",
            "fingerprint: " + ", ".join(
                f"{k}={fingerprint[k]}" for k in sorted(fingerprint)
            ),
        ]
        from repro.experiments.report import render_table

        rows = []
        for name in sorted(record.get("workloads", {})):
            entry = record["workloads"][name]
            seconds = entry["seconds"]
            rows.append([
                name, seconds["min"], seconds["median"], seconds["mean"],
                seconds["stdev"],
            ])
        lines.append(render_table(
            ["workload", "min s", "median s", "mean s", "stdev s"],
            rows,
            precision=6,
        ))
        for name, reason in sorted(record.get("skipped", {}).items()):
            lines.append(f"skipped {name}: {reason}")
        return "\n".join(lines)

    if args.perf_command == "flamegraph":
        from repro.observability import read_trace_jsonl
        from repro.perf import collapsed_stacks, write_collapsed

        metadata, spans = read_trace_jsonl(args.trace)
        if not spans:
            return f"trace {args.trace} holds no spans"
        if args.out:
            count = write_collapsed(args.out, spans)
            hottest = profile_spans(spans).stats[0]
            return (
                f"wrote {count} collapsed stack(s) to {args.out} "
                f"(hottest span: {hottest.name}, "
                f"{hottest.self_time:.6f}s self)"
            )
        return "\n".join(collapsed_stacks(spans))

    raise LineSearchError(f"unknown perf subcommand {args.perf_command!r}")


_DISPATCH = {
    "info": _cmd_info,
    "simulate": _cmd_simulate,
    "ratio": _cmd_ratio,
    "table1": _cmd_table1,
    "figure5": _cmd_figure5,
    "diagram": _cmd_diagram,
    "lowerbound": _cmd_lowerbound,
    "experiment": _cmd_experiment,
    "export": _cmd_export,
    "validate": _cmd_validate,
    "schedule": _cmd_schedule,
    "batch": _cmd_batch,
    "async": _cmd_async,
    "variants": _cmd_variants,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "dashboard": _cmd_dashboard,
    "telemetry": _cmd_telemetry,
    "perf": _cmd_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Subcommands return either a string (exit code 0) or a
    ``(string, code)`` pair — ``chaos`` uses the latter so CI can gate
    on campaign failures.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = _DISPATCH[args.command](args)
    except LineSearchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    code = 0
    if isinstance(output, tuple):
        output, code = output
    try:
        print(output)
    except BrokenPipeError:
        # downstream pipe (e.g. `head`) closed early — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return code
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
