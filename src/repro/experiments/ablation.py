"""Experiment ``ablation``: design-choice validation.

Two ablations called out in DESIGN.md:

* **beta sweep** — the paper optimizes the cone slope analytically
  (``beta* = (4f+4)/n - 1``).  We sweep ``beta`` over ``(1, 3)`` and
  confirm, both in closed form and by simulation, that ``beta*`` is the
  minimizer and how sharply the ratio degrades off-optimum.
* **baseline comparison** — the proportional schedule versus group
  doubling (ratio 9), split doubling, delayed doubling, and — where
  legal — the two-group straight-line algorithm (ratio 1).  This
  reproduces the paper's motivating comparisons in Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.group_doubling import GroupDoubling
from repro.baselines.naive import DelayedGroupDoubling, SplitDoubling
from repro.baselines.two_group import TwoGroupAlgorithm
from repro.core.optimal import optimal_beta
from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.schedule.base import SearchAlgorithm
from repro.simulation.adversary import CompetitiveRatioEstimator
from repro.simulation.sweep import SweepPoint, beta_sweep

__all__ = [
    "BaselineRow",
    "run_beta_ablation",
    "render_beta_ablation",
    "run_baseline_comparison",
    "render_baseline_comparison",
]


def run_beta_ablation(
    n: int,
    f: int,
    points: int = 11,
    measure: bool = False,
    x_max: float = 60.0,
) -> Tuple[float, List[SweepPoint]]:
    """Sweep the cone slope around the optimum.

    Returns ``(beta_star, sweep_points)`` where the sweep covers
    ``(1, 3)`` on an even grid plus ``beta_star`` itself.

    Examples:
        >>> beta_star, pts = run_beta_ablation(3, 1, points=5)
        >>> round(beta_star, 4)
        1.6667
        >>> best = min(pts, key=lambda p: p.theoretical)
        >>> abs(best.parameter - beta_star) < 1e-9
        True
    """
    if points < 3:
        raise InvalidParameterError(f"points must be >= 3, got {points}")
    SearchParameters(n, f).require_proportional()
    beta_star = optimal_beta(n, f)
    lo, hi = 1.05, 2.95
    grid = [lo + (hi - lo) * i / (points - 1) for i in range(points)]
    grid.append(beta_star)
    grid = sorted(set(grid))
    return beta_star, beta_sweep(n, f, grid, measure=measure, x_max=x_max)


def render_beta_ablation(
    n: int, f: int, beta_star: float, points: List[SweepPoint]
) -> str:
    """Text rendering of the beta ablation."""
    headers = ["beta", "CR (Lemma 5)", "CR (measured)", "is beta*"]
    body = [
        [
            p.parameter,
            p.theoretical,
            p.measured,
            abs(p.parameter - beta_star) < 1e-9,
        ]
        for p in points
    ]
    return render_table(
        headers, body, precision=6,
        title=(
            f"Beta ablation for (n={n}, f={f}) — the analytic optimum "
            f"beta*={beta_star:.6g} minimizes the ratio"
        ),
    )


@dataclass(frozen=True)
class BaselineRow:
    """Competitive ratio of one algorithm at one ``(n, f)``."""

    algorithm: str
    n: int
    f: int
    theoretical: Optional[float]
    measured: float


def _algorithms_for(n: int, f: int) -> List[SearchAlgorithm]:
    params = SearchParameters(n, f)
    algorithms: List[SearchAlgorithm] = []
    if params.is_proportional:
        algorithms.append(ProportionalAlgorithm(n, f))
    if params.n >= 2 * params.f + 2:
        algorithms.append(TwoGroupAlgorithm(n, f))
    algorithms.append(GroupDoubling(n, f))
    algorithms.append(SplitDoubling(n, f))
    algorithms.append(DelayedGroupDoubling(n, f, delay=1.0))
    return algorithms


def run_baseline_comparison(
    pairs: Sequence[Tuple[int, int]] = ((3, 1), (4, 2), (5, 2), (4, 1)),
    x_max: float = 200.0,
) -> List[BaselineRow]:
    """Measure every applicable algorithm at each ``(n, f)`` pair.

    Examples:
        >>> rows = run_baseline_comparison(pairs=[(3, 1)], x_max=60.0)
        >>> prop = [r for r in rows if r.algorithm.startswith("A(")][0]
        >>> group = [r for r in rows if "GroupDoubling" in r.algorithm][0]
        >>> prop.measured < group.measured   # the paper's headline win
        True
    """
    if not pairs:
        raise InvalidParameterError("pairs must be non-empty")
    rows: List[BaselineRow] = []
    for n, f in pairs:
        for algorithm in _algorithms_for(n, f):
            estimator = CompetitiveRatioEstimator(
                Fleet.from_algorithm(algorithm), fault_budget=f, x_max=x_max
            )
            measured = estimator.estimate().value
            rows.append(
                BaselineRow(
                    algorithm=algorithm.name,
                    n=n,
                    f=f,
                    theoretical=algorithm.theoretical_competitive_ratio(),
                    measured=measured,
                )
            )
    return rows


def render_baseline_comparison(rows: List[BaselineRow]) -> str:
    """Text rendering of the baseline comparison."""
    headers = ["algorithm", "n", "f", "CR (theory)", "CR (measured)"]
    body = [
        [r.algorithm, r.n, r.f, r.theoretical, r.measured] for r in rows
    ]
    return render_table(
        headers, body, precision=4,
        title="Baseline comparison — worst-case competitive ratios",
    )
