"""Reproduction experiments: one module per paper table/figure.

See DESIGN.md's per-experiment index.  Each module exposes ``run_*``
(structured rows) and ``render_*`` (text report) functions;
:mod:`repro.experiments.registry` maps DESIGN.md experiment ids to
runnable reports.
"""

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.report import format_value, render_csv, render_table

__all__ = [
    "EXPERIMENTS",
    "experiment_ids",
    "format_value",
    "render_csv",
    "render_table",
    "run_experiment",
]
