"""Experiment ``lowerbound_game``: Theorem 2 executed as a game.

Plays the constructive adversary against this library's own algorithm
``A(n, f)`` and against the baselines, at the strongest enforceable
``alpha`` (the Theorem 2 root).  Every run must produce a witness target
and fault set whose achieved ratio is at least ``alpha`` — demonstrating
the lower bound holds against arbitrary trajectories, not only in the
proof's abstract model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.group_doubling import GroupDoubling
from repro.baselines.naive import SplitDoubling
from repro.core.lower_bound import theorem2_lower_bound
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table
from repro.lowerbound.game import TheoremTwoGame
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm

__all__ = ["GameRow", "run_lowerbound_game", "render_lowerbound_game"]


@dataclass(frozen=True)
class GameRow:
    """Outcome of one adversary game."""

    algorithm: str
    n: int
    f: int
    alpha: float
    witness_target: float
    witness_faults: Tuple[int, ...]
    achieved_ratio: float
    ladder_level: int

    @property
    def bound_enforced(self) -> bool:
        """Whether the witness achieved at least ``alpha``."""
        return self.achieved_ratio >= self.alpha - 1e-9


def run_lowerbound_game(
    pairs: Sequence[Tuple[int, int]] = ((2, 1), (3, 1), (4, 2), (5, 2), (5, 3)),
) -> List[GameRow]:
    """Play the adversary against ``A(n, f)`` and baselines at each pair.

    Examples:
        >>> rows = run_lowerbound_game(pairs=[(3, 1)])
        >>> all(r.bound_enforced for r in rows)
        True
    """
    if not pairs:
        raise InvalidParameterError("pairs must be non-empty")
    rows: List[GameRow] = []
    for n, f in pairs:
        algorithms = [
            ProportionalAlgorithm(n, f),
            GroupDoubling(n, f),
            SplitDoubling(n, f),
        ]
        alpha = theorem2_lower_bound(n) - 1e-9
        for algorithm in algorithms:
            game = TheoremTwoGame(
                Fleet.from_algorithm(algorithm), f=f, alpha=alpha
            )
            witness = game.play()
            rows.append(
                GameRow(
                    algorithm=algorithm.name,
                    n=n,
                    f=f,
                    alpha=alpha,
                    witness_target=witness.target,
                    witness_faults=tuple(sorted(witness.faulty_robots)),
                    achieved_ratio=witness.ratio,
                    ladder_level=witness.ladder_level,
                )
            )
    return rows


def render_lowerbound_game(rows: List[GameRow]) -> str:
    """Text rendering of the adversary-game experiment."""
    headers = [
        "algorithm",
        "n",
        "f",
        "alpha enforced",
        "witness target",
        "faults",
        "achieved ratio",
        "level",
        "bound held",
    ]
    body = [
        [
            r.algorithm,
            r.n,
            r.f,
            r.alpha,
            r.witness_target,
            ",".join(map(str, r.witness_faults)) or "none",
            r.achieved_ratio,
            r.ladder_level,
            r.bound_enforced,
        ]
        for r in rows
    ]
    return render_table(
        headers, body, precision=4,
        title=(
            "Theorem 2 adversary game — every algorithm is forced to "
            "ratio >= alpha"
        ),
    )
