"""Plain-text report rendering shared by all experiments.

Experiments return structured rows; this module turns them into aligned
text tables (for the CLI and EXPERIMENTS.md) and CSV (for downstream
plotting).  No third-party dependencies.
"""

from __future__ import annotations

import io
import math
from typing import Iterable, List, Optional, Sequence

from repro.errors import ExperimentError

__all__ = ["format_value", "render_table", "render_csv"]


def format_value(value, precision: int = 4) -> str:
    """Format one cell: floats rounded, None as '-', inf as 'inf'.

    Examples:
        >>> format_value(3.14159, 3)
        '3.142'
        >>> format_value(None)
        '-'
        >>> format_value(42)
        '42'
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    Examples:
        >>> print(render_table(["n", "cr"], [[3, 5.233], [5, 4.434]]))
        n | cr
        --+-------
        3 | 5.2330
        5 | 4.4340
    """
    formatted: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n"
    )
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in formatted:
        out.write(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n"
        )
    return out.getvalue().rstrip("\n")


def render_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as CSV (comma-separated, no quoting of numerics).

    Examples:
        >>> render_csv(["a", "b"], [[1, 2.5]])
        'a,b\\n1,2.5'
    """
    lines = [",".join(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
        lines.append(",".join("" if c is None else str(c) for c in row))
    return "\n".join(lines)
