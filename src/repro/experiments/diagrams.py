"""Experiment ``figures1to4``: regenerate the paper's illustrative figures.

The four illustrations of Sections 2-3, recreated from the actual library
objects (not hand-drawn):

* Figure 1 — a general zig-zag strategy;
* Figure 2 — a zig-zag defined by the cone ``C_beta``;
* Figure 3 — the proportional schedule for ``n`` robots in ``C_beta``;
* Figure 4 — three robots, one faulty: the "tower" region where at least
  two robots have passed.

Each renderer returns ASCII art; SVG versions are available through
:mod:`repro.viz.svg`.
"""

from __future__ import annotations

from typing import Dict

from repro.geometry.cone import Cone
from repro.schedule.proportional_schedule import ProportionalSchedule
from repro.trajectory.cone_zigzag import ConeZigZag
from repro.trajectory.zigzag import ZigZagTrajectory
from repro.viz.ascii_art import render_fleet_diagram

__all__ = [
    "figure1_diagram",
    "figure2_diagram",
    "figure3_diagram",
    "figure4_diagram",
    "figure6_diagram",
    "figure7_diagram",
    "all_diagrams",
]


def figure1_diagram(width: int = 72, height: int = 20) -> str:
    """A general zig-zag strategy with four turning points (Figure 1)."""
    strategy = ZigZagTrajectory([1.5, -1.0, 3.0, -4.0])
    until = 1.5 + 2.5 + 4.0 + 7.0  # arrival time at the last turn
    art = render_fleet_diagram([strategy], until=until, width=width,
                               height=height)
    return "Figure 1 — a general zig-zag strategy\n" + art


def figure2_diagram(
    beta: float = 2.0, width: int = 72, height: int = 22
) -> str:
    """A zig-zag defined by cone ``C_beta`` and a boundary point (Figure 2)."""
    cone = Cone(beta)
    robot = ConeZigZag(cone, anchor=1.0)
    until = robot.turning_time(3) * 1.05
    art = render_fleet_diagram(
        [robot], until=until, width=width, height=height, cone=cone
    )
    return (
        f"Figure 2 — zig-zag defined by cone C_beta (beta={beta:g}; "
        "dots mark the boundary)\n" + art
    )


def figure3_diagram(
    n: int = 4, beta: float = 2.0, width: int = 72, height: int = 24
) -> str:
    """The proportional schedule for ``n`` robots in ``C_beta`` (Figure 3)."""
    schedule = ProportionalSchedule(n=n, beta=beta)
    robots = schedule.build()
    until = beta * schedule.anchors[-1] * schedule.expansion_factor
    art = render_fleet_diagram(
        robots, until=until, width=width, height=height, cone=schedule.cone
    )
    return (
        f"Figure 3 — proportional schedule for n={n} robots "
        f"(beta={beta:g}, r={schedule.ratio:.4g})\n" + art
    )


def figure4_diagram(width: int = 72, height: int = 24) -> str:
    """Three robots, one faulty (the A(3,1) schedule; Figure 4)."""
    from repro.schedule.algorithm import ProportionalAlgorithm

    algorithm = ProportionalAlgorithm(3, 1)
    robots = algorithm.build()
    until = algorithm.beta * algorithm.expansion_factor ** 2 * 1.05
    art = render_fleet_diagram(
        robots,
        until=until,
        width=width,
        height=height,
        cone=algorithm.schedule.cone,
    )
    return (
        "Figure 4 — searching by three robots, one of which is faulty "
        f"(A(3,1), beta={algorithm.beta:.4g})\n" + art
    )


def figure6_diagram(x: float = 3.0, width: int = 72, height: int = 18) -> str:
    """Positive and negative trajectories for ``x`` (Figure 6).

    A positive trajectory visits 1, x, -1, -x in that order (solid robot
    0); a negative one visits -1, -x, 1, x (robot 1).
    """
    positive = ZigZagTrajectory([x + 0.5, -(x + 0.5)])
    negative = ZigZagTrajectory([-(x + 0.5), x + 0.5])
    until = 2 * (x + 0.5) + (x + 0.5)
    art = render_fleet_diagram(
        [positive, negative], until=until, width=width, height=height
    )
    return (
        f"Figure 6 — positive (robot 0) and negative (robot 1) "
        f"trajectories for x={x:g}\n" + art
    )


def figure7_diagram(n: int = 4, width: int = 72) -> str:
    """The adversary's target ladder on the line (Figure 7).

    Marks ``±1`` and ``±x_i`` for the Theorem 2 ladder at the strongest
    enforceable ``alpha`` for ``n`` robots.
    """
    from repro.core.lower_bound import theorem2_lower_bound
    from repro.lowerbound.ladder import TargetLadder

    alpha = theorem2_lower_bound(n) - 1e-9
    ladder = TargetLadder(n=n, alpha=alpha)
    xs = ladder.magnitudes()
    extent = xs[0] * 1.1
    line = [" "] * width
    labels = [" "] * width

    def column(value: float) -> int:
        return min(
            int((value + extent) / (2 * extent) * (width - 1) + 0.5),
            width - 1,
        )

    for col in range(width):
        line[col] = "-"
    for i, magnitude in enumerate(xs):
        for sign in (1, -1):
            col = column(sign * magnitude)
            line[col] = "x"
            labels[col] = str(i)
    for sign in (1, -1):
        col = column(sign * 1.0)
        line[col] = "1"
    line[column(0.0)] = "0"
    return (
        f"Figure 7 — adversary target ladder for n={n} at "
        f"alpha={alpha:.4f}\n"
        f"x_i = 2^(i+1) / ((alpha-1)^i (alpha-3)): "
        + ", ".join(f"x_{i}={v:.3f}" for i, v in enumerate(xs))
        + "\n" + "".join(line) + "\n" + "".join(labels)
    )


def all_diagrams() -> Dict[str, str]:
    """All illustrative diagrams, keyed by figure id."""
    return {
        "figure1": figure1_diagram(),
        "figure2": figure2_diagram(),
        "figure3": figure3_diagram(),
        "figure4": figure4_diagram(),
        "figure6": figure6_diagram(),
        "figure7": figure7_diagram(),
    }
