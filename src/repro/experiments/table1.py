"""Experiment ``table1``: reproduce Table 1 of the paper.

For each ``(n, f)`` pair the paper lists:

* the competitive ratio of ``A(n, f)`` (or 1 in the trivial regime),
* the best lower bound on any algorithm's ratio,
* the expansion factor of ``A(n, f)``.

We recompute all three from the closed forms, *measure* the competitive
ratio of the actual simulated trajectories, and diff everything against
the numbers printed in the paper.  The measured column is the strongest
check: it exercises cone geometry, Definition 4 start-up, backward
extension, visit order statistics, and the Lemma 3 supremum search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.two_group import TwoGroupAlgorithm
from repro.core.competitive_ratio import competitive_ratio
from repro.core.lower_bound import lower_bound
from repro.core.optimal import optimal_expansion_factor
from repro.core.parameters import SearchParameters
from repro.experiments.report import render_table
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.simulation.adversary import CompetitiveRatioEstimator

__all__ = ["PAPER_TABLE1", "Table1Row", "run_table1", "render_table1"]

#: The rows of Table 1 exactly as printed in the paper:
#: (n, f, competitive ratio of A(n,f), lower bound, expansion factor).
#: ``None`` expansion factor marks the trivial-regime rows the paper
#: leaves blank.
PAPER_TABLE1: Tuple[Tuple[int, int, float, float, Optional[float]], ...] = (
    (2, 1, 9.0, 9.0, 2.0),
    (3, 1, 5.24, 3.76, 4.0),
    (3, 2, 9.0, 9.0, 2.0),
    (4, 1, 1.0, 1.0, None),
    (4, 2, 6.2, 3.649, 3.0),
    (4, 3, 9.0, 9.0, 2.0),
    (5, 1, 1.0, 1.0, None),
    (5, 2, 4.43, 3.57, 6.0),
    (5, 3, 6.76, 3.57, 2.67),
    (5, 4, 9.0, 9.0, 2.0),
    (11, 5, 3.73, 3.345, 12.0),
    (41, 20, 3.24, 3.12, 42.0),
)


@dataclass(frozen=True)
class Table1Row:
    """One reproduced row of Table 1.

    ``paper_*`` fields carry the printed values; ``computed_*`` the
    closed forms; ``measured_cr`` the simulation measurement (``None``
    when measurement was skipped).
    """

    n: int
    f: int
    paper_cr: float
    paper_lower_bound: float
    paper_expansion: Optional[float]
    computed_cr: float
    computed_lower_bound: float
    computed_expansion: Optional[float]
    measured_cr: Optional[float]

    @property
    def cr_error(self) -> float:
        """|computed - paper| for the competitive ratio."""
        return abs(self.computed_cr - self.paper_cr)

    @property
    def measurement_gap(self) -> Optional[float]:
        """|measured - computed| competitive ratio, when measured."""
        if self.measured_cr is None:
            return None
        return abs(self.measured_cr - self.computed_cr)


def _measure(n: int, f: int, x_max: float) -> Optional[float]:
    """Measure the empirical CR of this library's algorithm for (n, f)."""
    params = SearchParameters(n, f)
    if params.is_proportional:
        algorithm = ProportionalAlgorithm(n, f)
    else:
        algorithm = TwoGroupAlgorithm(n, f)
    estimator = CompetitiveRatioEstimator(
        Fleet.from_algorithm(algorithm), fault_budget=f, x_max=x_max
    )
    return estimator.estimate().value


def run_table1(
    measure: bool = True,
    x_max: float = 100.0,
    rows: Optional[Tuple[Tuple[int, int, float, float, Optional[float]], ...]] = None,
) -> List[Table1Row]:
    """Recompute (and optionally measure) every row of Table 1.

    Examples:
        >>> rows = run_table1(measure=False)
        >>> round(rows[1].computed_cr, 2)
        5.23
        >>> all(r.cr_error < 0.01 for r in rows)
        True
    """
    source = rows if rows is not None else PAPER_TABLE1
    result: List[Table1Row] = []
    for n, f, paper_cr, paper_lb, paper_exp in source:
        params = SearchParameters(n, f)
        computed_cr = competitive_ratio(n, f)
        computed_lb = lower_bound(n, f)
        computed_exp = (
            optimal_expansion_factor(n, f) if params.is_proportional else None
        )
        measured = _measure(n, f, x_max) if measure else None
        result.append(
            Table1Row(
                n=n,
                f=f,
                paper_cr=paper_cr,
                paper_lower_bound=paper_lb,
                paper_expansion=paper_exp,
                computed_cr=computed_cr,
                computed_lower_bound=computed_lb,
                computed_expansion=computed_exp,
                measured_cr=measured,
            )
        )
    return result


def render_table1(rows: List[Table1Row]) -> str:
    """Render the reproduced Table 1 as text."""
    headers = [
        "n",
        "f",
        "CR A(n,f) [paper]",
        "CR [computed]",
        "CR [measured]",
        "lower bd [paper]",
        "lower bd [computed]",
        "kappa [paper]",
        "kappa [computed]",
    ]
    body = [
        [
            r.n,
            r.f,
            r.paper_cr,
            r.computed_cr,
            r.measured_cr,
            r.paper_lower_bound,
            r.computed_lower_bound,
            r.paper_expansion,
            r.computed_expansion,
        ]
        for r in rows
    ]
    table = render_table(
        headers, body, precision=4,
        title="Table 1 — upper and lower bounds for specific n and f",
    )
    worst = max((r.cr_error for r in rows), default=math.nan)
    gaps = [g for r in rows if (g := r.measurement_gap) is not None]
    note = f"\nmax |computed - paper| CR error: {worst:.4f}"
    if gaps:
        note += f"; max |measured - computed| gap: {max(gaps):.2e}"
    return table + note
