"""Extension experiments: measuring the paper-adjacent model variants.

Four studies, one per module in :mod:`repro.extensions`:

* ``ext_scaled_copies`` — the alternative schedule construction: matches
  Theorem 1 asymptotically but is strictly worse at the minimum
  distance (why Definition 4's start-up matters);
* ``ext_turn_cost`` — ratio under a per-reversal cost ``c``: grows
  linearly in ``c`` with the worst case pinned at ``|x| = 1``;
* ``ext_bounded`` — known distance bound ``D``: naive truncation leaves
  the ratio unchanged (negative result; see module docs);
* ``ext_multi_speed`` — heterogeneous speeds: a single slow robot of
  speed ``s`` inflates the ratio to ``CR / s`` whenever it is pivotal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.competitive_ratio import algorithm_competitive_ratio
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table
from repro.extensions.bounded import BoundedDistanceAlgorithm
from repro.extensions.multi_speed import MultiSpeedProportionalAlgorithm
from repro.extensions.scaled_copies import ScaledCopiesAlgorithm
from repro.extensions.turn_cost import TurnCostProportionalAlgorithm
from repro.robots.fleet import Fleet
from repro.simulation.adversary import CompetitiveRatioEstimator

__all__ = [
    "ScaledCopiesRow",
    "run_scaled_copies",
    "render_scaled_copies",
    "run_turn_cost",
    "render_turn_cost",
    "run_bounded",
    "render_bounded",
    "run_multi_speed",
    "render_multi_speed",
    "run_evacuation",
    "render_evacuation",
]


def _measure(algorithm, f: int, min_distance: float, x_max: float) -> float:
    estimator = CompetitiveRatioEstimator(
        Fleet.from_algorithm(algorithm),
        fault_budget=f,
        min_distance=min_distance,
        x_max=x_max,
    )
    return estimator.estimate().value


# ----------------------------------------------------------------------
# scaled copies
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScaledCopiesRow:
    """Near- and far-field ratio of the scaled-copies construction."""

    n: int
    f: int
    theorem1: float
    near_field: float   # sup over 1 <= |x| <= 100
    far_field: float    # sup over 100 <= |x| <= 5000

    @property
    def startup_penalty(self) -> float:
        """How much worse the construction is near the origin."""
        return self.near_field - self.theorem1


def run_scaled_copies(
    pairs: Sequence[Tuple[int, int]] = ((3, 1), (5, 2), (5, 3)),
) -> List[ScaledCopiesRow]:
    """Measure the scaled-copies construction near and far."""
    if not pairs:
        raise InvalidParameterError("pairs must be non-empty")
    rows: List[ScaledCopiesRow] = []
    for n, f in pairs:
        alg = ScaledCopiesAlgorithm(n, f)
        rows.append(
            ScaledCopiesRow(
                n=n,
                f=f,
                theorem1=algorithm_competitive_ratio(n, f),
                near_field=_measure(alg, f, min_distance=1.0, x_max=100.0),
                far_field=_measure(
                    alg, f, min_distance=100.0, x_max=5000.0
                ),
            )
        )
    return rows


def render_scaled_copies(rows: List[ScaledCopiesRow]) -> str:
    """Text rendering of the scaled-copies study."""
    headers = ["n", "f", "Theorem 1 (A(n,f))", "scaled copies near |x|<=100",
               "scaled copies far |x|>=100", "start-up penalty"]
    body = [
        [r.n, r.f, r.theorem1, r.near_field, r.far_field, r.startup_penalty]
        for r in rows
    ]
    return render_table(
        headers, body, precision=4,
        title=(
            "Scaled-copies construction — matches Theorem 1 only "
            "asymptotically; Definition 4's cone start-up removes the "
            "near-origin penalty"
        ),
    )


# ----------------------------------------------------------------------
# turn cost
# ----------------------------------------------------------------------

def run_turn_cost(
    n: int = 3,
    f: int = 1,
    costs: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    x_max: float = 200.0,
) -> List[Tuple[float, float]]:
    """Measured ratio of ``A(n, f)`` as the per-turn cost sweeps.

    Returns ``(cost, measured_ratio)`` pairs.
    """
    if not costs:
        raise InvalidParameterError("costs must be non-empty")
    out: List[Tuple[float, float]] = []
    for cost in costs:
        alg = TurnCostProportionalAlgorithm(n, f, cost=cost)
        out.append((cost, _measure(alg, f, 1.0, x_max)))
    return out


def render_turn_cost(n: int, f: int, rows: List[Tuple[float, float]]) -> str:
    """Text rendering of the turn-cost sweep."""
    base = algorithm_competitive_ratio(n, f)
    headers = ["turn cost c", "CR measured", "CR - CR(0)"]
    body = [[c, v, v - base] for c, v in rows]
    return render_table(
        headers, body, precision=4,
        title=(
            f"Turn-cost sweep for A({n},{f}) — the ratio grows linearly "
            "in c (worst case pinned at |x| = 1)"
        ),
    )


# ----------------------------------------------------------------------
# bounded distance
# ----------------------------------------------------------------------

def run_bounded(
    n: int = 3,
    f: int = 1,
    radii: Sequence[float] = (2.0, 5.0, 20.0, 100.0),
) -> List[Tuple[float, float]]:
    """Measured ratio of the truncated schedule for each radius ``D``."""
    if not radii:
        raise InvalidParameterError("radii must be non-empty")
    out: List[Tuple[float, float]] = []
    for radius in radii:
        alg = BoundedDistanceAlgorithm(n, f, radius=radius)
        out.append((radius, _measure(alg, f, 1.0, radius)))
    return out


def render_bounded(n: int, f: int, rows: List[Tuple[float, float]]) -> str:
    """Text rendering of the bounded-distance study."""
    base = algorithm_competitive_ratio(n, f)
    headers = ["radius D", "CR measured", "unbounded Theorem 1"]
    body = [[d, v, base] for d, v in rows]
    return render_table(
        headers, body, precision=4,
        title=(
            f"Known-distance-bound study for A({n},{f}) — naive "
            "truncation does not improve the ratio (negative result)"
        ),
    )


# ----------------------------------------------------------------------
# evacuation (group arrival, reference [14])
# ----------------------------------------------------------------------

def run_evacuation(
    targets: Sequence[float] = (2.0, 5.0, 20.0, -3.0, -12.0),
) -> List[Tuple[str, float, float, float, float]]:
    """Detection vs evacuation ratios across algorithms and targets.

    Returns rows ``(algorithm, target, detection_ratio,
    evacuation_ratio, assembly_overhead)``.
    """
    from repro.baselines.group_doubling import GroupDoubling
    from repro.baselines.two_group import TwoGroupAlgorithm
    from repro.extensions.evacuation import evacuation_time
    from repro.robots.faults import AdversarialFaults
    from repro.schedule.algorithm import ProportionalAlgorithm

    if not targets:
        raise InvalidParameterError("targets must be non-empty")
    configurations = [
        (ProportionalAlgorithm(3, 1), AdversarialFaults(1)),
        (GroupDoubling(3, 1), AdversarialFaults(1)),
        (TwoGroupAlgorithm(4, 1), AdversarialFaults(1)),
    ]
    rows: List[Tuple[str, float, float, float, float]] = []
    for algorithm, model in configurations:
        fleet = Fleet.from_algorithm(algorithm)
        for x in targets:
            outcome = evacuation_time(fleet, x, model)
            rows.append(
                (
                    algorithm.name,
                    x,
                    outcome.detection_time / abs(x),
                    outcome.evacuation_ratio,
                    outcome.assembly_overhead,
                )
            )
    return rows


def render_evacuation(
    rows: List[Tuple[str, float, float, float, float]]
) -> str:
    """Text rendering of the evacuation study."""
    headers = [
        "algorithm", "target", "detection ratio", "evacuation ratio",
        "assembly overhead",
    ]
    return render_table(
        headers, [list(r) for r in rows], precision=4,
        title=(
            "Evacuation (last-arrival) study — the [14] group-search "
            "objective under faults"
        ),
    )


# ----------------------------------------------------------------------
# multi speed
# ----------------------------------------------------------------------

def run_multi_speed(
    n: int = 3,
    f: int = 1,
    slow_speeds: Sequence[float] = (1.0, 0.9, 0.75, 0.5),
    slow_index: int = 1,
    x_max: float = 100.0,
) -> List[Tuple[float, float, Optional[float]]]:
    """One slow robot: measured ratio vs the ``CR / s`` prediction.

    Returns ``(speed, measured, predicted)`` tuples; ``predicted`` is
    ``CR(n,f) / s``, the law observed when the slow robot is pivotal.
    """
    if not slow_speeds:
        raise InvalidParameterError("slow_speeds must be non-empty")
    if not 0 <= slow_index < n:
        raise InvalidParameterError(
            f"slow_index must be in 0..{n - 1}, got {slow_index}"
        )
    base = algorithm_competitive_ratio(n, f)
    out: List[Tuple[float, float, Optional[float]]] = []
    for s in slow_speeds:
        speeds = [1.0] * n
        speeds[slow_index] = s
        alg = MultiSpeedProportionalAlgorithm(n, f, speeds=speeds)
        out.append((s, _measure(alg, f, 1.0, x_max), base / s))
    return out


def render_multi_speed(
    n: int, f: int, rows: List[Tuple[float, float, Optional[float]]]
) -> str:
    """Text rendering of the multi-speed study."""
    headers = ["slow robot speed s", "CR measured", "CR(n,f) / s"]
    return render_table(
        headers, [list(r) for r in rows], precision=4,
        title=(
            f"Heterogeneous speeds for A({n},{f}) — one slow robot "
            "inflates the ratio to CR / s while it stays pivotal"
        ),
    )
