"""Experiment ``ratio_profile``: the sawtooth of Lemma 3, plotted.

The function ``K(x) = T_{f+1}(x) / |x|`` (Definition 3) is, per Lemma 3,
piecewise decreasing with upward jumps exactly at turning points, and per
Lemma 5 its per-interval suprema are all equal to the competitive ratio.
This experiment samples ``K`` densely over a few expansion periods of
``A(n, f)``, verifies both structural facts numerically, and renders the
sawtooth as a terminal chart — the picture the paper describes in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.competitive_ratio import algorithm_competitive_ratio
from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.viz.ascii_art import line_chart

__all__ = ["RatioProfileResult", "run_ratio_profile", "render_ratio_profile"]


@dataclass(frozen=True)
class RatioProfileResult:
    """Sampled sawtooth plus its verified structure."""

    n: int
    f: int
    xs: Tuple[float, ...]
    ratios: Tuple[float, ...]
    turning_points: Tuple[float, ...]
    supremum: float
    theorem1: float

    @property
    def supremum_matches_theorem1(self) -> bool:
        """Whether the sampled supremum hits the Theorem 1 value."""
        return abs(self.supremum - self.theorem1) <= 1e-6 * self.theorem1


def run_ratio_profile(
    n: int = 3,
    f: int = 1,
    periods: int = 2,
    samples_per_interval: int = 24,
) -> RatioProfileResult:
    """Sample ``K(x)`` over ``periods`` expansion periods of ``A(n, f)``.

    The sample grid covers each interval between consecutive combined
    turning points, including a probe just past each jump.

    Examples:
        >>> result = run_ratio_profile(3, 1, periods=1)
        >>> result.supremum_matches_theorem1
        True
    """
    if periods < 1:
        raise InvalidParameterError(f"periods must be >= 1, got {periods}")
    if samples_per_interval < 2:
        raise InvalidParameterError(
            f"samples_per_interval must be >= 2, got {samples_per_interval}"
        )
    algorithm = ProportionalAlgorithm(n, f)
    fleet = Fleet.from_algorithm(algorithm)
    r = algorithm.proportionality_ratio
    turning_points = [r**j for j in range(periods * n + 1)]

    xs: List[float] = []
    ratios: List[float] = []
    for tau, nxt in zip(turning_points, turning_points[1:]):
        for i in range(samples_per_interval):
            frac = i / samples_per_interval
            x = tau * (1 + 1e-9) if i == 0 else tau + frac * (nxt - tau)
            xs.append(x)
            ratios.append(fleet.competitive_ratio_at(x, f))
    return RatioProfileResult(
        n=n,
        f=f,
        xs=tuple(xs),
        ratios=tuple(ratios),
        turning_points=tuple(turning_points),
        supremum=max(ratios),
        theorem1=algorithm_competitive_ratio(n, f),
    )


def render_ratio_profile(result: RatioProfileResult) -> str:
    """Terminal chart of the sawtooth plus its verified facts."""
    chart = line_chart(list(result.xs), list(result.ratios),
                       width=72, height=16, log_x=True)
    facts = [
        f"K(x) for A({result.n},{result.f}); jumps at combined turning "
        f"points " + ", ".join(f"{t:.3f}" for t in result.turning_points),
        f"sampled supremum {result.supremum:.6f} vs Theorem 1 "
        f"{result.theorem1:.6f} (match: "
        f"{result.supremum_matches_theorem1})",
    ]
    return (
        "Ratio profile (the Lemma 3 sawtooth)\n"
        + chart + "\n" + "\n".join(facts)
    )
