"""Experiment ``asymptotics``: Corollary 1 and Corollary 2 envelopes.

Checks, over a wide range of ``n``, that:

* the exact ``n = 2f + 1`` competitive ratio stays below the Corollary 1
  upper envelope ``3 + 4 ln n / n + O(1)/n``;
* the Theorem 2 lower bound stays above the Corollary 2 witness
  ``3 + 2 ln n / n - 2 ln ln n / n``;
* upper and lower bounds bracket a shrinking gap of order ``ln n / n``,
  demonstrating the paper's headline claim that ``A(2f+1, f)`` is
  asymptotically optimal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.asymptotics import corollary1_upper, corollary2_lower, odd_critical_cr
from repro.core.lower_bound import theorem2_lower_bound
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table

__all__ = ["AsymptoticsRow", "run_asymptotics", "render_asymptotics"]

#: Default n values swept (odd, so A(n, (n-1)/2) exists).
DEFAULT_NS: Sequence[int] = (3, 5, 7, 11, 21, 41, 101, 201, 501, 1001, 10001)


@dataclass(frozen=True)
class AsymptoticsRow:
    """Bounds at one fleet size ``n`` (``n = 2f + 1`` family)."""

    n: int
    upper_exact: float        # Theorem 1 ratio of A(n, (n-1)/2)
    upper_envelope: float     # Corollary 1: 3 + 4 ln n / n + C/n
    lower_exact: float        # Theorem 2 root
    lower_envelope: float     # Corollary 2: 3 + 2 ln n/n - 2 ln ln n/n

    @property
    def gap(self) -> float:
        """Upper minus lower exact bounds."""
        return self.upper_exact - self.lower_exact

    @property
    def normalized_gap(self) -> float:
        """Gap in units of ``ln n / n`` — bounded by ~2 asymptotically."""
        return self.gap * self.n / math.log(self.n)


def run_asymptotics(ns: Sequence[int] = DEFAULT_NS) -> List[AsymptoticsRow]:
    """Evaluate all four curves over a sweep of fleet sizes.

    Examples:
        >>> rows = run_asymptotics([11, 101])
        >>> all(r.lower_exact <= r.upper_exact for r in rows)
        True
        >>> rows[1].gap < rows[0].gap
        True
    """
    if not ns:
        raise InvalidParameterError("ns must be non-empty")
    rows: List[AsymptoticsRow] = []
    for n in ns:
        if n < 3:
            raise InvalidParameterError(f"need n >= 3, got {n}")
        rows.append(
            AsymptoticsRow(
                n=n,
                upper_exact=odd_critical_cr(n),
                upper_envelope=corollary1_upper(n),
                lower_exact=theorem2_lower_bound(n),
                lower_envelope=corollary2_lower(n),
            )
        )
    return rows


def render_asymptotics(rows: List[AsymptoticsRow]) -> str:
    """Text rendering of the asymptotics experiment."""
    headers = [
        "n",
        "CR A(2f+1,f)",
        "Cor.1 envelope",
        "Thm.2 bound",
        "Cor.2 envelope",
        "gap",
        "gap * n/ln n",
    ]
    body = [
        [
            r.n,
            r.upper_exact,
            r.upper_envelope,
            r.lower_exact,
            r.lower_envelope,
            r.gap,
            r.normalized_gap,
        ]
        for r in rows
    ]
    return render_table(
        headers, body, precision=6,
        title=(
            "Asymptotic optimality at n = 2f+1 — upper/lower bounds "
            "bracket 3 with a Theta(ln n / n) gap"
        ),
    )
