"""Experiment ``tower``: the Figure 4 detection region, computed and drawn.

Figure 4 highlights the "tower-like shape" of points ``(x, t)`` already
seen by at least two of the three A(3,1) robots — the region where a
target would have been detected under one fault.  This experiment
computes the exact region via :mod:`repro.analysis.coverage`, renders it
shaded under the robot trajectories, and reports the boundary profile.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.coverage import coverage_interval, tower_profile
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.viz.ascii_art import SpaceTimeCanvas

__all__ = ["run_tower", "render_tower", "tower_diagram"]

_ROBOT_MARKS = "0123456789"


def run_tower(
    n: int = 3,
    f: int = 1,
    time_points: int = 10,
    until: float = 28.0,
) -> List[Tuple[float, float, float, float]]:
    """The tower boundary of ``A(n, f)`` at evenly spaced times.

    Returns rows ``(time, left, right, width)`` for coverage level
    ``k = f + 1`` (the detection region).

    Examples:
        >>> rows = run_tower(3, 1, time_points=4, until=8.0)
        >>> len(rows)
        4
        >>> rows[0][3] <= rows[-1][3]   # the tower widens over time
        True
    """
    if time_points < 2:
        raise InvalidParameterError(
            f"time_points must be >= 2, got {time_points}"
        )
    if until <= 0:
        raise InvalidParameterError(f"until must be positive, got {until}")
    fleet = Fleet.from_algorithm(ProportionalAlgorithm(n, f))
    times = [until * (i + 1) / time_points for i in range(time_points)]
    profile = tower_profile(fleet, f + 1, times)
    return [(c.time, c.left, c.right, c.width) for c in profile]


def render_tower(rows: List[Tuple[float, float, float, float]]) -> str:
    """Boundary table of the detection region."""
    headers = ["time", "left frontier", "right frontier", "width"]
    return render_table(
        headers, [list(r) for r in rows], precision=4,
        title=(
            "Detection region (the Figure 4 tower): points already "
            "visited by f+1 robots"
        ),
    )


def tower_diagram(
    n: int = 3,
    f: int = 1,
    until: float = 28.0,
    width: int = 72,
    height: int = 24,
) -> str:
    """Figure 4 with the tower shaded: trajectories over the detection
    region (``:`` marks covered space-time cells).

    Examples:
        >>> art = tower_diagram(until=10.0, width=40, height=10)
        >>> ":" in art
        True
    """
    if until <= 0:
        raise InvalidParameterError(f"until must be positive, got {until}")
    algorithm = ProportionalAlgorithm(n, f)
    fleet = Fleet.from_algorithm(algorithm)
    robots = algorithm.build()
    x_extent = max(t.max_excursion_until(until) for t in robots) * 1.05
    canvas = SpaceTimeCanvas(width, height, (-x_extent, x_extent), (0, until))
    # shade the tower row by row (coverage is an interval per time)
    for row in range(height):
        t = until * row / (height - 1)
        cov = coverage_interval(fleet, f + 1, t)
        if cov.width <= 0:
            continue
        for col in range(width):
            x = -x_extent + 2 * x_extent * col / (width - 1)
            if cov.contains(x):
                canvas.plot(x, t, ":")
    canvas.draw_origin_axis()
    for index, robot in enumerate(fleet.trajectories):
        canvas.draw_trajectory(robot, until, _ROBOT_MARKS[index % 10])
    header = (
        f"A({n},{f}) with the detection region shaded ':' — the tower of "
        "Figure 4\n"
        f"x in [{-x_extent:.3g}, {x_extent:.3g}], t in [0, {until:g}] "
        "(time flows downward)"
    )
    return header + "\n" + canvas.render()
