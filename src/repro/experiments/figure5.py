"""Experiment ``figure5``: reproduce both plots of Figure 5.

* **Left**: the competitive ratio of the proportional schedule for
  ``n = 2f + 1`` robots as a function of ``n``, i.e.
  ``(2 + 2/n)^(1 + 1/n) (2/n)^(-1/n) + 1`` for ``n = 3 .. 20``.  For odd
  ``n`` this is exactly the Theorem 1 value of ``A(n, (n-1)/2)``, and we
  additionally *measure* the simulated fleet at those points.
* **Right**: the asymptotic competitive ratio as a function of the
  robots-per-fault ratio ``a = n/f in (1, 2)``:
  ``(4/a)^(2/a) (4/a - 2)^(1 - 2/a) + 1``.  We additionally compute the
  finite-``n`` Theorem 1 value along sequences with ``n/f -> a`` to show
  the convergence the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.asymptotics import asymptotic_cr, odd_critical_cr
from repro.core.competitive_ratio import algorithm_competitive_ratio
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.simulation.adversary import CompetitiveRatioEstimator

__all__ = [
    "ConvergencePoint",
    "figure5_right_convergence",
    "Figure5LeftPoint",
    "Figure5RightPoint",
    "figure5_left",
    "figure5_right",
    "render_figure5_left",
    "render_figure5_right",
]


@dataclass(frozen=True)
class Figure5LeftPoint:
    """One point of the left plot (``n = 2f + 1`` family)."""

    n: int
    formula_value: float
    theorem1_value: Optional[float]  # only defined at odd n
    measured_value: Optional[float]


@dataclass(frozen=True)
class Figure5RightPoint:
    """One point of the right plot (fault-fraction family)."""

    a: float
    asymptotic_value: float
    finite_n_value: Optional[float]
    finite_n: Optional[int]


def figure5_left(
    n_min: int = 3,
    n_max: int = 20,
    measure: bool = False,
    x_max: float = 100.0,
) -> List[Figure5LeftPoint]:
    """The left plot's series, optionally with simulation measurements.

    Examples:
        >>> pts = figure5_left()
        >>> len(pts)
        18
        >>> round(pts[0].formula_value, 3)   # n = 3
        5.233
        >>> pts[-1].formula_value < pts[0].formula_value   # decreasing
        True
    """
    if n_min < 2 or n_max < n_min:
        raise InvalidParameterError(
            f"need 2 <= n_min <= n_max, got [{n_min}, {n_max}]"
        )
    points: List[Figure5LeftPoint] = []
    for n in range(n_min, n_max + 1):
        formula = odd_critical_cr(n)
        theorem1 = None
        measured = None
        if n % 2 == 1:
            f = (n - 1) // 2
            theorem1 = algorithm_competitive_ratio(n, f)
            if measure:
                algorithm = ProportionalAlgorithm(n, f)
                estimator = CompetitiveRatioEstimator(
                    Fleet.from_algorithm(algorithm), f, x_max=x_max
                )
                measured = estimator.estimate().value
        points.append(
            Figure5LeftPoint(
                n=n,
                formula_value=formula,
                theorem1_value=theorem1,
                measured_value=measured,
            )
        )
    return points


def figure5_right(
    grid_points: int = 21,
    finite_f: Optional[int] = 40,
) -> List[Figure5RightPoint]:
    """The right plot's series over ``a in [1, 2]``.

    For each grid value of ``a`` (other than the endpoints, where the
    finite pair may leave the proportional regime), also evaluates the
    finite-``n`` Theorem 1 ratio at ``(n, f) = (round(a * finite_f),
    finite_f)`` to exhibit convergence.

    Examples:
        >>> pts = figure5_right(grid_points=5)
        >>> [round(p.a, 2) for p in pts]
        [1.0, 1.25, 1.5, 1.75, 2.0]
        >>> pts[0].asymptotic_value
        9.0
        >>> round(pts[-1].asymptotic_value, 6)
        3.0
    """
    if grid_points < 2:
        raise InvalidParameterError(
            f"grid_points must be >= 2, got {grid_points}"
        )
    points: List[Figure5RightPoint] = []
    for i in range(grid_points):
        a = 1.0 + i / (grid_points - 1)
        asymptotic = asymptotic_cr(a)
        finite_value = None
        finite_n = None
        if finite_f is not None:
            n = round(a * finite_f)
            f = finite_f
            if f < n < 2 * f + 2:
                finite_n = n
                finite_value = algorithm_competitive_ratio(n, f)
        points.append(
            Figure5RightPoint(
                a=a,
                asymptotic_value=asymptotic,
                finite_n_value=finite_value,
                finite_n=finite_n,
            )
        )
    return points


@dataclass(frozen=True)
class ConvergencePoint:
    """Finite-size error of the Figure 5 (right) limit at one ``f``."""

    f: int
    n: int
    finite_value: float
    asymptotic_value: float

    @property
    def error(self) -> float:
        """``finite - asymptotic`` (always positive: extra 4/n terms)."""
        return self.finite_value - self.asymptotic_value


def figure5_right_convergence(
    a: float = 1.5,
    f_values: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
) -> List[ConvergencePoint]:
    """Quantify the convergence rate behind Figure 5 (right).

    The paper states the finite-``n`` ratio "tends to" the asymptote;
    this experiment measures the error along ``n = a * f`` and the tests
    confirm it decays like ``Theta(1/n)`` (halving ``1/n`` halves the
    error).

    Examples:
        >>> points = figure5_right_convergence(f_values=(8, 16, 32))
        >>> all(p.error > 0 for p in points)
        True
        >>> points[-1].error < points[0].error
        True
    """
    if not 1.0 < a < 2.0:
        raise InvalidParameterError(f"a must be in (1, 2), got {a}")
    if not f_values:
        raise InvalidParameterError("f_values must be non-empty")
    asymptote = asymptotic_cr(a)
    points: List[ConvergencePoint] = []
    for f in f_values:
        n = round(a * f)
        if not f < n < 2 * f + 2:
            raise InvalidParameterError(
                f"(n={n}, f={f}) fell outside the proportional regime; "
                "choose a strictly inside (1, 2)"
            )
        points.append(
            ConvergencePoint(
                f=f,
                n=n,
                finite_value=algorithm_competitive_ratio(n, f),
                asymptotic_value=asymptote,
            )
        )
    return points


def render_figure5_left(points: List[Figure5LeftPoint]) -> str:
    """Text rendering of the left plot's data."""
    headers = ["n", "formula (2+2/n)^(1+1/n)(2/n)^(-1/n)+1",
               "Theorem 1 (odd n)", "measured"]
    body = [
        [p.n, p.formula_value, p.theorem1_value, p.measured_value]
        for p in points
    ]
    return render_table(
        headers, body, precision=6,
        title="Figure 5 (left) — CR of A(2f+1, f) versus n",
    )


def render_figure5_right(points: List[Figure5RightPoint]) -> str:
    """Text rendering of the right plot's data."""
    headers = ["a = n/f", "asymptotic CR", "finite-n CR", "finite n"]
    body = [
        [p.a, p.asymptotic_value, p.finite_n_value, p.finite_n]
        for p in points
    ]
    return render_table(
        headers, body, precision=6,
        title="Figure 5 (right) — asymptotic CR versus fault fraction a",
    )
