"""CSV export of experiment data (for external plotting tools).

The text reports in :mod:`repro.experiments.registry` are for reading;
this module exposes the same runs as ``(headers, rows)`` pairs and
writes them as CSV.  Used by ``linesearch export <id> --out file.csv``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.report import render_csv

__all__ = ["CSV_EXPORTERS", "export_csv", "exportable_ids"]

Dataset = Tuple[Sequence[str], List[Sequence]]


def _table1(measure: bool) -> Dataset:
    from repro.experiments.table1 import run_table1

    rows = run_table1(measure=measure)
    headers = [
        "n", "f", "paper_cr", "computed_cr", "measured_cr",
        "paper_lower_bound", "computed_lower_bound",
        "paper_expansion", "computed_expansion",
    ]
    body = [
        [
            r.n, r.f, r.paper_cr, r.computed_cr, r.measured_cr,
            r.paper_lower_bound, r.computed_lower_bound,
            r.paper_expansion, r.computed_expansion,
        ]
        for r in rows
    ]
    return headers, body


def _figure5_left(measure: bool) -> Dataset:
    from repro.experiments.figure5 import figure5_left

    points = figure5_left(measure=measure)
    headers = ["n", "formula_value", "theorem1_value", "measured_value"]
    body = [
        [p.n, p.formula_value, p.theorem1_value, p.measured_value]
        for p in points
    ]
    return headers, body


def _figure5_right(measure: bool) -> Dataset:
    from repro.experiments.figure5 import figure5_right

    points = figure5_right()
    headers = ["a", "asymptotic_value", "finite_n_value", "finite_n"]
    body = [
        [p.a, p.asymptotic_value, p.finite_n_value, p.finite_n]
        for p in points
    ]
    return headers, body


def _asymptotics(measure: bool) -> Dataset:
    from repro.experiments.asymptotics import run_asymptotics

    rows = run_asymptotics()
    headers = [
        "n", "upper_exact", "upper_envelope", "lower_exact",
        "lower_envelope", "gap",
    ]
    body = [
        [r.n, r.upper_exact, r.upper_envelope, r.lower_exact,
         r.lower_envelope, r.gap]
        for r in rows
    ]
    return headers, body


def _ratio_profile(measure: bool) -> Dataset:
    from repro.experiments.ratio_profile import run_ratio_profile

    result = run_ratio_profile(3, 1, periods=2)
    headers = ["x", "ratio"]
    body = [[x, k] for x, k in zip(result.xs, result.ratios)]
    return headers, body


def _tower(measure: bool) -> Dataset:
    from repro.experiments.tower import run_tower

    rows = run_tower(3, 1, time_points=24, until=28.0)
    headers = ["time", "left", "right", "width"]
    return headers, [list(r) for r in rows]


def _lowerbound_game(measure: bool) -> Dataset:
    from repro.experiments.lowerbound_game import run_lowerbound_game

    rows = run_lowerbound_game()
    headers = [
        "algorithm", "n", "f", "alpha", "witness_target",
        "witness_faults", "achieved_ratio", "ladder_level",
    ]
    body = [
        [
            r.algorithm, r.n, r.f, r.alpha, r.witness_target,
            ";".join(map(str, r.witness_faults)), r.achieved_ratio,
            r.ladder_level,
        ]
        for r in rows
    ]
    return headers, body


#: experiment id -> exporter taking a ``measure`` flag.
CSV_EXPORTERS: Dict[str, Callable[[bool], Dataset]] = {
    "table1": _table1,
    "figure5_left": _figure5_left,
    "figure5_right": _figure5_right,
    "asymptotics": _asymptotics,
    "ratio_profile": _ratio_profile,
    "tower": _tower,
    "lowerbound_game": _lowerbound_game,
}


def exportable_ids() -> List[str]:
    """All experiment ids with CSV exporters, sorted."""
    return sorted(CSV_EXPORTERS)


def export_csv(experiment_id: str, measure: bool = False) -> str:
    """Run the experiment and return its data as a CSV string.

    Examples:
        >>> csv_text = export_csv("figure5_right")
        >>> csv_text.splitlines()[0]
        'a,asymptotic_value,finite_n_value,finite_n'
    """
    try:
        exporter = CSV_EXPORTERS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"no CSV exporter for {experiment_id!r}; available: "
            f"{', '.join(exportable_ids())}"
        ) from None
    headers, rows = exporter(measure)
    return render_csv(headers, rows)
