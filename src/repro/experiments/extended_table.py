"""Extended bounds table: Table 1 generalized to every (n, f).

Table 1 samples twelve parameter pairs.  This experiment generates the
complete landscape for all ``1 <= f < n <= n_max``: regime, achieved
competitive ratio, lower bound, optimality gap, and (in the proportional
regime) the cone slope and expansion factor — the reference table a
practitioner would actually consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.competitive_ratio import competitive_ratio
from repro.core.lower_bound import lower_bound
from repro.core.optimal import optimal_beta, optimal_expansion_factor
from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.experiments.report import render_table

__all__ = ["ExtendedRow", "run_extended_table", "render_extended_table"]


@dataclass(frozen=True)
class ExtendedRow:
    """One (n, f) entry of the landscape."""

    n: int
    f: int
    regime: str
    achieved_cr: float
    bound: float
    beta: Optional[float]
    expansion: Optional[float]

    @property
    def optimality_gap(self) -> float:
        """Achieved minus lower bound (0 where we are provably optimal)."""
        return self.achieved_cr - self.bound


def run_extended_table(n_max: int = 10) -> List[ExtendedRow]:
    """The full landscape up to ``n_max`` robots.

    Examples:
        >>> rows = run_extended_table(4)
        >>> len(rows)   # (n,f) with 1 <= f < n <= 4
        6
        >>> [r.regime for r in rows if r.n == 4]
        ['trivial', 'proportional', 'proportional']
    """
    if n_max < 2:
        raise InvalidParameterError(f"n_max must be >= 2, got {n_max}")
    rows: List[ExtendedRow] = []
    for n in range(2, n_max + 1):
        for f in range(1, n):
            params = SearchParameters(n, f)
            beta = expansion = None
            if params.is_proportional:
                beta = optimal_beta(n, f)
                expansion = optimal_expansion_factor(n, f)
            rows.append(
                ExtendedRow(
                    n=n,
                    f=f,
                    regime=params.regime.value,
                    achieved_cr=competitive_ratio(n, f),
                    bound=lower_bound(n, f),
                    beta=beta,
                    expansion=expansion,
                )
            )
    return rows


def render_extended_table(rows: List[ExtendedRow]) -> str:
    """Aligned text rendering of the landscape."""
    headers = [
        "n", "f", "regime", "CR achieved", "lower bound", "gap",
        "beta*", "kappa",
    ]
    body = [
        [
            r.n, r.f, r.regime, r.achieved_cr, r.bound,
            r.optimality_gap, r.beta, r.expansion,
        ]
        for r in rows
    ]
    return render_table(
        headers, body, precision=4,
        title="Extended bounds landscape (all parameter pairs)",
    )
