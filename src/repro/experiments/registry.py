"""Registry of reproducible experiments.

Maps experiment ids (matching DESIGN.md's per-experiment index) to
zero-argument callables that run the experiment and return its text
report.  Used by the CLI (``linesearch experiment <id>``) and by the
benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]


def _table1() -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1(measure=True))


def _figure5_left() -> str:
    from repro.experiments.figure5 import figure5_left, render_figure5_left
    from repro.viz.ascii_art import line_chart

    points = figure5_left(measure=True)
    table = render_figure5_left(points)
    chart = line_chart(
        [p.n for p in points], [p.formula_value for p in points]
    )
    return table + "\n\n" + chart


def _figure5_right() -> str:
    from repro.experiments.figure5 import figure5_right, render_figure5_right
    from repro.viz.ascii_art import line_chart

    points = figure5_right()
    table = render_figure5_right(points)
    chart = line_chart(
        [p.a for p in points], [p.asymptotic_value for p in points]
    )
    return table + "\n\n" + chart


def _figures1to4() -> str:
    from repro.experiments.diagrams import all_diagrams

    return "\n\n".join(all_diagrams().values())


def _asymptotics() -> str:
    from repro.experiments.asymptotics import render_asymptotics, run_asymptotics

    return render_asymptotics(run_asymptotics())


def _ablation_beta() -> str:
    from repro.experiments.ablation import render_beta_ablation, run_beta_ablation

    sections: List[str] = []
    for n, f in ((3, 1), (5, 2), (5, 3)):
        beta_star, points = run_beta_ablation(n, f, points=9, measure=True)
        sections.append(render_beta_ablation(n, f, beta_star, points))
    return "\n\n".join(sections)


def _ablation_baselines() -> str:
    from repro.experiments.ablation import (
        render_baseline_comparison,
        run_baseline_comparison,
    )

    return render_baseline_comparison(run_baseline_comparison())


def _extended_table() -> str:
    from repro.experiments.extended_table import (
        render_extended_table,
        run_extended_table,
    )

    return render_extended_table(run_extended_table(n_max=10))


def _tower() -> str:
    from repro.experiments.tower import render_tower, run_tower, tower_diagram

    return tower_diagram() + "\n\n" + render_tower(run_tower())


def _average_case() -> str:
    from repro.analysis.average_case import compare_worst_vs_random_faults
    from repro.baselines import GroupDoubling
    from repro.experiments.report import render_table
    from repro.schedule import ProportionalAlgorithm

    rows = []
    for algorithm in (ProportionalAlgorithm(3, 1), GroupDoubling(3, 1)):
        adversarial, randomized = compare_worst_vs_random_faults(
            algorithm, trials=300, seed=7
        )
        rows.append(
            [
                algorithm.name,
                algorithm.theoretical_competitive_ratio(),
                adversarial.mean,
                randomized.mean,
                adversarial.maximum,
            ]
        )
    return render_table(
        [
            "algorithm",
            "worst case (theory)",
            "mean ratio (adversarial faults)",
            "mean ratio (random faults)",
            "max sampled",
        ],
        rows,
        precision=3,
        title=(
            "Average-case study — random targets on ±[1, 50], "
            "300 Monte Carlo trials"
        ),
    )


def _ratio_profile() -> str:
    from repro.experiments.ratio_profile import (
        render_ratio_profile,
        run_ratio_profile,
    )

    return "\n\n".join(
        render_ratio_profile(run_ratio_profile(n, f))
        for n, f in ((3, 1), (5, 2))
    )


def _ext_scaled_copies() -> str:
    from repro.experiments.extensions import (
        render_scaled_copies,
        run_scaled_copies,
    )

    return render_scaled_copies(run_scaled_copies())


def _ext_turn_cost() -> str:
    from repro.experiments.extensions import render_turn_cost, run_turn_cost

    return render_turn_cost(3, 1, run_turn_cost(3, 1))


def _ext_bounded() -> str:
    from repro.experiments.extensions import render_bounded, run_bounded

    return render_bounded(3, 1, run_bounded(3, 1))


def _ext_multi_speed() -> str:
    from repro.experiments.extensions import (
        render_multi_speed,
        run_multi_speed,
    )

    return render_multi_speed(3, 1, run_multi_speed(3, 1))


def _ext_evacuation() -> str:
    from repro.experiments.extensions import render_evacuation, run_evacuation

    return render_evacuation(run_evacuation())


def _lowerbound_game() -> str:
    from repro.experiments.lowerbound_game import (
        render_lowerbound_game,
        run_lowerbound_game,
    )

    return render_lowerbound_game(run_lowerbound_game())


#: Experiment id -> runner. Ids match DESIGN.md's per-experiment index.
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "figure5_left": _figure5_left,
    "figure5_right": _figure5_right,
    "figures1to4": _figures1to4,
    "corollary1": _asymptotics,
    "corollary2": _asymptotics,
    "ablation_beta": _ablation_beta,
    "ablation_baselines": _ablation_baselines,
    "lowerbound_game": _lowerbound_game,
    "ratio_profile": _ratio_profile,
    "tower": _tower,
    "average_case": _average_case,
    "extended_table": _extended_table,
    "ext_scaled_copies": _ext_scaled_copies,
    "ext_turn_cost": _ext_turn_cost,
    "ext_bounded": _ext_bounded,
    "ext_multi_speed": _ext_multi_speed,
    "ext_evacuation": _ext_evacuation,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str) -> str:
    """Run one experiment by id and return its text report.

    Examples:
        >>> report = run_experiment("figure5_right")
        >>> "asymptotic CR" in report
        True
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(experiment_ids())}"
        ) from None
    return runner()
