"""Unit-speed segments in the space-time plane.

A robot moving at full speed between two turning events traces a segment
whose slope ``dt/dx`` is exactly ``+1`` (moving right) or ``-1`` (moving
left).  Robots are also allowed to move *slower* than full speed (the
start-up phase of algorithm ``A(n, f)`` in Definition 4 uses speed
``1/beta``), in which case ``|dt/dx| > 1``; and to stand still, in which
case the segment is vertical.

:class:`MotionSegment` models one leg of motion and answers the central
query of the whole library: *when, if ever, does this leg visit position
x?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError, TrajectoryError
from repro.geometry.point import SpaceTimePoint

__all__ = ["MotionSegment"]

_EPS = 1e-12


@dataclass(frozen=True)
class MotionSegment:
    """A constant-velocity leg of a robot trajectory.

    Attributes:
        start: Space-time point where the leg begins.
        end: Space-time point where the leg ends; must not precede
            ``start`` in time, and must be reachable at unit speed.

    Examples:
        >>> leg = MotionSegment(SpaceTimePoint(0.0, 0.0), SpaceTimePoint(3.0, 3.0))
        >>> leg.speed
        1.0
        >>> leg.visit_time(2.0)
        2.0
        >>> leg.visit_time(5.0) is None
        True
    """

    start: SpaceTimePoint
    end: SpaceTimePoint

    def __post_init__(self) -> None:
        if self.end.time < self.start.time - _EPS:
            raise TrajectoryError(
                "segment must not go backwards in time: "
                f"{self.start.time} -> {self.end.time}"
            )
        if not self.end.is_reachable_from(self.start):
            raise TrajectoryError(
                "segment requires speed > 1: "
                f"{self.start.as_tuple()} -> {self.end.as_tuple()}"
            )

    # ------------------------------------------------------------------
    # basic measurements
    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Elapsed time over the leg."""
        return self.end.time - self.start.time

    @property
    def displacement(self) -> float:
        """Signed change of position over the leg."""
        return self.end.position - self.start.position

    @property
    def speed(self) -> float:
        """Constant speed of the leg (0 for a wait, at most 1)."""
        if self.duration <= _EPS:
            return 0.0
        return abs(self.displacement) / self.duration

    @property
    def direction(self) -> int:
        """``+1`` moving right, ``-1`` moving left, ``0`` standing still."""
        if self.displacement > _EPS:
            return 1
        if self.displacement < -_EPS:
            return -1
        return 0

    @property
    def is_full_speed(self) -> bool:
        """Whether the leg moves at (numerically) unit speed."""
        return abs(self.speed - 1.0) <= 1e-9

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def position_at(self, time: float) -> float:
        """Position of the robot at ``time``, which must lie in the leg.

        Raises:
            TrajectoryError: if ``time`` is outside
                ``[start.time, end.time]``.
        """
        if time < self.start.time - _EPS or time > self.end.time + _EPS:
            raise TrajectoryError(
                f"time {time} outside segment [{self.start.time}, {self.end.time}]"
            )
        if self.duration <= _EPS:
            return self.start.position
        frac = (time - self.start.time) / self.duration
        frac = min(max(frac, 0.0), 1.0)
        return self.start.position + frac * self.displacement

    def covers_position(self, x: float) -> bool:
        """Whether the leg passes through position ``x`` at some time."""
        lo = min(self.start.position, self.end.position)
        hi = max(self.start.position, self.end.position)
        return lo - _EPS <= x <= hi + _EPS

    def visit_time(self, x: float) -> Optional[float]:
        """Earliest time within the leg at which the robot is at ``x``.

        Returns ``None`` when the leg never touches ``x``.  For a waiting
        leg at position ``x`` the start time is returned.
        """
        if not self.covers_position(x):
            return None
        if abs(self.displacement) <= _EPS:
            return self.start.time
        frac = (x - self.start.position) / self.displacement
        frac = min(max(frac, 0.0), 1.0)
        return self.start.time + frac * self.duration

    def intersect_vertical_line(self, x: float) -> Optional[SpaceTimePoint]:
        """Intersection with the vertical line at position ``x``.

        This mirrors the proof device of Lemma 3, where a vertical line
        ``V`` through ``x`` is swept across the trajectory diagram.
        """
        t = self.visit_time(x)
        if t is None:
            return None
        return SpaceTimePoint(x, t)

    def clipped_to_times(self, t0: float, t1: float) -> "MotionSegment":
        """Return the sub-segment between times ``t0`` and ``t1``.

        Raises:
            InvalidParameterError: if the window is empty or does not
                overlap the leg.
        """
        if t1 < t0:
            raise InvalidParameterError(f"empty time window [{t0}, {t1}]")
        lo = max(t0, self.start.time)
        hi = min(t1, self.end.time)
        if hi < lo - _EPS:
            raise InvalidParameterError(
                f"window [{t0}, {t1}] does not overlap segment "
                f"[{self.start.time}, {self.end.time}]"
            )
        hi = max(hi, lo)
        return MotionSegment(
            SpaceTimePoint(self.position_at(lo), lo),
            SpaceTimePoint(self.position_at(hi), hi),
        )

    def sample(self, count: int) -> list:
        """Return ``count`` evenly spaced points along the leg (inclusive).

        Useful for plotting; ``count`` must be at least 2.
        """
        if count < 2:
            raise InvalidParameterError(f"count must be >= 2, got {count}")
        pts = []
        for i in range(count):
            t = self.start.time + self.duration * i / (count - 1)
            pts.append(SpaceTimePoint(self.position_at(t), t))
        return pts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MotionSegment(({self.start.position:g}, {self.start.time:g}) -> "
            f"({self.end.position:g}, {self.end.time:g}))"
        )
