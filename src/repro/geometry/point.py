"""Space-time points for the 2D representation of line search.

The paper argues about robot movement in a half-plane whose horizontal
axis is the position ``x`` on the line ``L`` and whose vertical axis is
time ``t >= 0`` (Section 2, Figure 1).  A robot's trajectory is a curve of
points ``(x, t)``; because robots move at (at most) unit speed, trajectory
segments have slope at least 1 in absolute value when expressed as
``dt/dx`` (the paper draws the slopes as ±1 because robots always use full
speed).

This module provides the small value type used throughout the geometry and
trajectory layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["SpaceTimePoint", "ORIGIN"]


@dataclass(frozen=True, order=False)
class SpaceTimePoint:
    """An immutable point ``(position, time)`` in the space-time half-plane.

    Attributes:
        position: Location on the infinite line ``L`` (any real).
        time: Time coordinate; must be non-negative, since all searches
            start at time 0.

    Examples:
        >>> p = SpaceTimePoint(position=3.0, time=5.0)
        >>> p.position, p.time
        (3.0, 5.0)
        >>> p.translate(dx=-1.0, dt=2.0)
        SpaceTimePoint(position=2.0, time=7.0)
    """

    position: float
    time: float

    def __post_init__(self) -> None:
        # Coerce to float so integer-built points compare and print
        # uniformly; the dataclass is frozen, hence object.__setattr__.
        object.__setattr__(self, "position", float(self.position))
        object.__setattr__(self, "time", float(self.time))
        if not math.isfinite(self.position):
            raise InvalidParameterError(
                f"position must be finite, got {self.position!r}"
            )
        if not math.isfinite(self.time):
            raise InvalidParameterError(f"time must be finite, got {self.time!r}")
        if self.time < 0:
            raise InvalidParameterError(
                f"time must be non-negative, got {self.time!r}"
            )

    def translate(self, dx: float = 0.0, dt: float = 0.0) -> "SpaceTimePoint":
        """Return a new point shifted by ``dx`` in space and ``dt`` in time."""
        return SpaceTimePoint(self.position + dx, self.time + dt)

    def distance_to(self, other: "SpaceTimePoint") -> float:
        """Euclidean distance in the space-time plane.

        Used by the similar-triangle arguments of Lemma 2, where segment
        lengths such as ``|A_0 A_1|`` are Euclidean lengths in the plane.
        """
        return math.hypot(self.position - other.position, self.time - other.time)

    def spatial_distance_to(self, other: "SpaceTimePoint") -> float:
        """Absolute difference of the position coordinates only."""
        return abs(self.position - other.position)

    def temporal_distance_to(self, other: "SpaceTimePoint") -> float:
        """Absolute difference of the time coordinates only."""
        return abs(self.time - other.time)

    def is_reachable_from(
        self, other: "SpaceTimePoint", max_speed: float = 1.0
    ) -> bool:
        """Whether a robot of speed at most ``max_speed`` can go from
        ``other`` to this point.

        Reachability requires the time difference to be non-negative and at
        least ``|dx| / max_speed``.

        Examples:
            >>> a = SpaceTimePoint(0.0, 0.0)
            >>> SpaceTimePoint(1.0, 1.0).is_reachable_from(a)
            True
            >>> SpaceTimePoint(2.0, 1.0).is_reachable_from(a)
            False
        """
        if max_speed <= 0:
            raise InvalidParameterError(
                f"max_speed must be positive, got {max_speed!r}"
            )
        dt = self.time - other.time
        if dt < 0:
            return False
        # Relative tolerance on two scales: the leg's own magnitude
        # (turning points of cone zig-zags grow geometrically) and the
        # absolute coordinates (the subtraction above loses up to one
        # ulp of the *coordinates*, which dominates for short legs far
        # from the origin).
        tol = 1e-9 * (
            1.0 + abs(dt) + abs(self.position) + abs(other.position)
        ) + 1e-12 * (abs(self.time) + abs(other.time))
        return abs(self.position - other.position) <= max_speed * dt + tol

    def as_tuple(self) -> tuple:
        """Return ``(position, time)`` as a plain tuple."""
        return (self.position, self.time)


#: The shared starting point of every search: position 0 at time 0.
ORIGIN = SpaceTimePoint(0.0, 0.0)
