"""The search cone ``C_beta`` of Section 2.

For a fixed real ``beta > 1`` the paper defines ``C_beta`` as the cone
delimited by the pair of lines ``t = beta * x`` for ``x >= 0`` and
``t = -beta * x`` for ``x < 0``.  Every proportional-schedule robot
zig-zags *inside* this cone, reversing direction exactly when it reaches
the boundary (Definition 1).

Lemma 1 gives the induced turning points: a robot whose zig-zag starts at
boundary point ``(x0, beta * |x0|)`` turns at

    ``x_i = x0 * kappa^i * (-1)^i``  with  ``kappa = (beta + 1) / (beta - 1)``

so ``kappa`` is the *expansion factor* of every cone-defined strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError
from repro.geometry.point import SpaceTimePoint

__all__ = ["Cone", "expansion_factor", "beta_for_expansion_factor"]


def expansion_factor(beta: float) -> float:
    """Expansion factor ``(beta + 1) / (beta - 1)`` of the cone ``C_beta``.

    Examples:
        >>> expansion_factor(3.0)   # doubling strategy
        2.0
        >>> round(expansion_factor(5/3), 10)   # A(3, 1)
        4.0
    """
    if beta <= 1.0:
        raise InvalidParameterError(f"beta must be > 1, got {beta!r}")
    return (beta + 1.0) / (beta - 1.0)


def beta_for_expansion_factor(kappa: float) -> float:
    """Inverse of :func:`expansion_factor`: the ``beta`` whose cone yields
    expansion factor ``kappa``.

    Solving ``kappa = (beta+1)/(beta-1)`` gives
    ``beta = (kappa + 1) / (kappa - 1)`` — the map is an involution.

    Examples:
        >>> beta_for_expansion_factor(2.0)
        3.0
        >>> round(beta_for_expansion_factor(expansion_factor(1.4)), 9)
        1.4
    """
    if kappa <= 1.0:
        raise InvalidParameterError(
            f"expansion factor must be > 1, got {kappa!r}"
        )
    return (kappa + 1.0) / (kappa - 1.0)


@dataclass(frozen=True)
class Cone:
    """The space-time cone ``C_beta`` with apex at the origin.

    Attributes:
        beta: Slope of the delimiting lines; must satisfy ``beta > 1`` so
            that a unit-speed robot can actually bounce between the two
            boundary rays (a slope-1 boundary would never be reached
            again after leaving it).

    Examples:
        >>> cone = Cone(3.0)
        >>> cone.expansion_factor
        2.0
        >>> cone.boundary_time(-2.0)
        6.0
        >>> cone.contains(SpaceTimePoint(1.0, 5.0))
        True
    """

    beta: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.beta) or self.beta <= 1.0:
            raise InvalidParameterError(
                f"cone slope beta must be a finite real > 1, got {self.beta!r}"
            )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def expansion_factor(self) -> float:
        """``(beta + 1) / (beta - 1)`` — ratio of successive turn radii."""
        return expansion_factor(self.beta)

    def boundary_time(self, x: float) -> float:
        """Time coordinate of the boundary above position ``x``:
        ``beta * |x|``."""
        return self.beta * abs(x)

    def boundary_point(self, x: float) -> SpaceTimePoint:
        """The boundary point of the cone above position ``x``."""
        return SpaceTimePoint(x, self.boundary_time(x))

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def contains(self, point: SpaceTimePoint, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside or on the cone boundary."""
        return point.time + tol >= self.boundary_time(point.position)

    def is_on_boundary(self, point: SpaceTimePoint, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies (numerically) on the cone boundary."""
        return abs(point.time - self.boundary_time(point.position)) <= tol * (
            1.0 + abs(point.time)
        )

    # ------------------------------------------------------------------
    # zig-zag geometry (Lemma 1)
    # ------------------------------------------------------------------

    def next_turning_point(self, x: float) -> float:
        """Position of the turn after a turn at boundary position ``x``.

        A unit-speed robot leaving the boundary at ``(x, beta |x|)``
        toward the opposite side hits the boundary again at
        ``-x * kappa`` (Lemma 1).

        Examples:
            >>> Cone(3.0).next_turning_point(1.0)
            -2.0
            >>> Cone(3.0).next_turning_point(-2.0)
            4.0
        """
        if x == 0.0:
            raise InvalidParameterError(
                "the cone apex is a fixed point; a zig-zag cannot start at 0"
            )
        return -x * self.expansion_factor

    def previous_turning_point(self, x: float) -> float:
        """Position of the turn before a turn at boundary position ``x``.

        Inverse of :meth:`next_turning_point`; used by Definition 4 to
        extend a trajectory *backwards* inside the cone toward the apex.
        """
        if x == 0.0:
            raise InvalidParameterError(
                "the cone apex is a fixed point; a zig-zag cannot start at 0"
            )
        return -x / self.expansion_factor

    def turning_point(self, x0: float, index: int) -> float:
        """The ``index``-th turning point of the zig-zag anchored at ``x0``.

        Implements Lemma 1, ``x_i = x0 * kappa^i * (-1)^i``, for any
        integer ``index`` (negative indices extend backwards).

        Examples:
            >>> cone = Cone(3.0)
            >>> [cone.turning_point(1.0, i) for i in range(4)]
            [1.0, -2.0, 4.0, -8.0]
            >>> cone.turning_point(1.0, -1)
            -0.5
        """
        if x0 == 0.0:
            raise InvalidParameterError("zig-zag anchor must be nonzero")
        kappa = self.expansion_factor
        sign = -1.0 if index % 2 else 1.0
        return x0 * (kappa ** index) * sign

    def turning_time(self, x0: float, index: int) -> float:
        """Time of the ``index``-th turning point of the zig-zag anchored
        at ``x0`` — always ``beta * |x_i|`` because turns happen on the
        boundary."""
        return self.boundary_time(self.turning_point(x0, index))

    def travel_time_between_turns(self, x: float) -> float:
        """Duration of the leg that starts with a turn at position ``x``.

        Distance from ``x`` to ``-kappa x`` is ``(1 + kappa) |x|``, which
        equals ``beta * |x| * (kappa - 1)`` — consistent with turn times
        ``beta |x|`` and ``beta kappa |x|``.
        """
        return (1.0 + self.expansion_factor) * abs(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cone(beta={self.beta:g})"
