"""Space-time polylines: validated chains of motion segments.

A polyline is the geometric skeleton of a trajectory — an ordered list of
:class:`~repro.geometry.segment.MotionSegment` legs whose endpoints chain
together.  The trajectory layer builds on this with lazy extension and
visit-order queries; the polyline layer owns the purely geometric
invariants (continuity, monotone time, speed limit).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import InvalidParameterError, TrajectoryError
from repro.geometry.point import SpaceTimePoint
from repro.geometry.segment import MotionSegment

__all__ = ["SpaceTimePolyline", "polyline_through"]

_EPS = 1e-9


class SpaceTimePolyline:
    """An ordered, continuous chain of motion segments.

    Invariants enforced on construction:

    * consecutive segments share an endpoint (continuity);
    * time is non-decreasing along the chain;
    * every leg respects the unit speed limit.

    Examples:
        >>> pts = [SpaceTimePoint(0, 0), SpaceTimePoint(1, 1), SpaceTimePoint(-1, 3)]
        >>> line = polyline_through(pts)
        >>> line.total_duration
        3.0
        >>> line.position_at(2.0)
        0.0
    """

    def __init__(self, segments: Sequence[MotionSegment]):
        segs = list(segments)
        if not segs:
            raise InvalidParameterError("polyline needs at least one segment")
        for prev, cur in zip(segs, segs[1:]):
            if prev.end.temporal_distance_to(cur.start) > _EPS or (
                prev.end.spatial_distance_to(cur.start) > _EPS
            ):
                raise TrajectoryError(
                    "discontinuous polyline: "
                    f"{prev.end.as_tuple()} != {cur.start.as_tuple()}"
                )
        self._segments: List[MotionSegment] = segs

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def segments(self) -> Sequence[MotionSegment]:
        """The underlying segments (read-only view)."""
        return tuple(self._segments)

    @property
    def start(self) -> SpaceTimePoint:
        """First point of the chain."""
        return self._segments[0].start

    @property
    def end(self) -> SpaceTimePoint:
        """Last point of the chain."""
        return self._segments[-1].end

    @property
    def total_duration(self) -> float:
        """Elapsed time from the first to the last point."""
        return self.end.time - self.start.time

    @property
    def total_distance(self) -> float:
        """Total (unsigned) distance travelled along the chain."""
        return sum(abs(s.displacement) for s in self._segments)

    def vertices(self) -> List[SpaceTimePoint]:
        """All breakpoints of the chain, including both endpoints."""
        pts = [self._segments[0].start]
        pts.extend(s.end for s in self._segments)
        return pts

    def turning_vertices(self) -> List[SpaceTimePoint]:
        """Breakpoints where the direction of motion actually reverses.

        Waiting legs do not count as turns; a right-left or left-right
        switch does.
        """
        turns: List[SpaceTimePoint] = []
        prev_dir: Optional[int] = None
        for seg in self._segments:
            d = seg.direction
            if d == 0:
                continue
            if prev_dir is not None and d != prev_dir:
                turns.append(seg.start)
            prev_dir = d
        return turns

    def __iter__(self) -> Iterator[MotionSegment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def position_at(self, time: float) -> float:
        """Position at ``time``; clamped to the endpoints outside the span.

        The clamping convention matches the simulator: before its start a
        robot is at its start position, after its (finite) end it stays
        put.  Infinite trajectories never hit the second case.
        """
        if time <= self.start.time:
            return self.start.position
        if time >= self.end.time:
            return self.end.position
        # binary search over segment end times
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid].end.time < time:
                lo = mid + 1
            else:
                hi = mid
        return self._segments[lo].position_at(time)

    def first_visit_time(self, x: float) -> Optional[float]:
        """Earliest time the chain is at position ``x``; ``None`` if never."""
        for seg in self._segments:
            t = seg.visit_time(x)
            if t is not None:
                return t
        return None

    def visit_times(self, x: float) -> List[float]:
        """All distinct times at which the chain is at position ``x``.

        A robot that turns exactly at ``x`` touches it once, not twice:
        coincident visit times from adjacent segments are merged.
        """
        times: List[float] = []
        for seg in self._segments:
            t = seg.visit_time(x)
            if t is None:
                continue
            if times and abs(times[-1] - t) <= _EPS * (1.0 + abs(t)):
                continue
            times.append(t)
        return times

    def bounding_positions(self) -> tuple:
        """``(min_position, max_position)`` over the whole chain."""
        lo = min(min(s.start.position, s.end.position) for s in self._segments)
        hi = max(max(s.start.position, s.end.position) for s in self._segments)
        return (lo, hi)

    def clipped_to_times(self, t0: float, t1: float) -> "SpaceTimePolyline":
        """Sub-polyline restricted to the time window ``[t0, t1]``."""
        if t1 <= t0:
            raise InvalidParameterError(f"empty time window [{t0}, {t1}]")
        parts: List[MotionSegment] = []
        for seg in self._segments:
            if seg.end.time < t0 or seg.start.time > t1:
                continue
            parts.append(seg.clipped_to_times(t0, t1))
        if not parts:
            raise InvalidParameterError(
                f"window [{t0}, {t1}] does not overlap polyline"
            )
        return SpaceTimePolyline(parts)


def polyline_through(points: Iterable[SpaceTimePoint]) -> SpaceTimePolyline:
    """Build a polyline through consecutive space-time points.

    Examples:
        >>> line = polyline_through(
        ...     [SpaceTimePoint(0, 0), SpaceTimePoint(2, 2), SpaceTimePoint(0, 4)]
        ... )
        >>> line.total_distance
        4.0
    """
    pts = list(points)
    if len(pts) < 2:
        raise InvalidParameterError("need at least two points")
    return SpaceTimePolyline(
        [MotionSegment(a, b) for a, b in zip(pts, pts[1:])]
    )
