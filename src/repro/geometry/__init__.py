"""Space-time geometry primitives (Section 2 of the paper).

The whole analysis of the paper happens in a 2D half-plane whose axes are
position on the line and time.  This subpackage provides the value types
for that plane:

* :class:`~repro.geometry.point.SpaceTimePoint` — a ``(position, time)``
  pair;
* :class:`~repro.geometry.segment.MotionSegment` — one constant-velocity
  leg of motion, with visit-time queries;
* :class:`~repro.geometry.polyline.SpaceTimePolyline` — a validated chain
  of legs;
* :class:`~repro.geometry.cone.Cone` — the cone ``C_beta`` that shapes
  every proportional-schedule trajectory, with the Lemma 1 turning-point
  formulas.
"""

from repro.geometry.cone import Cone, beta_for_expansion_factor, expansion_factor
from repro.geometry.point import ORIGIN, SpaceTimePoint
from repro.geometry.polyline import SpaceTimePolyline, polyline_through
from repro.geometry.segment import MotionSegment

__all__ = [
    "Cone",
    "MotionSegment",
    "ORIGIN",
    "SpaceTimePoint",
    "SpaceTimePolyline",
    "beta_for_expansion_factor",
    "expansion_factor",
    "polyline_through",
]
