"""Engine-parity harness: the batch kernels against the event engine.

The event engine (:class:`~repro.simulation.engine.SearchSimulation`)
is the semantic oracle of this library.  The batch subsystem is only a
*fast path*, so its correctness claim is empirical as well as
analytical: this module replays a seeded grid of (regime, target,
fault-set) points through both the batch kernels and the engine and
asserts agreement within :mod:`repro.core.tolerance` bounds.

The default grid spans six ``(n, f)`` regimes — including the paper's
extreme cases ``n = f + 1`` (all robots must reach every target) and
``n = 2f + 1`` (asymptotically optimal proportional schedules) and the
trivial regime ``n >= 2f + 2`` — with both adversarial (worst-case
``T_{f+1}``) and explicit (fixed / seeded-random subset) fault
assignments, for well over the 1000 points the acceptance bar asks for.

CI runs this twice: in a bare venv (pure backend) and with the
``scientific`` extra installed (numpy backend); the JSON report is kept
as a build artifact either way.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.batch.backend import BatchBackend
from repro.batch.evaluate import BatchEvaluator
from repro.core.tolerance import TIME_RTOL, times_close
from repro.errors import InvalidParameterError
from repro.robots.faults import AdversarialFaults, FixedFaults
from repro.robots.fleet import Fleet
from repro.simulation.engine import SearchSimulation

__all__ = ["ParityCase", "ParityReport", "run_parity_harness", "DEFAULT_PAIRS"]

#: Default regimes: n = f+1 twice, n = 2f+1 twice, one interior
#: proportional regime, and one trivial-regime (n >= 2f+2) fleet.
DEFAULT_PAIRS: Tuple[Tuple[int, int], ...] = (
    (2, 1),
    (3, 2),
    (3, 1),
    (5, 2),
    (4, 2),
    (6, 2),
)


@dataclass(frozen=True)
class ParityCase:
    """One compared point: a regime, a target, and a fault assignment.

    ``fault_set`` is ``None`` for the adversarial (worst-case) case,
    where the engine's fault model picks the subset itself; otherwise
    the explicit crash-detection fault indices.
    """

    n: int
    f: int
    target: float
    fault_set: Optional[Tuple[int, ...]]
    engine_time: float
    batch_time: float

    @property
    def agree(self) -> bool:
        """Whether the two paths agree within tolerance (or are both
        infinite)."""
        if math.isinf(self.engine_time) or math.isinf(self.batch_time):
            return math.isinf(self.engine_time) and math.isinf(
                self.batch_time
            )
        return times_close(self.engine_time, self.batch_time)

    def describe(self) -> str:
        """One-line summary."""
        faults = (
            "adversarial"
            if self.fault_set is None
            else f"faulty={list(self.fault_set)}"
        )
        verdict = "ok " if self.agree else "MISMATCH"
        return (
            f"{verdict} A({self.n},{self.f}) x={self.target:.6g} {faults}: "
            f"engine={self.engine_time:.9g} batch={self.batch_time:.9g}"
        )


@dataclass
class ParityReport:
    """The outcome of one parity run: every case, plus the verdict."""

    backend: str
    seed: int
    cases: List[ParityCase] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of compared points."""
        return len(self.cases)

    @property
    def regimes(self) -> List[Tuple[int, int]]:
        """Distinct ``(n, f)`` regimes covered, sorted."""
        return sorted({(c.n, c.f) for c in self.cases})

    def mismatches(self) -> List[ParityCase]:
        """Cases where batch and engine disagree."""
        return [c for c in self.cases if not c.agree]

    @property
    def passed(self) -> bool:
        """Whether every compared point agreed."""
        return not self.mismatches()

    def describe(self, max_mismatches: int = 10) -> str:
        """Multi-line summary."""
        bad = self.mismatches()
        lines = [
            f"parity[{self.backend}]: {self.total - len(bad)}/{self.total} "
            f"points agree across {len(self.regimes)} regimes "
            f"(rtol={TIME_RTOL:g}, seed={self.seed})"
        ]
        for case in bad[:max_mismatches]:
            lines.append("  " + case.describe())
        hidden = len(bad) - max_mismatches
        if hidden > 0:
            lines.append(f"  ... and {hidden} more mismatches")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready representation (non-finite times encoded as
        strings, like the campaign report)."""

        def encode(t: float):
            return t if math.isfinite(t) else repr(t)

        return {
            "format": "linesearch-parity-report",
            "version": 1,
            "backend": self.backend,
            "seed": self.seed,
            "total": self.total,
            "passed": self.passed,
            "regimes": [list(r) for r in self.regimes],
            "mismatches": len(self.mismatches()),
            "cases": [
                {
                    "n": c.n,
                    "f": c.f,
                    "target": c.target,
                    "fault_set": (
                        None if c.fault_set is None else list(c.fault_set)
                    ),
                    "engine_time": encode(c.engine_time),
                    "batch_time": encode(c.batch_time),
                    "agree": c.agree,
                }
                for c in self.cases
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize as a durable JSON artifact (canonical key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _seeded_targets(
    rng: random.Random, count: int, x_max: float
) -> List[float]:
    """``count`` targets, log-uniform in ``[1, x_max]``, random signs."""
    targets = []
    log_max = math.log(x_max)
    for _ in range(count):
        magnitude = math.exp(rng.uniform(0.0, log_max))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        targets.append(sign * magnitude)
    return targets


def _fault_sets(
    rng: random.Random, n: int, f: int, count: int
) -> List[Optional[Tuple[int, ...]]]:
    """Fault assignments for one target: adversarial, fault-free, and
    seeded random subsets of size at most ``f``."""
    sets: List[Optional[Tuple[int, ...]]] = [None, ()]
    while len(sets) < count:
        size = rng.randint(0, f)
        sets.append(tuple(sorted(rng.sample(range(n), size))))
    return sets[:count]


def run_parity_harness(
    pairs: Sequence[Tuple[int, int]] = DEFAULT_PAIRS,
    targets_per_pair: int = 40,
    fault_sets_per_target: int = 5,
    seed: int = 2016,
    backend: Union[BatchBackend, str, None] = None,
    x_max: float = 32.0,
) -> ParityReport:
    """Replay a seeded grid through both paths and compare every point.

    Args:
        pairs: ``(n, f)`` regimes; each is realized with the library's
            regime rule (proportional ``A(n, f)`` when
            ``f < n < 2f + 2``, the two-group algorithm otherwise).
        targets_per_pair: Seeded log-uniform targets per regime.
        fault_sets_per_target: Fault assignments compared per target
            (adversarial + fault-free + random subsets).
        seed: Master seed; the whole grid is reproducible from it.
        backend: Forwarded to :class:`~repro.batch.evaluate.BatchEvaluator`.
        x_max: Largest target magnitude drawn.

    Examples:
        >>> report = run_parity_harness(
        ...     pairs=[(3, 1)], targets_per_pair=3,
        ...     fault_sets_per_target=2, backend="pure",
        ... )
        >>> report.passed
        True
        >>> report.total
        6
    """
    if targets_per_pair < 1 or fault_sets_per_target < 1:
        raise InvalidParameterError(
            "targets_per_pair and fault_sets_per_target must be >= 1"
        )
    if x_max <= 1.0:
        raise InvalidParameterError(f"x_max must exceed 1, got {x_max}")
    from repro.schedule import algorithm_for

    rng = random.Random(seed)
    cases: List[ParityCase] = []
    backend_name = ""
    for n, f in pairs:
        algorithm = algorithm_for(n, f)
        evaluator = BatchEvaluator(algorithm, fault_budget=f, backend=backend)
        backend_name = evaluator.backend.name
        engine_fleet = Fleet.from_algorithm(algorithm)
        targets = _seeded_targets(rng, targets_per_pair, x_max)
        worst = evaluator.search_times(targets)
        for target, batch_worst in zip(targets, worst):
            for fault_set in _fault_sets(rng, n, f, fault_sets_per_target):
                if fault_set is None:
                    model = AdversarialFaults(f)
                    batch_time = batch_worst
                else:
                    model = FixedFaults(fault_set) if fault_set else None
                    batch_time = evaluator.detection_times(
                        [target], fault_set
                    )[0]
                simulation = SearchSimulation(
                    engine_fleet,
                    target,
                    fault_model=model,
                )
                engine_time = simulation.run(with_events=False).detection_time
                cases.append(
                    ParityCase(
                        n=n,
                        f=f,
                        target=target,
                        fault_set=fault_set,
                        engine_time=engine_time,
                        batch_time=batch_time,
                    )
                )
    return ParityReport(backend=backend_name, seed=seed, cases=cases)
