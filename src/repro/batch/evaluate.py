"""High-level batch evaluation: whole target grids in one call.

:class:`BatchEvaluator` is the analytic counterpart of running one
:class:`~repro.simulation.engine.SearchSimulation` per target.  It
compiles the fleet's trajectories once per coverage window (cached and
extended on demand), evaluates per-robot first-visit times for an
entire grid with an array kernel, and derives from that matrix exactly
the quantities the per-target paths compute:

* :meth:`BatchEvaluator.search_times` — worst-case ``T_{f+1}(x)`` per
  target (the adversary corrupts the first ``f`` visitors);
* :meth:`BatchEvaluator.detection_times` — detection under an explicit
  crash-detection fault set (column min over reliable robots);
* :meth:`BatchEvaluator.ratio_profile` / :meth:`BatchEvaluator.estimate`
  — ratio profiles and worst-case CR estimates compatible with
  :class:`~repro.simulation.adversary.CompetitiveRatioEstimator`.

The event engine remains the semantic oracle — the parity harness
(:mod:`repro.batch.parity`) and the property suite hold this module to
engine agreement within :mod:`repro.core.tolerance` bounds.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.batch.backend import BatchBackend, get_backend
from repro.batch.compile import (
    DEFAULT_MAX_SEGMENTS,
    CompiledFleet,
    compile_fleet,
)
from repro.errors import InvalidParameterError
from repro.observability import instrument as obs
from repro.robots.fleet import Fleet
from repro.simulation.metrics import (
    CompetitiveRatioEstimate,
    RatioProfile,
    RatioSample,
)

__all__ = ["BatchEvaluator"]


def _resolve_fleet(source, fault_budget: Optional[int]):
    """Source-to-fleet resolution shared with ``measure_competitive_ratio``."""
    if isinstance(source, Fleet):
        return source, fault_budget
    if hasattr(source, "build"):
        budget = fault_budget if fault_budget is not None else source.f
        return Fleet.from_algorithm(source), budget
    return Fleet.from_trajectories(source), fault_budget


class BatchEvaluator:
    """Evaluate search times over whole target grids without the engine.

    Attributes:
        fleet: The robots under evaluation (crash-detection semantics:
            a faulty robot traverses but never detects).
        fault_budget: Default worst-case fault count ``f`` used by
            :meth:`search_times` and the ratio methods.
        backend: The kernel backend in use (resolved at construction).

    Args:
        source: A :class:`~repro.robots.fleet.Fleet`, a
            :class:`~repro.schedule.base.SearchAlgorithm`, or an
            iterable of trajectories.
        fault_budget: Defaults to the algorithm's own ``f`` when
            ``source`` is an algorithm; otherwise required.
        backend: ``"pure"``, ``"numpy"``, a
            :class:`~repro.batch.backend.BatchBackend` instance, or
            ``None`` to auto-select (numpy when installed).
        max_segments: Per-trajectory compile budget, forwarded to
            :func:`~repro.batch.compile.compile_trajectory`.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> evaluator = BatchEvaluator(ProportionalAlgorithm(3, 1))
        >>> times = evaluator.search_times([1.0, -2.0, 4.0])
        >>> len(times)
        3
        >>> times[0] > 1.0
        True
    """

    def __init__(
        self,
        source,
        fault_budget: Optional[int] = None,
        backend: Union[BatchBackend, str, None] = None,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ) -> None:
        fleet, budget = _resolve_fleet(source, fault_budget)
        if budget is None:
            raise InvalidParameterError(
                "fault_budget is required when source is not a SearchAlgorithm"
            )
        if budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {budget}"
            )
        self.fleet = fleet
        self.fault_budget = int(budget)
        self.backend = (
            backend if isinstance(backend, BatchBackend) else get_backend(backend)
        )
        self.max_segments = max_segments
        self._compiled: Optional[CompiledFleet] = None

    # ------------------------------------------------------------------
    # compilation cache
    # ------------------------------------------------------------------

    def _compiled_for(self, targets: Sequence[float]) -> CompiledFleet:
        """The cached compiled fleet, extended to cover ``targets``."""
        lo = min(min(targets), 0.0)
        hi = max(max(targets), 0.0)
        cached = self._compiled
        if cached is not None and cached.window_lo <= lo and hi <= cached.window_hi:
            return cached
        if cached is not None:
            lo = min(lo, cached.window_lo)
            hi = max(hi, cached.window_hi)
        with obs.span(
            "batch.compile", n=self.fleet.size, window_lo=lo, window_hi=hi
        ) as sp:
            compiled = compile_fleet(
                self.fleet.trajectories, lo, hi, max_segments=self.max_segments
            )
            sp.set(segments=compiled.segment_count)
        obs.count("batch_compiles_total")
        self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # grid evaluation
    # ------------------------------------------------------------------

    def _matrix(self, targets: Sequence[float]):
        """Backend visit matrix plus the sort permutation of ``targets``."""
        xs = [float(x) for x in targets]
        if not xs:
            raise InvalidParameterError("targets must be non-empty")
        for x in xs:
            if not math.isfinite(x):
                raise InvalidParameterError(
                    f"targets must be finite, got {x!r}"
                )
        order = sorted(range(len(xs)), key=xs.__getitem__)
        xs_sorted = [xs[i] for i in order]
        compiled = self._compiled_for(xs_sorted)
        matrix = self.backend.first_visit_matrix(compiled, xs_sorted)
        return matrix, order

    @staticmethod
    def _unsorted(row: List[float], order: List[int]) -> List[float]:
        out = [math.inf] * len(order)
        for sorted_pos, original in enumerate(order):
            out[original] = row[sorted_pos]
        return out

    def search_times(
        self,
        targets: Sequence[float],
        fault_budget: Optional[int] = None,
    ) -> List[float]:
        """Worst-case detection time ``T_{f+1}(x)`` for each target.

        Equals ``Fleet.worst_case_detection_time`` per target: the
        ``(f+1)``-st distinct first-visit time, ``inf`` when fewer than
        ``f+1`` robots ever arrive.  Output is aligned with the input
        grid (any order, duplicates allowed).

        Examples:
            >>> from repro.trajectory import LinearTrajectory
            >>> evaluator = BatchEvaluator(
            ...     [LinearTrajectory(1), LinearTrajectory(1)], fault_budget=1
            ... )
            >>> evaluator.search_times([3.0, -1.0])
            [3.0, inf]
        """
        budget = self.fault_budget if fault_budget is None else fault_budget
        if budget < 0:
            raise InvalidParameterError(
                f"fault budget must be >= 0, got {budget}"
            )
        with obs.span(
            "batch.evaluate",
            points=len(targets),
            backend=self.backend.name,
            kind="search_times",
        ):
            matrix, order = self._matrix(targets)
            row = self.backend.kth_smallest(matrix, budget + 1)
        obs.count("batch_points_total", len(targets))
        return self._unsorted(row, order)

    def detection_times(
        self, targets: Sequence[float], faulty: Iterable[int]
    ) -> List[float]:
        """Detection time per target under an explicit fault set.

        ``faulty`` robots are crash-detection faulty (they traverse but
        never detect); each target's detection time is the earliest
        first visit by a reliable robot, ``inf`` when none arrives.

        Examples:
            >>> from repro.trajectory import LinearTrajectory
            >>> evaluator = BatchEvaluator(
            ...     [LinearTrajectory(1), LinearTrajectory(-1)], fault_budget=0
            ... )
            >>> evaluator.detection_times([2.0, -2.0], faulty={0})
            [inf, 2.0]
        """
        excluded: Set[int] = set(faulty)
        out_of_range = {
            i for i in excluded if i < 0 or i >= self.fleet.size
        }
        if out_of_range:
            raise InvalidParameterError(
                f"fault indices out of range: {sorted(out_of_range)}"
            )
        with obs.span(
            "batch.evaluate",
            points=len(targets),
            backend=self.backend.name,
            kind="detection_times",
        ):
            matrix, order = self._matrix(targets)
            row = self.backend.min_excluding(matrix, excluded)
        obs.count("batch_points_total", len(targets))
        return self._unsorted(row, order)

    # ------------------------------------------------------------------
    # ratio interfaces (drop-in for the estimator outputs)
    # ------------------------------------------------------------------

    def ratio_profile(
        self,
        targets: Sequence[float],
        fault_budget: Optional[int] = None,
    ) -> RatioProfile:
        """``K(x) = T_{f+1}(x) / |x|`` over an explicit grid.

        Examples:
            >>> from repro.schedule import ProportionalAlgorithm
            >>> evaluator = BatchEvaluator(ProportionalAlgorithm(3, 1))
            >>> profile = evaluator.ratio_profile([1.0, 1.5, 2.0])
            >>> len(profile.samples)
            3
        """
        for x in targets:
            if x == 0.0:
                raise InvalidParameterError(
                    "ratio is undefined at the origin"
                )
        times = self.search_times(targets, fault_budget)
        return RatioProfile(
            [RatioSample(float(x), t) for x, t in zip(targets, times)]
        )

    def estimate(
        self,
        x_max: float = 200.0,
        min_distance: float = 1.0,
        grid_points: int = 64,
        turn_horizon_factor: float = 8.0,
    ) -> CompetitiveRatioEstimate:
        """Worst-case competitive ratio over the estimator's probe set.

        Uses the exact candidate-target generation of
        :class:`~repro.simulation.adversary.CompetitiveRatioEstimator`
        (boundaries, just-past-turning-point probes, geometric safety
        grid) but evaluates the whole probe set through the batch
        kernels in one pass.

        Examples:
            >>> from repro.schedule import ProportionalAlgorithm
            >>> alg = ProportionalAlgorithm(3, 1)
            >>> est = BatchEvaluator(alg).estimate()
            >>> est.matches(alg.theoretical_competitive_ratio())
            True
        """
        from repro.simulation.adversary import CompetitiveRatioEstimator

        estimator = CompetitiveRatioEstimator(
            self.fleet,
            self.fault_budget,
            min_distance=min_distance,
            x_max=x_max,
            grid_points=grid_points,
            turn_horizon_factor=turn_horizon_factor,
        )
        targets = estimator.candidate_targets()
        profile = self.ratio_profile(targets)
        witness = profile.supremum
        return CompetitiveRatioEstimate(
            value=witness.ratio,
            witness=witness,
            samples_evaluated=len(profile.samples),
            x_max=x_max,
        )

    def describe(self) -> str:
        """One-line summary."""
        compiled = self._compiled
        cache = compiled.describe() if compiled is not None else "not compiled"
        return (
            f"BatchEvaluator(n={self.fleet.size}, f={self.fault_budget}, "
            f"backend={self.backend.name}, {cache})"
        )
