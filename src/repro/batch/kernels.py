"""Dependency-free array kernels over compiled segment arrays.

The pure-Python kernels here are the reference implementation of batch
visit-time evaluation; the numpy backend re-expresses the *same*
selection rule and the *same* crossing arithmetic with array primitives,
so the two are bit-for-bit identical on every input.

The first-visit kernel exploits the geometry of a continuous path: the
set of positions swept by any prefix of the path is a contiguous
interval around the start.  Walking the segments in time order, each
segment can only assign first-visit times to the targets in the strip it
*newly* covers — the targets between the old envelope edge and the
segment's endpoint.  With the targets sorted once, each target is
touched exactly once, giving ``O(S + T)`` work for ``S`` segments and
``T`` targets instead of the naive ``O(S * T)``.

The kernels reproduce the event path's tolerance rules exactly:

* a target within the engine's start tolerance
  (``|x - start| <= START_RTOL * (1 + |x|)``, the first check of
  :meth:`repro.trajectory.base.Trajectory.first_visit_time`) is visited
  at the start instant;
* a segment covers a target up to :data:`SEG_EPS` beyond its endpoint
  (:meth:`repro.geometry.segment.MotionSegment.covers_position`), and
  the crossing fraction is clamped into the segment — so a target
  sitting one float rounding beyond a turning point is visited at the
  turn, exactly as the engine reports it.

The crossing time inside a segment is always computed as

    ``frac = (x - x0) / (x1 - x0)``, clamped to at most ``1``, then
    ``t0 + frac * (t1 - t0)``

— division first, in this exact operand order — which is the same
expression (and the same rounding) as
:meth:`repro.geometry.segment.MotionSegment.visit_time` and as the numpy
backend's vectorized form.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Sequence, Set

from repro.errors import InvalidParameterError

__all__ = [
    "SEG_EPS",
    "START_RTOL",
    "first_visit_row",
    "kth_smallest_per_column",
    "min_excluding_rows",
]

#: Absolute positional slack of one segment, matching
#: ``repro.geometry.segment._EPS`` (``covers_position``).
SEG_EPS = 1e-12

#: Relative start tolerance, matching ``repro.trajectory.base._EPS``
#: (the start check of ``Trajectory.first_visit_time``).
START_RTOL = 1e-9


def first_visit_row(compiled, xs_sorted: Sequence[float]) -> List[float]:
    """First-visit time of each target for one compiled trajectory.

    Args:
        compiled: A :class:`~repro.batch.compile.CompiledTrajectory`.
        xs_sorted: Target positions in ascending order.

    Returns:
        Times aligned with ``xs_sorted``; ``math.inf`` for targets the
        compiled prefix never reaches.  A target exactly equal to the
        start position gets the start time.

    Examples:
        >>> from repro.batch.compile import compile_trajectory
        >>> from repro.trajectory import DoublingTrajectory
        >>> c = compile_trajectory(DoublingTrajectory(), -4.0, 4.0)
        >>> first_visit_row(c, [-1.0, 0.0, 1.0, 2.0])
        [3.0, 0.0, 1.0, 8.0]
    """
    n = len(xs_sorted)
    times = [math.inf] * n
    s = compiled.start_position
    # Engine start rule: targets within the relative start tolerance are
    # visited at the start instant.  The predicate is monotone away from
    # the start, so the matching targets are one contiguous run.
    anchor = bisect_left(xs_sorted, s)
    lo_idx = anchor
    while lo_idx > 0 and abs(xs_sorted[lo_idx - 1] - s) <= START_RTOL * (
        1.0 + abs(xs_sorted[lo_idx - 1])
    ):
        lo_idx -= 1
    hi_idx = anchor
    while hi_idx < n and abs(xs_sorted[hi_idx] - s) <= START_RTOL * (
        1.0 + abs(xs_sorted[hi_idx])
    ):
        hi_idx += 1
    for i in range(lo_idx, hi_idx):
        times[i] = compiled.start_time
    next_up = hi_idx          # first unassigned target above the start
    next_dn = lo_idx - 1      # last unassigned target below the start
    env_lo = env_hi = s
    x0s, t0s, x1s, t1s = compiled.x0, compiled.t0, compiled.x1, compiled.t1
    for j in range(len(x0s)):
        x0 = x0s[j]
        x1 = x1s[j]
        if x1 > env_hi:
            t0 = t0s[j]
            dt = t1s[j] - t0
            dx = x1 - x0
            while next_up < n and xs_sorted[next_up] - SEG_EPS <= x1:
                frac = (xs_sorted[next_up] - x0) / dx
                if frac > 1.0:
                    frac = 1.0
                times[next_up] = t0 + frac * dt
                next_up += 1
            env_hi = x1
        elif x1 < env_lo:
            t0 = t0s[j]
            dt = t1s[j] - t0
            dx = x1 - x0
            while next_dn >= 0 and xs_sorted[next_dn] + SEG_EPS >= x1:
                frac = (xs_sorted[next_dn] - x0) / dx
                if frac > 1.0:
                    frac = 1.0
                times[next_dn] = t0 + frac * dt
                next_dn -= 1
            env_lo = x1
        if next_up >= n and next_dn < 0:
            break
    return times


def kth_smallest_per_column(
    rows: Sequence[Sequence[float]], k: int
) -> List[float]:
    """The ``k``-th smallest value down each column of a row-major matrix.

    With rows = per-robot first-visit times, column ``j``'s result is the
    ``k``-th distinct-robot visit time of target ``j`` — ``k = f + 1``
    gives the paper's ``T_{f+1}``.  ``inf`` entries (never-visits) sort
    last, so a column with fewer than ``k`` finite entries yields ``inf``
    exactly as :func:`repro.trajectory.visits.kth_distinct_visit_time`
    does.

    Examples:
        >>> kth_smallest_per_column([[1.0, 5.0], [3.0, 2.0]], 2)
        [3.0, 5.0]
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not rows:
        raise InvalidParameterError("need at least one row")
    if k > len(rows):
        return [math.inf] * len(rows[0])
    width = len(rows[0])
    out = [math.inf] * width
    for j in range(width):
        column = sorted(row[j] for row in rows)
        out[j] = column[k - 1]
    return out


def min_excluding_rows(
    rows: Sequence[Sequence[float]], excluded: Set[int]
) -> List[float]:
    """Column-wise minimum over the rows *not* in ``excluded``.

    With rows = per-robot first-visit times and ``excluded`` = an
    explicit crash-detection fault set, this is the detection time of
    each target: the earliest visit by a reliable robot (``inf`` when no
    reliable robot ever arrives).

    Examples:
        >>> min_excluding_rows([[1.0, 4.0], [2.0, 3.0]], {0})
        [2.0, 3.0]
    """
    if not rows:
        raise InvalidParameterError("need at least one row")
    unknown = {i for i in excluded if i < 0 or i >= len(rows)}
    if unknown:
        raise InvalidParameterError(
            f"excluded row indices out of range: {sorted(unknown)}"
        )
    width = len(rows[0])
    out = [math.inf] * width
    for i, row in enumerate(rows):
        if i in excluded:
            continue
        for j in range(width):
            t = row[j]
            if t < out[j]:
                out[j] = t
    return out
