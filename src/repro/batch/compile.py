"""Compile trajectories into flat segment arrays for batch kernels.

The event engine answers "when does robot ``i`` first visit ``x``?" one
target at a time, walking a lazily materialized chain of
:class:`~repro.geometry.segment.MotionSegment` objects.  Batch
evaluation needs the same information for *thousands* of targets at
once, so this module flattens a trajectory's space-time polyline into
four parallel float arrays — ``x0, t0, x1, t1`` per constant-velocity
leg, in time order — that array kernels (pure Python or numpy) can scan
without touching a single Python object per query.

Compilation is coverage-driven: given a target window ``[x_lo, x_hi]``,
segments are materialized until the swept position interval contains
every point of the window the trajectory ever reaches (``covers`` is
consulted, and an analytic bisection bounds the reachable extreme when
the window is only partially coverable), the path ends, or the segment
budget is exhausted.  The resulting :class:`CompiledTrajectory` is plain
data: it can be handed to any backend, cached, or shipped across
processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.batch.kernels import SEG_EPS, START_RTOL
from repro.errors import BatchError, InvalidParameterError
from repro.trajectory.base import Trajectory

__all__ = [
    "CompiledTrajectory",
    "CompiledFleet",
    "compile_trajectory",
    "compile_fleet",
]

#: Default ceiling on segments per trajectory; generous — the geometric
#: growth of every shipped strategy needs O(log(x_hi)) segments.
DEFAULT_MAX_SEGMENTS = 250_000

#: Bisection steps used to bound the reachable extreme of a partially
#: coverable window (enough for full float precision on any sane scale).
_BISECT_STEPS = 120

#: Slack when comparing the swept interval against a coverage bound —
#: the same per-segment positional slack the kernels (and the engine's
#: ``MotionSegment.covers_position``) apply, so every target the
#: envelope is allowed to stop short of is still assigned a clamped
#: visit time by the kernels.
_COVER_EPS = SEG_EPS


@dataclass(frozen=True)
class CompiledTrajectory:
    """A trajectory flattened to parallel segment arrays.

    Attributes:
        x0, t0: Per-segment start position and time, in time order.
        x1, t1: Per-segment end position and time.
        start_position: Position of the first vertex (origin for all
            paper algorithms).
        start_time: Time of the first vertex.
        swept_lo, swept_hi: The position interval actually swept by the
            compiled prefix; first-visit queries are exact inside it.
        window_lo, window_hi: The coverage window the compilation was
            asked to serve; queries outside it are out of contract.
        exhausted: Whether the underlying path was observed to end while
            compiling.  Compilation stops as soon as the window is
            served, so a finite path whose coverage was reached early
            may still report ``False``.

    Examples:
        >>> from repro.trajectory import DoublingTrajectory
        >>> compiled = compile_trajectory(DoublingTrajectory(), -4.0, 4.0)
        >>> compiled.segment_count >= 4
        True
        >>> compiled.first_visit(-1.0)
        3.0
    """

    x0: Tuple[float, ...]
    t0: Tuple[float, ...]
    x1: Tuple[float, ...]
    t1: Tuple[float, ...]
    start_position: float
    start_time: float
    swept_lo: float
    swept_hi: float
    window_lo: float
    window_hi: float
    exhausted: bool

    @property
    def segment_count(self) -> int:
        """Number of compiled constant-velocity legs."""
        return len(self.x0)

    def check_window(self, x_lo: float, x_hi: float) -> bool:
        """Whether ``[x_lo, x_hi]`` lies inside the compiled window."""
        return self.window_lo <= x_lo and x_hi <= self.window_hi

    def first_visit(self, x: float) -> float:
        """Reference scalar query: earliest visit of ``x`` (``inf`` if
        the compiled prefix never reaches it).

        Mirrors the engine's tolerance rules segment by segment —
        :meth:`~repro.trajectory.base.Trajectory.first_visit_time`'s
        relative start check, then the first segment covering ``x``
        within ``SEG_EPS`` with the crossing fraction clamped into the
        segment.  This is the semantic ground truth the array kernels
        must match; tests compare both backends against it.
        """
        if abs(x - self.start_position) <= START_RTOL * (1.0 + abs(x)):
            return self.start_time
        for x0, t0, x1, t1 in zip(self.x0, self.t0, self.x1, self.t1):
            lo, hi = (x0, x1) if x0 <= x1 else (x1, x0)
            if lo - SEG_EPS <= x <= hi + SEG_EPS:
                dx = x1 - x0
                if abs(dx) <= SEG_EPS:
                    return t0
                frac = (x - x0) / dx
                frac = min(max(frac, 0.0), 1.0)
                return t0 + frac * (t1 - t0)
        return math.inf

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"CompiledTrajectory({self.segment_count} segments, "
            f"swept [{self.swept_lo:g}, {self.swept_hi:g}], "
            f"{'finite' if self.exhausted else 'prefix'})"
        )


@dataclass(frozen=True)
class CompiledFleet:
    """All trajectories of a fleet compiled over one shared window."""

    trajectories: Tuple[CompiledTrajectory, ...]
    window_lo: float
    window_hi: float

    @property
    def size(self) -> int:
        """Number of robots."""
        return len(self.trajectories)

    @property
    def segment_count(self) -> int:
        """Total compiled segments across the fleet."""
        return sum(c.segment_count for c in self.trajectories)

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"CompiledFleet({self.size} robots, "
            f"{self.segment_count} segments, "
            f"window [{self.window_lo:g}, {self.window_hi:g}])"
        )


def _reachable_extreme(
    trajectory: Trajectory, start: float, limit: float
) -> float:
    """How far toward ``limit`` the trajectory ever reaches.

    The set of positions a continuous path ever visits is an interval
    containing its start, so ``covers`` is monotone along the ray from
    ``start`` to ``limit`` and the reachable extreme can be bisected.
    """
    if trajectory.covers(limit):
        return limit
    lo, hi = start, limit  # covers(lo) is True (the start is visited)
    for _ in range(_BISECT_STEPS):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:
            break
        if trajectory.covers(mid):
            lo = mid
        else:
            hi = mid
    return lo


def compile_trajectory(
    trajectory: Trajectory,
    x_lo: float,
    x_hi: float,
    max_segments: int = DEFAULT_MAX_SEGMENTS,
) -> CompiledTrajectory:
    """Flatten ``trajectory`` into segment arrays covering ``[x_lo, x_hi]``.

    Materializes the lazy path until its swept interval contains every
    point of the window the trajectory ever reaches (or the path ends).
    First-visit queries for targets inside the window are then exact:
    covered targets fall inside a compiled segment, uncovered targets
    are provably never visited.

    Args:
        trajectory: Any :class:`~repro.trajectory.base.Trajectory`.
        x_lo, x_hi: The target window the compiled arrays must serve.
        max_segments: Guard against pathological paths; exceeding it
            raises :class:`~repro.errors.BatchError`.

    Raises:
        InvalidParameterError: on a malformed window.
        BatchError: when the segment budget is exhausted before the
            window is covered.

    Examples:
        >>> from repro.trajectory import LinearTrajectory
        >>> right = compile_trajectory(LinearTrajectory(1), -10.0, 10.0)
        >>> right.swept_hi >= 10.0
        True
        >>> right.swept_lo
        0.0
    """
    if not isinstance(trajectory, Trajectory):
        raise InvalidParameterError(
            f"trajectory must be a Trajectory, got {trajectory!r}"
        )
    if not (math.isfinite(x_lo) and math.isfinite(x_hi)):
        raise InvalidParameterError(
            f"window bounds must be finite, got [{x_lo!r}, {x_hi!r}]"
        )
    if x_hi < x_lo:
        raise InvalidParameterError(
            f"window is reversed: x_lo={x_lo!r} > x_hi={x_hi!r}"
        )
    if max_segments < 1:
        raise InvalidParameterError(
            f"max_segments must be >= 1, got {max_segments}"
        )

    start = trajectory.start
    s = start.position
    # The coverage the compiled prefix must attain on each side of the
    # start: the window edge when reachable, else the bisected extreme.
    need_hi = _reachable_extreme(trajectory, s, x_hi) if x_hi > s else s
    need_lo = _reachable_extreme(trajectory, s, x_lo) if x_lo < s else s

    def satisfied(lo: float, hi: float) -> bool:
        return hi >= need_hi - _COVER_EPS and lo <= need_lo + _COVER_EPS

    horizon = max(1.0, abs(start.time))
    swept_lo = swept_hi = s
    while True:
        segments = trajectory.materialized_segments()
        for seg in segments:
            swept_lo = min(swept_lo, seg.end.position)
            swept_hi = max(swept_hi, seg.end.position)
        if satisfied(swept_lo, swept_hi):
            break
        if trajectory.is_finite:
            break
        if len(segments) > max_segments:
            raise BatchError(
                f"{trajectory.describe()} needs more than {max_segments} "
                f"segments to cover [{x_lo:g}, {x_hi:g}]"
            )
        trajectory.ensure_time(horizon)
        if len(trajectory.materialized_segments()) == len(segments):
            # the horizon produced nothing new: double until it does,
            # or the path proves finite
            trajectory.ensure_segments(len(segments) + 1)
        horizon *= 2.0

    # Keep only the prefix needed for the window: segments after the
    # sweep first satisfies the requirement add nothing for first-visit
    # queries inside the window.
    x0: List[float] = []
    t0: List[float] = []
    x1: List[float] = []
    t1: List[float] = []
    lo = hi = s
    for seg in trajectory.materialized_segments():
        x0.append(seg.start.position)
        t0.append(seg.start.time)
        x1.append(seg.end.position)
        t1.append(seg.end.time)
        lo = min(lo, seg.end.position)
        hi = max(hi, seg.end.position)
        if satisfied(lo, hi):
            break

    return CompiledTrajectory(
        x0=tuple(x0),
        t0=tuple(t0),
        x1=tuple(x1),
        t1=tuple(t1),
        start_position=s,
        start_time=start.time,
        swept_lo=lo,
        swept_hi=hi,
        window_lo=x_lo,
        window_hi=x_hi,
        exhausted=trajectory.is_finite,
    )


def compile_fleet(
    trajectories: Iterable[Trajectory],
    x_lo: float,
    x_hi: float,
    max_segments: int = DEFAULT_MAX_SEGMENTS,
) -> CompiledFleet:
    """Compile every trajectory of a fleet over one shared window.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> fleet = compile_fleet(ProportionalAlgorithm(3, 1).build(), -8, 8)
        >>> fleet.size
        3
    """
    compiled = tuple(
        compile_trajectory(traj, x_lo, x_hi, max_segments=max_segments)
        for traj in trajectories
    )
    if not compiled:
        raise InvalidParameterError("fleet must contain at least one trajectory")
    return CompiledFleet(
        trajectories=compiled, window_lo=x_lo, window_hi=x_hi
    )
