"""Backend dispatch: one kernel contract, two implementations.

The batch subsystem must work in two worlds:

* a **bare venv** — the library's core has no dependencies
  (``pyproject.toml`` ships an empty ``dependencies`` list), so the
  :class:`PureBackend` implements every kernel in dependency-free
  Python;
* a **scientific venv** — when the ``scientific`` extra (numpy) is
  installed, :class:`NumpyBackend` evaluates the same kernels with
  vectorized primitives and is auto-selected by :func:`get_backend`.

Both backends implement the *same selection rule* (first segment whose
running positional envelope reaches the target — via a sorted sweep in
pure Python, via ``searchsorted`` on the cumulative max/min in numpy)
and the *same crossing expression* with the same operand order, so
their outputs are bit-for-bit identical, not merely close.  The
snapshot tests in ``tests/batch/test_backends.py`` pin this.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.batch.compile import CompiledFleet
from repro.batch.kernels import (
    SEG_EPS,
    START_RTOL,
    first_visit_row,
    kth_smallest_per_column,
    min_excluding_rows,
)
from repro.errors import BatchError, InvalidParameterError

__all__ = [
    "BatchBackend",
    "PureBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
]

#: Cached numpy module (or False after a failed import attempt).
_NUMPY: Any = None


def _numpy_module():
    """Import numpy once; return the module or ``None``."""
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy  # type: ignore[import-not-found]

            _NUMPY = numpy
        except ImportError:
            _NUMPY = False
    return _NUMPY or None


class BatchBackend(ABC):
    """Kernel contract shared by every backend.

    A backend turns a :class:`~repro.batch.compile.CompiledFleet` and a
    sorted target grid into an opaque *visit matrix* (one row per robot,
    one column per target) and answers order-statistic queries on it.
    The matrix type is backend-private; callers only ever see plain
    ``List[float]`` rows, with ``math.inf`` marking never-visits.
    """

    #: Stable identifier used by :func:`get_backend` and reports.
    name: str = "?"

    @abstractmethod
    def first_visit_matrix(
        self, fleet: CompiledFleet, xs_sorted: Sequence[float]
    ) -> Any:
        """Per-robot first-visit times over the sorted grid (opaque)."""

    @abstractmethod
    def kth_smallest(self, matrix: Any, k: int) -> List[float]:
        """Column-wise ``k``-th smallest — ``T_k`` per target."""

    @abstractmethod
    def min_excluding(self, matrix: Any, excluded: Set[int]) -> List[float]:
        """Column-wise min over non-excluded rows — detection times
        under an explicit crash-detection fault set."""

    @abstractmethod
    def row(self, matrix: Any, index: int) -> List[float]:
        """One robot's first-visit times as a plain float list."""

    def describe(self) -> str:
        """One-line summary."""
        return f"{type(self).__name__}(name={self.name!r})"


class PureBackend(BatchBackend):
    """Dependency-free reference backend (always available).

    Examples:
        >>> from repro.batch.compile import compile_fleet
        >>> from repro.trajectory import LinearTrajectory
        >>> fleet = compile_fleet(
        ...     [LinearTrajectory(1), LinearTrajectory(-1)], -4.0, 4.0
        ... )
        >>> backend = PureBackend()
        >>> m = backend.first_visit_matrix(fleet, [-2.0, 3.0])
        >>> backend.kth_smallest(m, 1)
        [2.0, 3.0]
        >>> backend.kth_smallest(m, 2)
        [inf, inf]
    """

    name = "pure"

    def first_visit_matrix(
        self, fleet: CompiledFleet, xs_sorted: Sequence[float]
    ) -> List[List[float]]:
        return [
            first_visit_row(compiled, xs_sorted)
            for compiled in fleet.trajectories
        ]

    def kth_smallest(self, matrix: List[List[float]], k: int) -> List[float]:
        return kth_smallest_per_column(matrix, k)

    def min_excluding(
        self, matrix: List[List[float]], excluded: Set[int]
    ) -> List[float]:
        return min_excluding_rows(matrix, excluded)

    def row(self, matrix: List[List[float]], index: int) -> List[float]:
        return list(matrix[index])


class NumpyBackend(BatchBackend):
    """Vectorized backend; requires the ``scientific`` extra.

    Selection is expressed with ``searchsorted`` on the cumulative
    positional envelope: for a target above the start, the first segment
    whose running max reaches it is the first segment ever to sweep it —
    and because the cumulative max *strictly increased* there, that
    segment's own endpoints straddle the target, so the shared crossing
    expression is division-safe.  Symmetrically below the start via the
    cumulative min.
    """

    name = "numpy"

    def __init__(self) -> None:
        np = _numpy_module()
        if np is None:
            raise BatchError(
                "numpy backend requested but numpy is not installed; "
                "install the 'scientific' extra or use backend='pure'"
            )
        self._np = np

    def first_visit_matrix(
        self, fleet: CompiledFleet, xs_sorted: Sequence[float]
    ) -> Any:
        np = self._np
        xs = np.asarray(xs_sorted, dtype=np.float64)
        return np.vstack(
            [self._first_visit_array(c, xs) for c in fleet.trajectories]
        )

    def _first_visit_array(self, compiled, xs) -> Any:
        np = self._np
        times = np.full(xs.shape, np.inf, dtype=np.float64)
        s = compiled.start_position
        # Same start rule and the same float expression as the pure
        # kernel (and the engine): relative tolerance around the start.
        at_start = np.abs(xs - s) <= START_RTOL * (1.0 + np.abs(xs))
        times[at_start] = compiled.start_time
        count = compiled.segment_count
        if count == 0:
            return times
        x0 = np.asarray(compiled.x0, dtype=np.float64)
        t0 = np.asarray(compiled.t0, dtype=np.float64)
        x1 = np.asarray(compiled.x1, dtype=np.float64)
        t1 = np.asarray(compiled.t1, dtype=np.float64)
        upper = np.maximum.accumulate(x1)
        lower = np.minimum.accumulate(x1)
        above = (xs > s) & ~at_start
        if above.any():
            x = xs[above]
            # First segment whose running max reaches x - SEG_EPS: the
            # identical predicate (same rounding) as the pure kernel's
            # `xs[next_up] - SEG_EPS <= x1`.
            j = np.searchsorted(upper, x - SEG_EPS, side="left")
            hit = j < count
            jj = j[hit]
            t = np.full(x.shape, np.inf, dtype=np.float64)
            frac = (x[hit] - x0[jj]) / (x1[jj] - x0[jj])
            frac = np.minimum(frac, 1.0)
            t[hit] = t0[jj] + frac * (t1[jj] - t0[jj])
            times[above] = t
        below = (xs < s) & ~at_start
        if below.any():
            x = xs[below]
            j = np.searchsorted(-lower, -(x + SEG_EPS), side="left")
            hit = j < count
            jj = j[hit]
            t = np.full(x.shape, np.inf, dtype=np.float64)
            frac = (x[hit] - x0[jj]) / (x1[jj] - x0[jj])
            frac = np.minimum(frac, 1.0)
            t[hit] = t0[jj] + frac * (t1[jj] - t0[jj])
            times[below] = t
        return times

    def kth_smallest(self, matrix: Any, k: int) -> List[float]:
        np = self._np
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if k > matrix.shape[0]:
            return [math.inf] * matrix.shape[1]
        return np.sort(matrix, axis=0)[k - 1].tolist()

    def min_excluding(self, matrix: Any, excluded: Set[int]) -> List[float]:
        np = self._np
        unknown = {i for i in excluded if i < 0 or i >= matrix.shape[0]}
        if unknown:
            raise InvalidParameterError(
                f"excluded row indices out of range: {sorted(unknown)}"
            )
        if len(excluded) == matrix.shape[0]:
            return [math.inf] * matrix.shape[1]
        keep = [i for i in range(matrix.shape[0]) if i not in excluded]
        return np.min(matrix[keep], axis=0).tolist()

    def row(self, matrix: Any, index: int) -> List[float]:
        return matrix[index].tolist()


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable in this environment.

    ``"pure"`` is always present; ``"numpy"`` appears when the
    ``scientific`` extra is importable.

    Examples:
        >>> "pure" in available_backends()
        True
    """
    names = ["pure"]
    if _numpy_module() is not None:
        names.append("numpy")
    return tuple(names)


def get_backend(name: Optional[str] = None) -> BatchBackend:
    """Resolve a backend by name, or auto-select the fastest available.

    Args:
        name: ``"pure"``, ``"numpy"``, or ``None`` for auto-selection
            (numpy when importable, pure otherwise).

    Raises:
        BatchError: when ``"numpy"`` is requested but not installed.
        InvalidParameterError: on an unknown name.

    Examples:
        >>> get_backend("pure").name
        'pure'
        >>> get_backend().name in available_backends()
        True
    """
    if name is None:
        return NumpyBackend() if _numpy_module() is not None else PureBackend()
    if name == "pure":
        return PureBackend()
    if name == "numpy":
        return NumpyBackend()
    raise InvalidParameterError(
        f"unknown batch backend {name!r}; available: "
        f"{', '.join(available_backends())}"
    )
