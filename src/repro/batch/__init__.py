"""Batch evaluation: visit-time kernels over compiled segment arrays.

Every sweep, campaign, and ratio profile in this library reduces to the
question "when does the ``(f+1)``-st distinct robot reach target ``x``?"
The event engine answers it one target at a time; this subsystem
answers it for whole grids at once:

* :mod:`repro.batch.compile` flattens lazy trajectories into plain
  segment arrays (:func:`compile_trajectory`, :func:`compile_fleet`);
* :mod:`repro.batch.kernels` holds the dependency-free reference
  kernels (envelope first-visit sweep, column order statistics);
* :mod:`repro.batch.backend` dispatches between the pure-Python
  backend (always available) and the numpy backend (auto-selected with
  the ``scientific`` extra) — bit-for-bit identical by construction;
* :mod:`repro.batch.evaluate` is the high-level entry point
  (:class:`BatchEvaluator`);
* :mod:`repro.batch.parity` replays seeded grids through both the
  kernels and :class:`~repro.simulation.engine.SearchSimulation` and
  asserts agreement — the engine stays the oracle, batch is the fast
  path (opt-in via ``method="batch"`` in the sweeps and campaigns).

Quickstart::

    from repro.batch import BatchEvaluator
    from repro.schedule import ProportionalAlgorithm

    evaluator = BatchEvaluator(ProportionalAlgorithm(3, 1))
    times = evaluator.search_times([1.0, -2.5, 4.0])   # T_{f+1} per target
    profile = evaluator.ratio_profile([1.0, -2.5, 4.0])
"""

from repro.batch.backend import (
    BatchBackend,
    NumpyBackend,
    PureBackend,
    available_backends,
    get_backend,
)
from repro.batch.compile import (
    CompiledFleet,
    CompiledTrajectory,
    compile_fleet,
    compile_trajectory,
)
from repro.batch.evaluate import BatchEvaluator
from repro.batch.parity import ParityCase, ParityReport, run_parity_harness

__all__ = [
    "BatchBackend",
    "BatchEvaluator",
    "CompiledFleet",
    "CompiledTrajectory",
    "NumpyBackend",
    "ParityCase",
    "ParityReport",
    "PureBackend",
    "available_backends",
    "compile_fleet",
    "compile_trajectory",
    "get_backend",
    "run_parity_harness",
]
