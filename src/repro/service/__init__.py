"""Search-as-a-service: a fault-tolerant concurrent front-end.

The rest of the library is batch: build scenarios, run them, read a
report.  This package turns that into a *system that takes traffic* —
a long-running threaded HTTP server (stdlib only) through which many
simultaneous clients submit scenarios and campaigns, poll or stream
progress, and fetch results, with the same robustness story the paper
demands of its robots:

* **Bounded admission** — a fixed-capacity queue in front of the
  workers; when it is full, submissions get an explicit ``overloaded``
  rejection immediately instead of queueing without bound
  (:mod:`repro.service.queueing`).
* **Per-client rate limiting** — token buckets keyed by client id
  (:mod:`repro.service.ratelimit`).
* **Deadlines** — every job carries one; expired jobs are cancelled,
  queued or mid-campaign, and the remaining budget propagates into the
  :class:`~repro.robustness.executor.CampaignExecutor` watchdog.
* **Result caching** — an LRU keyed by the journal's ``scenario_key``
  fingerprint serves repeated scenarios without recomputation
  (:mod:`repro.service.cache`).
* **Graceful drain** — SIGTERM stops admission, checkpoints every
  in-flight campaign's journal, and exits 0; nothing is torn.
* **Crash-safe restart** — ``kill -9`` loses at most the scenarios in
  flight; restarting on the same state directory requeues interrupted
  jobs and resumes them byte-identically from their JSONL journals,
  serving already-computed scenarios from the warmed cache.

Quickstart::

    linesearch serve --state-dir state --port 8080

    from repro.service import ServiceClient
    client = ServiceClient("127.0.0.1", 8080)
    job = client.submit_campaign(pairs=[(3, 1)], targets=[1.0, -2.0])
    report = client.wait(job["job_id"])
"""

from repro.service.cache import ResultCache
from repro.service.chaos import ChaosReport, run_service_chaos
from repro.service.client import ServiceClient
from repro.service.protocol import (
    ERROR_CODES,
    JOB_STATES,
    PROTOCOL_VERSION,
    ServiceError,
    Submission,
    parse_submission,
)
from repro.service.queueing import AdmissionQueue, Job, JobRegistry
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import LineSearchService, ServiceConfig

__all__ = [
    "ERROR_CODES",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "AdmissionQueue",
    "ChaosReport",
    "Job",
    "JobRegistry",
    "LineSearchService",
    "RateLimiter",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Submission",
    "TokenBucket",
    "parse_submission",
    "run_service_chaos",
]
