"""Per-client token-bucket rate limiting for the serving layer.

A :class:`TokenBucket` holds up to ``capacity`` tokens and refills at
``refill_rate`` tokens per second; each admission costs one token.
Bursts up to ``capacity`` are allowed, sustained throughput converges
to ``refill_rate``.  The :class:`RateLimiter` keeps one bucket per
client id, bounded: the least-recently-seen client's bucket is evicted
once ``max_clients`` distinct ids have been seen, so an adversary
minting client ids cannot grow server memory without bound.

Both classes validate their configuration at construction — a
zero-capacity bucket or a non-positive refill rate would otherwise
deny (or admit) everything silently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict

from repro.errors import InvalidParameterError

__all__ = ["RateLimiter", "TokenBucket"]


class TokenBucket:
    """A classic token bucket over a monotonic clock.

    Examples:
        >>> clock = [0.0]
        >>> bucket = TokenBucket(capacity=2, refill_rate=1.0,
        ...                      clock=lambda: clock[0])
        >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
        (True, True, False)
        >>> clock[0] = 1.0   # one second later: one token back
        >>> bucket.try_acquire()
        True
    """

    __slots__ = ("capacity", "refill_rate", "_clock", "_tokens", "_stamp",
                 "_lock")

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise InvalidParameterError(
                f"token bucket capacity must be positive, got {capacity!r}"
            )
        if refill_rate <= 0:
            raise InvalidParameterError(
                f"token bucket refill_rate must be positive, "
                f"got {refill_rate!r}"
            )
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.refill_rate
        )

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token count (after refill), for introspection."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def seconds_until(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` are available (0 when they already are).

        Examples:
            >>> clock = [0.0]
            >>> bucket = TokenBucket(capacity=1, refill_rate=0.5,
            ...                      clock=lambda: clock[0])
            >>> _ = bucket.try_acquire()
            >>> bucket.seconds_until()
            2.0
        """
        with self._lock:
            self._refill(self._clock())
            missing = max(0.0, tokens - self._tokens)
            return missing / self.refill_rate


class RateLimiter:
    """One token bucket per client id, with bounded client tracking.

    Examples:
        >>> limiter = RateLimiter(capacity=1, refill_rate=0.001)
        >>> limiter.allow("alice"), limiter.allow("alice")
        (True, False)
        >>> limiter.allow("bob")   # a different client has its own bucket
        True
    """

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_clients < 1:
            raise InvalidParameterError(
                f"max_clients must be >= 1, got {max_clients!r}"
            )
        # Validate capacity/rate eagerly (not at first request) by
        # constructing a throwaway bucket.
        TokenBucket(capacity, refill_rate, clock=clock)
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def allow(self, client: str) -> bool:
        """Whether ``client`` may submit now; consumes a token if so."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.capacity, self.refill_rate, clock=self._clock
                )
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(client)
        return bucket.try_acquire()

    def retry_after(self, client: str) -> float:
        """Seconds until ``client`` could acquire a token again.

        For a client never seen (or evicted) the bucket would be fresh
        and full, so the wait is 0.
        """
        with self._lock:
            bucket = self._buckets.get(client)
        if bucket is None:
            return 0.0
        return bucket.seconds_until()

    def stats(self) -> Dict[str, Any]:
        """Tracked-client count and configuration, for readiness output."""
        with self._lock:
            return {
                "clients_tracked": len(self._buckets),
                "capacity": self.capacity,
                "refill_per_second": self.refill_rate,
            }
