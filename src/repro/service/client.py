"""A small stdlib HTTP client for the search service.

:class:`ServiceClient` wraps :mod:`urllib.request` around the wire
protocol of :mod:`repro.service.protocol`: submit scenarios or
campaigns, poll jobs, block until completion, stream progress events,
and read health/readiness/metrics.  Server-side refusals
(``overloaded``, ``rate_limited``, ``shutting_down``, ...) surface as
:class:`~repro.service.protocol.ServiceError` with the wire error
code, so callers branch on ``exc.code`` rather than parsing messages.

The client is deliberately thin — by default no retries, no backoff,
no pooling — because the tests and the chaos harness need to observe
the server's raw behaviour (an ``overloaded`` refusal must stay
visible, not be retried away).  Callers that *want* policy opt in with
``max_retries``: admission refusals (``overloaded``/``rate_limited``)
are then retried honoring the server's ``Retry-After`` hint, capped at
``max_backoff`` seconds per sleep.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import LineSearchError
from repro.observability.export import parse_sse
from repro.service.protocol import ERROR_CODES, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one :class:`~repro.service.server.LineSearchService`.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8347"`` (no trailing slash
            needed).
        timeout: socket timeout per request, seconds.
        client_id: the client identity sent with submissions — the
            unit of server-side rate limiting.
        max_retries: how many times to retry an ``overloaded`` or
            ``rate_limited`` refusal before surfacing it.  0 (the
            default) keeps the raw no-retry behaviour.
        max_backoff: cap, in seconds, on any single backoff sleep —
            a server hint above the cap is clamped, not trusted.
    """

    #: Wire codes that mean "try again later", eligible for backoff.
    _RETRYABLE = ("overloaded", "rate_limited")

    def __init__(self, base_url: str, timeout: float = 30.0,
                 client_id: str = "anonymous", max_retries: int = 0,
                 max_backoff: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        self.max_retries = max_retries
        self.max_backoff = max_backoff

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        attempts = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if (exc.code not in self._RETRYABLE
                        or attempts >= self.max_retries):
                    raise
                attempts += 1
                time.sleep(self._backoff_delay(exc, attempts))

    def _backoff_delay(self, exc: ServiceError, attempt: int) -> float:
        """Honor the server's ``Retry-After`` hint, clamped to
        ``max_backoff``; fall back to doubling from 0.1s without one."""
        hint = exc.retry_after
        if hint is None or hint <= 0:
            hint = 0.1 * (2 ** (attempt - 1))
        return min(float(hint), self.max_backoff)

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise _error_from(exc) from None
        except urllib.error.URLError as exc:
            raise ConnectionError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from None

    # -- submission ----------------------------------------------------

    def submit_scenario(self, spec: Dict[str, Any],
                        **options: Any) -> Dict[str, Any]:
        """Submit one scenario spec (``{"n", "f", "target", ...}``).

        Returns the acceptance body: either ``{"cached": true,
        "result": {...}}`` served straight from the result cache, or
        ``{"cached": false, "job_id": ...}`` for a queued job.
        """
        payload = {"spec": spec, "client": self.client_id, **options}
        return self._request("POST", "/v1/scenarios", payload)

    def submit_campaign(self, specs: Optional[List[Dict[str, Any]]] = None,
                        **options: Any) -> Dict[str, Any]:
        """Submit a campaign: an explicit ``specs`` list, or grid
        fields (``pairs=``, ``targets=``, ``faults=``, ``seed=``)
        passed as keyword options."""
        payload: Dict[str, Any] = {"client": self.client_id, **options}
        if specs is not None:
            payload["specs"] = specs
        return self._request("POST", "/v1/campaigns", payload)

    # -- jobs ----------------------------------------------------------

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def poll(self, job_id: str) -> Dict[str, Any]:
        """The job's current state/progress view."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The terminal report envelope; ``conflict`` if not done yet."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_interval: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the report envelope.

        Raises :class:`TimeoutError` if the job is still live after
        ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.poll(job_id)
            if view["state"] in ("done", "failed", "deadline_exceeded"):
                return self.result(job_id)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def stream(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield progress events (JSON objects) until the stream ends.

        The first event is a ``snapshot`` of the job view; the stream
        closes when the job is terminal or the server drains.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise _error_from(exc) from None

    # -- dashboard -----------------------------------------------------

    def dashboard_state(self) -> Dict[str, Any]:
        """The canonical dashboard panel state (see :mod:`repro.dashboard`)."""
        return self._request("GET", "/v1/dashboard/state")

    def dashboard_page(self) -> str:
        """The dashboard HTML document served at ``/v1/dashboard``."""
        request = urllib.request.Request(self.base_url + "/v1/dashboard")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise _error_from(exc) from None

    def dashboard_stream(
        self,
        until_idle: bool = False,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield parsed SSE events from ``/v1/dashboard/stream``.

        Each event is ``{"event", "id", "data"}`` with ``data`` already
        decoded.  With ``until_idle`` the server closes the stream with
        a ``done`` event once the service goes idle; otherwise it runs
        until the consumer disconnects or the server drains.
        """
        path = "/v1/dashboard/stream" + ("?until=idle" if until_idle else "")
        request = urllib.request.Request(
            self.base_url + path,
            headers={"Accept": "text/event-stream"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                block: List[str] = []
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                    if line:
                        block.append(line)
                        continue
                    if block:
                        # one terminated frame: reparse with the shared
                        # SSE parser so client and server agree exactly
                        for event in parse_sse("\n".join(block) + "\n\n"):
                            yield event
                        block = []
        except urllib.error.HTTPError as exc:
            raise _error_from(exc) from None

    # -- introspection -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def ready(self) -> Dict[str, Any]:
        """The readiness body; a not-ready 503 returns the body (with
        ``ready: false``) rather than raising — the body says why."""
        request = urllib.request.Request(
            self.base_url + "/v1/readyz",
            headers={"Accept": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                return json.loads(exc.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                raise _error_from(exc) from None
        except urllib.error.URLError as exc:
            raise ConnectionError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from None

    def metrics(self) -> str:
        """The live Prometheus exposition text."""
        request = urllib.request.Request(self.base_url + "/v1/metrics")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise _error_from(exc) from None

    def wait_ready(self, timeout: float = 10.0,
                   poll_interval: float = 0.05) -> Dict[str, Any]:
        """Block until the server answers ready; for tests/startup."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                body = self.ready()
                if body.get("ready"):
                    return body
            except (ConnectionError, LineSearchError) as exc:
                last = exc
            time.sleep(poll_interval)
        raise TimeoutError(
            f"service at {self.base_url} not ready after {timeout}s"
            + (f" (last error: {last})" if last else "")
        )


def _retry_after_of(exc: urllib.error.HTTPError,
                    body: Dict[str, Any]) -> Optional[float]:
    """The server's retry hint: the ``Retry-After`` header (seconds
    form) when present, else the JSON body's ``retry_after`` field."""
    header = exc.headers.get("Retry-After") if exc.headers else None
    if header is not None:
        try:
            return float(header)
        except ValueError:
            pass  # HTTP-date form: fall through to the body hint
    hint = body.get("retry_after")
    if isinstance(hint, (int, float)):
        return float(hint)
    return None


def _error_from(exc: urllib.error.HTTPError) -> Exception:
    """Convert an HTTP error response into the matching ServiceError."""
    body: Dict[str, Any] = {}
    try:
        body = json.loads(exc.read().decode("utf-8"))
        code = body.get("error")
        message = body.get("message", "")
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        code, message = None, ""
    if code in ERROR_CODES:
        return ServiceError(code, message or f"HTTP {exc.code}",
                            retry_after=_retry_after_of(exc, body))
    return LineSearchError(f"HTTP {exc.code}: {message or exc.reason}")
