"""Scenario-fingerprint result cache: bounded LRU with hit/miss counters.

The cache key is :func:`~repro.robustness.campaign.scenario_key` — the
same deterministic digest the campaign journal uses — so anything ever
journaled can be served again without recomputation.  That identity is
what makes the cache *correct*: a scenario spec fully determines its
outcome (seeds included), so equal keys imply equal results.  The
property tests in ``tests/robustness/test_scenario_key_property.py``
pin that contract; drift there would mean wrong answers served.

The cache is strictly bounded (LRU eviction at ``max_entries``) and
thread-safe; it never grows with traffic.  On server restart it is
*warmed* from the campaign journals in the state directory, which is
how a resumed campaign's already-computed scenarios are served as
cache hits rather than recomputed.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional

from repro.errors import InvalidParameterError
from repro.observability import instrument as obs
from repro.robustness.campaign import ScenarioResult

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded, thread-safe LRU of ``scenario_key`` → result.

    Only successful results are cached — a failure may be transient
    (a flaky stochastic draw, a watchdog kill under load) and must not
    be served as the scenario's answer forever.

    Examples:
        >>> from repro.robustness.campaign import ScenarioSpec, ScenarioResult
        >>> cache = ResultCache(max_entries=2)
        >>> spec = ScenarioSpec(3, 1, 2.0, "none", 7)
        >>> cache.put("k1", ScenarioResult(spec=spec, ok=True))
        >>> cache.get("k1") is not None
        True
        >>> cache.get("missing") is None
        True
        >>> cache.stats()["hits"], cache.stats()["misses"]
        (1, 1)
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise InvalidParameterError(
                "cache max_entries must be >= 1 "
                "(disable the cache at the service layer instead)"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, ScenarioResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[ScenarioResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                obs.count("service_cache_misses_total")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            obs.count("service_cache_hits_total")
            return result

    def put(self, key: str, result: ScenarioResult) -> None:
        """Insert ``key`` → ``result``, evicting the LRU entry at capacity.

        Failed results are ignored (see class docstring).
        """
        if not result.ok:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            obs.gauge_set("service_cache_size", len(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters and occupancy, for readiness output."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "capacity": self.max_entries,
            }

    # -- warm-up -------------------------------------------------------

    def warm_from_journal(self, path: str) -> int:
        """Load every successful outcome of one campaign journal.

        Tolerates missing or unreadable journals (returns 0) — warming
        is best-effort; a cold cache only costs recomputation.
        """
        from repro.errors import JournalError
        from repro.robustness.journal import CampaignJournal

        if not os.path.exists(path):
            return 0
        try:
            journal = CampaignJournal.load(path)
        except (JournalError, OSError):
            return 0
        loaded = 0
        for entry in journal.entries:
            try:
                result = ScenarioResult.from_dict(entry["result"])
            except (KeyError, TypeError, ValueError):
                continue
            if result.ok:
                self.put(str(entry.get("key")), result)
                loaded += 1
        return loaded

    def warm_from_journals(self, paths: Iterable[str]) -> int:
        """Warm from many journals; returns total results loaded."""
        return sum(self.warm_from_journal(path) for path in paths)
