"""The long-running threaded search service.

:class:`LineSearchService` is a stdlib-only HTTP server (a
``ThreadingHTTPServer`` front door, a bounded admission queue, a small
pool of worker threads) over the resilient
:class:`~repro.robustness.executor.CampaignExecutor`.  The JSON wire
protocol lives in :mod:`repro.service.protocol`; this module is the
machine behind it.

Endpoints (all under ``/v1``)::

    POST /v1/scenarios        submit one scenario (cache-first)
    POST /v1/campaigns        submit a campaign (specs list or grid)
    GET  /v1/jobs             job ids and state counts
    GET  /v1/jobs/<id>        poll one job's state and progress
    GET  /v1/jobs/<id>/result fetch the terminal report envelope
    GET  /v1/jobs/<id>/events stream progress as JSON lines
    GET  /v1/healthz          liveness
    GET  /v1/readyz           readiness: queue, workers, cache, parity
    GET  /v1/metrics          live Prometheus text

Robustness model
----------------
*Overload* — admission holds a single lock; when the bounded queue is
at capacity the submission is refused with ``overloaded`` immediately.
The queue physically cannot exceed its capacity.

*Rate limits* — a token bucket per client id; empty bucket →
``rate_limited``.

*Deadlines* — each job carries an absolute deadline.  Expired while
queued → cancelled before any work; expired mid-campaign → the
executor's ``stop_check`` fires, the journal checkpoints, and the job
terminates ``deadline_exceeded`` (partial work stays journaled and
cached).  The remaining budget also clamps the executor's per-scenario
watchdog when one is configured.

*Drain* — SIGTERM (via :meth:`LineSearchService.serve_forever`) or
:meth:`drain`: admission stops (``shutting_down``), running campaigns
checkpoint their journals and park as ``interrupted``, queued jobs
stay manifested, the process exits 0.  Nothing is torn.

*Restart* — the state directory is the truth: the manifest names every
accepted job, per-job journals hold every completed scenario, report
files mark terminal jobs.  On start the registry replays the manifest,
warms the result cache from the journals, and requeues every
non-terminal job; their campaigns resume byte-identically (scenarios
already computed are served from the warmed cache, the rest run).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro._version import __version__
from repro.errors import (
    CampaignInterrupted,
    InvalidParameterError,
    LineSearchError,
)
from repro.observability import instrument as obs
from repro.robustness.campaign import (
    CampaignReport,
    ScenarioResult,
    build_scenario,
    error_class_of,
    scenario_key,
)
from repro.robustness.executor import CampaignExecutor, RetryPolicy
from repro.service.cache import ResultCache
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    Submission,
    dumps,
    parse_submission,
)
from repro.service.queueing import AdmissionQueue, Job, JobRegistry
from repro.service.ratelimit import RateLimiter

__all__ = ["LineSearchService", "ServiceConfig"]

#: How long workers block on the queue before re-checking for shutdown.
_TAKE_TIMEOUT = 0.1


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about a service instance, validated eagerly.

    Args:
        state_dir: the durable state directory (manifest, journals,
            reports).  Created if missing.
        host/port: bind address; port 0 picks a free port (read the
            chosen one from :attr:`LineSearchService.port`).
        workers: worker threads executing jobs.
        queue_capacity: admission queue bound; submissions beyond it
            are refused with ``overloaded``.
        rate_capacity/rate_per_second: per-client token bucket burst
            and refill; ``None`` capacity disables rate limiting.
        cache_size: result-cache entries; 0 disables the cache.
        default_deadline: deadline applied to submissions that carry
            none (seconds); ``None`` means no implicit deadline.
        max_deadline: ceiling clamped onto client deadlines.
        scenario_timeout: per-scenario watchdog forwarded to the
            executor (forces the worker-process pool).
        executor_jobs: worker *processes* per campaign executor.
        default_method: ``"event"`` or ``"batch"`` for submissions
            that do not choose.
        parity_check: run the engine-parity harness once at startup
            and report it in readiness; batch submissions are refused
            if it failed.
        max_scenarios_per_job: per-submission scenario bound.
        overload_retry_after: hint (seconds) sent in the
            ``Retry-After`` header with ``overloaded`` refusals.
        enable_telemetry: collect ``service.*`` spans and counters.

    Examples:
        >>> ServiceConfig(state_dir="x", queue_capacity=0)
        Traceback (most recent call last):
          ...
        repro.errors.InvalidParameterError: queue_capacity must be >= 1
    """

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_capacity: int = 16
    rate_capacity: Optional[float] = None
    rate_per_second: float = 10.0
    cache_size: int = 4096
    default_deadline: Optional[float] = 300.0
    max_deadline: float = 3600.0
    scenario_timeout: Optional[float] = None
    executor_jobs: int = 1
    retry_policy: Optional[RetryPolicy] = None
    default_method: str = "event"
    parity_check: bool = True
    max_scenarios_per_job: int = 10000
    overload_retry_after: float = 1.0
    enable_telemetry: bool = True

    def __post_init__(self):
        if not self.state_dir:
            raise InvalidParameterError("state_dir is required")
        if self.workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise InvalidParameterError("queue_capacity must be >= 1")
        if self.rate_capacity is not None and self.rate_capacity <= 0:
            raise InvalidParameterError(
                "rate_capacity must be positive (or None to disable)"
            )
        if self.rate_per_second <= 0:
            raise InvalidParameterError("rate_per_second must be positive")
        if self.cache_size < 0:
            raise InvalidParameterError("cache_size must be >= 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise InvalidParameterError(
                "default_deadline must be positive (or None)"
            )
        if self.max_deadline <= 0:
            raise InvalidParameterError("max_deadline must be positive")
        if self.scenario_timeout is not None and self.scenario_timeout <= 0:
            raise InvalidParameterError(
                "scenario_timeout must be positive (or None)"
            )
        if self.executor_jobs < 1:
            raise InvalidParameterError("executor_jobs must be >= 1")
        if self.default_method not in ("event", "batch"):
            raise InvalidParameterError(
                "default_method must be 'event' or 'batch'"
            )
        if self.max_scenarios_per_job < 1:
            raise InvalidParameterError(
                "max_scenarios_per_job must be >= 1"
            )
        if self.overload_retry_after <= 0:
            raise InvalidParameterError(
                "overload_retry_after must be positive"
            )


class _HTTPServer(ThreadingHTTPServer):
    # socketserver's default listen backlog of 5 drops connections under
    # concurrent bursts (the kernel RSTs half-accepted sockets once the
    # accept queue overflows); admission control belongs to the bounded
    # job queue, not the TCP layer.
    request_queue_size = 128


class LineSearchService:
    """The serving layer: admission, workers, durability, telemetry."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.registry = JobRegistry(config.state_dir)
        self.queue = AdmissionQueue(config.queue_capacity)
        self.cache = (
            ResultCache(config.cache_size) if config.cache_size else None
        )
        self.limiter = (
            RateLimiter(config.rate_capacity, config.rate_per_second)
            if config.rate_capacity is not None
            else None
        )
        self._admission_lock = threading.Lock()
        self._drain_event = threading.Event()
        self._draining = False
        self._started = time.monotonic()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._telemetry = None
        self._previous_telemetry = None
        self._backend_name = "pure"
        self._parity: Dict[str, Any] = {"checked": False}
        self._batch_ok = True
        # Recover durable state before taking any traffic: replay the
        # manifest, warm the cache from every journal, requeue the
        # non-terminal jobs in submission order.
        self._recovered = self.registry.recover()
        if self.cache is not None:
            for job in self.registry.jobs():
                self.cache.warm_from_journal(
                    self.registry.journal_path(job.id)
                )
        self._run_startup_parity()

    # -- startup parity (the batch fast path's license to serve) -------

    def _run_startup_parity(self) -> None:
        from repro.batch.backend import get_backend

        self._backend_name = get_backend(None).name
        if not self.config.parity_check:
            self._parity = {"checked": False, "backend": self._backend_name}
            return
        from repro.batch import run_parity_harness

        report = run_parity_harness(
            pairs=[(3, 1), (4, 2)],
            targets_per_pair=6,
            fault_sets_per_target=2,
            seed=2016,
        )
        self._batch_ok = report.passed
        self._parity = {
            "checked": True,
            "passed": report.passed,
            "points": report.total,
            "backend": self._backend_name,
        }

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "LineSearchService":
        """Bind, spawn the HTTP thread and the workers, requeue
        recovered jobs.  Returns ``self`` for chaining."""
        if self._httpd is not None:
            raise LineSearchError("service already started")
        if self.config.enable_telemetry and obs.current() is None:
            self._telemetry = obs.Telemetry(
                metadata={"command": "serve", "state_dir":
                          self.config.state_dir}
            )
            self._previous_telemetry = obs.configure(self._telemetry)
        handler = type(
            "LineSearchHTTPHandler", (_Handler,), {"service": self}
        )
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._http_thread.start()
        for ident in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"service-worker-{ident}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        obs.gauge_set("service_workers_alive", self.workers_alive())
        for job in self._recovered:
            # Recovered jobs bypass admission control: they were
            # admitted before the crash and the queue bound applies to
            # *new* traffic.  offer() may refuse if capacity < backlog;
            # fall back to blocking re-offers from a requeue thread.
            if not self.queue.offer(job):
                threading.Thread(
                    target=self._requeue_until_accepted,
                    args=(job,),
                    daemon=True,
                ).start()
            else:
                obs.gauge_set("service_queue_depth", self.queue.depth())
        self._recovered = []
        return self

    def _requeue_until_accepted(self, job: Job) -> None:
        while not self._drain_event.is_set():
            if self.queue.offer(job):
                obs.gauge_set("service_queue_depth", self.queue.depth())
                return
            time.sleep(_TAKE_TIMEOUT)

    def serve_forever(self) -> int:
        """Run until SIGTERM/SIGINT, then drain gracefully; returns the
        process exit code (0 on a clean drain).  Main thread only."""
        import signal

        stop = threading.Event()

        def _on_signal(signum, frame):
            stop.set()

        previous = {
            s: signal.signal(s, _on_signal)
            for s in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            if self._httpd is None:
                self.start()
            while not stop.wait(timeout=0.2):
                pass
            self.drain()
            return 0
        finally:
            for s, handler in previous.items():
                signal.signal(s, handler)

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, checkpoint in-flight
        campaigns, stop the HTTP front end."""
        if self._draining:
            return
        self._draining = True
        obs.count("service_drains_total")
        self._drain_event.set()
        self.queue.close()
        deadline = time.monotonic() + timeout
        for thread in self._workers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._stop_http()

    def stop(self) -> None:
        """Hard stop for tests: no checkpointing beyond what the
        journals already hold."""
        self._drain_event.set()
        self.queue.close()
        self._stop_http()

    def _stop_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._telemetry is not None:
            obs.configure(self._previous_telemetry)
            self._telemetry = None

    @property
    def draining(self) -> bool:
        return self._draining

    def workers_alive(self) -> int:
        return sum(1 for t in self._workers if t.is_alive())

    def telemetry(self):
        """The service's telemetry (for exporters), or the ambient one."""
        return self._telemetry or obs.current()

    # -- dashboard -----------------------------------------------------

    def _dashboard_telemetry(self):
        telemetry = self.telemetry()
        if telemetry is None:
            raise ServiceError(
                "conflict", "telemetry is disabled on this server"
            )
        return telemetry

    def dashboard_state(self):
        """The canonical panel state (see :mod:`repro.dashboard.state`)."""
        from repro.dashboard.state import state_from_telemetry

        return state_from_telemetry(self._dashboard_telemetry())

    def dashboard_progress(self) -> Dict[str, Any]:
        """The live job-progress payload for the stream's ``jobs`` events."""
        return {
            "queue_depth": self.queue.depth(),
            "states": self.registry.state_counts(),
            "workers_alive": self.workers_alive(),
            "draining": self._draining,
        }

    def dashboard_streamer(self, interval: float = 0.5):
        """A :class:`~repro.dashboard.stream.DashboardStreamer` wired to
        this service's registry, tracer, and job book-keeping."""
        from repro.dashboard.stream import DashboardStreamer

        telemetry = self._dashboard_telemetry()
        return DashboardStreamer(
            metrics=telemetry.metrics,
            spans=telemetry.tracer.records,
            jobs=self.dashboard_progress,
            interval=interval,
        )

    # -- admission -----------------------------------------------------

    def submit(self, payload: Any) -> Dict[str, Any]:
        """Admit one parsed-or-raw submission; returns the response body.

        Raises :class:`ServiceError` with ``shutting_down``,
        ``bad_request``, ``rate_limited``, or ``overloaded``.
        """
        if self._draining:
            raise ServiceError(
                "shutting_down", "the server is draining; retry elsewhere"
            )
        submission = (
            payload
            if isinstance(payload, Submission)
            else parse_submission(
                payload,
                default_method=self.config.default_method,
                default_deadline=self.config.default_deadline,
                max_deadline=self.config.max_deadline,
                max_scenarios=self.config.max_scenarios_per_job,
            )
        )
        if submission.method == "batch" and not self._batch_ok:
            raise ServiceError(
                "bad_request",
                "the batch fast path failed its startup parity check on "
                "this server; submit with method='event'",
            )
        if self.limiter is not None and not self.limiter.allow(
            submission.client
        ):
            obs.count("service_rate_limited_total")
            raise ServiceError(
                "rate_limited",
                f"client {submission.client!r} is over its rate limit",
                retry_after=self.limiter.retry_after(submission.client),
            )
        # Single scenarios are answered straight from the cache when
        # possible — no job, no queue slot, no recomputation.
        if (
            len(submission.specs) == 1
            and self.cache is not None
        ):
            hit = self.cache.get(scenario_key(submission.specs[0]))
            if hit is not None:
                return {
                    "ok": True,
                    "cached": True,
                    "result": hit.to_dict(),
                }
        with self._admission_lock:
            if self.queue.depth() >= self.queue.capacity:
                obs.count("service_overload_rejections_total")
                raise ServiceError(
                    "overloaded",
                    f"the admission queue is full "
                    f"({self.queue.capacity} job(s)); retry with backoff",
                    retry_after=self.config.overload_retry_after,
                )
            job = self.registry.create(submission)
            accepted = self.queue.offer(job)
        if not accepted:  # the queue closed between checks (drain race)
            raise ServiceError(
                "shutting_down", "the server is draining; retry elsewhere"
            )
        obs.count("service_jobs_submitted_total")
        obs.gauge_set("service_queue_depth", self.queue.depth())
        return {
            "ok": True,
            "cached": False,
            "job_id": job.id,
            "state": job.state,
            "total": job.total,
            "deadline_at": job.deadline_at,
        }

    # -- workers -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.take(timeout=_TAKE_TIMEOUT)
            if job is None:
                if self.queue.closed:
                    return
                continue
            obs.gauge_set("service_queue_depth", self.queue.depth())
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        if self._drain_event.is_set():
            # Drained between dequeue and execution: leave the job
            # manifested and un-terminal; restart requeues it.
            job.set_state(
                "interrupted",
                message="server drained before execution; will resume",
            )
            return
        if job.expired():
            self._finish(
                job,
                "deadline_exceeded",
                error="deadline_exceeded",
                message="the deadline passed while the job was queued",
            )
            obs.count("service_deadline_expirations_total")
            return
        job.set_state("running")
        job.publish({"event": "running", "job_id": job.id})
        obs.gauge_set("service_jobs_running", self._running_count())
        started = time.monotonic()
        try:
            with obs.span(
                "service.job",
                job=job.id,
                scenarios=job.total,
                method=job.submission.method,
            ):
                self._execute_job(job)
        except CampaignInterrupted:
            if self._drain_event.is_set():
                job.set_state(
                    "interrupted",
                    message=(
                        "campaign checkpointed by a drain; the job "
                        "resumes on the next start"
                    ),
                )
                job.publish({"event": "interrupted", "job_id": job.id})
            else:
                obs.count("service_deadline_expirations_total")
                self._finish(
                    job,
                    "deadline_exceeded",
                    error="deadline_exceeded",
                    message=(
                        "the deadline passed mid-campaign; completed "
                        "scenarios stay journaled and cached"
                    ),
                )
        except Exception as exc:  # noqa: BLE001 - isolate job failures
            self._finish(
                job,
                "failed",
                error="internal",
                message=f"{error_class_of(exc)}: {exc}",
            )
        finally:
            obs.observe("service_job_seconds", time.monotonic() - started)
            obs.gauge_set("service_jobs_running", self._running_count())

    def _running_count(self) -> int:
        return sum(1 for j in self.registry.jobs() if j.state == "running")

    def _finish(self, job: Job, state: str, error: Optional[str] = None,
                message: Optional[str] = None) -> None:
        # The report file is written *before* the state flips terminal
        # so a poller that observes the terminal state can always fetch
        # the result; the state flip and the final event are atomic so
        # a stream never closes without delivering "done".
        job.error = error
        job.message = message
        self.registry.write_report(job, state=state)
        job.set_state(
            state,
            error=error,
            message=message,
            event={
                "event": "done",
                "job_id": job.id,
                "state": state,
                "completed": job.completed,
                "total": job.total,
                "cache_hits": job.cache_hits,
            },
        )
        obs.count("service_jobs_completed_total", status=state)

    def _effective_timeout(self, job: Job) -> Optional[float]:
        """The per-scenario watchdog: the configured budget, clamped by
        the job's remaining deadline when one is nearer."""
        timeout = self.config.scenario_timeout
        if timeout is None:
            return None
        remaining = job.remaining_deadline()
        if remaining < timeout:
            timeout = max(remaining, 0.01)
        return timeout

    def _execute_job(self, job: Job) -> None:
        submission = job.submission
        scenarios = [
            build_scenario(spec, method=submission.method)
            for spec in submission.specs
        ]
        results: Dict[int, ScenarioResult] = {}
        to_run: List[Tuple[int, Any]] = []
        for index, scenario in enumerate(scenarios):
            hit = (
                self.cache.get(scenario_key(scenario.spec))
                if self.cache is not None
                else None
            )
            if hit is not None:
                results[index] = hit
                job.cache_hits += 1
            else:
                to_run.append((index, scenario))
        job.completed = len(results)
        job.publish(
            {
                "event": "progress",
                "job_id": job.id,
                "completed": job.completed,
                "total": job.total,
                "cache_hits": job.cache_hits,
            }
        )
        if to_run:
            executor = CampaignExecutor(
                jobs=self.config.executor_jobs,
                timeout=self._effective_timeout(job),
                retry_policy=self.config.retry_policy,
                journal_path=self.registry.journal_path(job.id),
                resume=True,
                handle_sigterm=False,
            )

            def on_result(_sub_index: int, result: ScenarioResult) -> None:
                # cache immediately (not after the run) so work done
                # before a deadline interrupt or drain stays servable
                if self.cache is not None:
                    self.cache.put(scenario_key(result.spec), result)
                job.completed += 1
                job.publish(
                    {
                        "event": "progress",
                        "job_id": job.id,
                        "completed": job.completed,
                        "total": job.total,
                        "cache_hits": job.cache_hits,
                    }
                )

            def stop_check() -> bool:
                return self._drain_event.is_set() or job.expired()

            subreport = executor.execute(
                [scenario for _, scenario in to_run],
                check_invariants=submission.check_invariants,
                stop_check=stop_check,
                on_result=on_result,
            )
            for position, (index, _) in enumerate(to_run):
                result = subreport.results[position]
                results[index] = result
                if self.cache is not None:
                    self.cache.put(scenario_key(result.spec), result)
        job.completed = len(results)
        job.report = CampaignReport(
            results=[results[i] for i in range(job.total)]
        )
        self._finish(job, "done")

    # -- introspection bodies ------------------------------------------

    def health_body(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def ready_body(self) -> Tuple[int, Dict[str, Any]]:
        alive = self.workers_alive()
        ready = (
            not self._draining
            and self._httpd is not None
            and alive == self.config.workers
        )
        body = {
            "ok": ready,
            "ready": ready,
            "draining": self._draining,
            "queue": {
                "depth": self.queue.depth(),
                "capacity": self.queue.capacity,
            },
            "workers": {
                "alive": alive,
                "configured": self.config.workers,
            },
            "jobs": self.registry.state_counts(),
            "cache": None if self.cache is None else self.cache.stats(),
            "rate_limit": (
                None if self.limiter is None else self.limiter.stats()
            ),
            "backend": self._backend_name,
            "parity": self._parity,
            "default_method": self.config.default_method,
            "uptime_seconds": time.monotonic() - self._started,
        }
        return (200 if ready else 503), body


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------

_MAX_BODY = 8 << 20  # 8 MiB: far beyond any sane submission


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP traffic into the service; all responses are JSON."""

    #: Injected by :meth:`LineSearchService.start` via a subclass.
    service: LineSearchService
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through telemetry, not stderr

    def _send_json(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = dumps(body)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ServiceError(
                "bad_request", f"request body exceeds {_MAX_BODY} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("bad_request", "a JSON body is required")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                "bad_request", f"body is not valid JSON: {exc}"
            ) from None

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        started = time.monotonic()
        status = 500
        endpoint = path
        try:
            with obs.span("service.request", method=method, path=path):
                status, endpoint = self._route(method, path)
        except ServiceError as exc:
            status = exc.http_status
            self._safe_send(status, exc.body(), exc.headers())
        except BrokenPipeError:
            status = 499  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - never kill the thread
            status = 500
            self._safe_send(
                500,
                ServiceError(
                    "internal", f"{error_class_of(exc)}: {exc}"
                ).body(),
            )
        finally:
            obs.count(
                "service_requests_total",
                endpoint=endpoint,
                status=status,
            )
            obs.observe(
                "service_request_seconds", time.monotonic() - started
            )

    def _safe_send(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        try:
            self._send_json(status, body, headers)
        except (BrokenPipeError, OSError):
            pass

    # -- routing -------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def _route(self, method: str, path: str) -> Tuple[int, str]:
        """Handle one request; returns ``(status, endpoint label)``."""
        service = self.service
        if method == "POST" and path in ("/v1/scenarios", "/v1/campaigns"):
            body = service.submit(self._read_body())
            status = 200 if body.get("cached") else 202
            self._send_json(status, body)
            return status, path
        if method == "GET" and path == "/v1/jobs":
            jobs = service.registry.jobs()
            self._send_json(
                200,
                {
                    "ok": True,
                    "jobs": [job.id for job in jobs],
                    "states": service.registry.state_counts(),
                },
            )
            return 200, path
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            parts = rest.split("/")
            job = service.registry.get(parts[0])
            if len(parts) == 1:
                self._send_json(200, {"ok": True, **job.view()})
                return 200, "/v1/jobs/<id>"
            if parts[1:] == ["result"]:
                envelope = service.registry.load_report(job.id)
                self._send_json(200, {"ok": True, **envelope})
                return 200, "/v1/jobs/<id>/result"
            if parts[1:] == ["events"]:
                self._stream_events(job)
                return 200, "/v1/jobs/<id>/events"
            raise ServiceError("not_found", f"no route {path!r}")
        if method == "GET" and path == "/v1/healthz":
            self._send_json(200, service.health_body())
            return 200, path
        if method == "GET" and path == "/v1/readyz":
            status, body = service.ready_body()
            self._send_json(status, body)
            return status, path
        if method == "GET" and path == "/v1/metrics":
            self._send_metrics()
            return 200, path
        if method == "GET" and path == "/v1/dashboard":
            self._send_dashboard_page()
            return 200, path
        if method == "GET" and path == "/v1/dashboard/state":
            self._send_json(200, self.service.dashboard_state().to_dict())
            return 200, path
        if method == "GET" and path == "/v1/dashboard/stream":
            self._stream_dashboard()
            return 200, path
        raise ServiceError("not_found", f"no route {method} {path!r}")

    # -- streaming -----------------------------------------------------

    def _stream_events(self, job: Job) -> None:
        """JSON-lines progress stream; ends when the job is terminal.

        The response is ``Connection: close`` delimited — the client
        reads lines until EOF.  A slow or vanished consumer only costs
        this handler thread; the job's bounded event buffer never grows
        for it.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        cursor = 0
        snapshot = {"event": "snapshot", **job.view()}
        self.wfile.write(dumps(snapshot))
        self.wfile.flush()
        while True:
            events, cursor, finished = job.events_since(cursor, timeout=0.5)
            for event in events:
                self.wfile.write(dumps(event))
            if events:
                self.wfile.flush()
            if finished:
                return
            if self.service._drain_event.is_set() and not events:
                # draining: close streams promptly so shutdown is not
                # held open by idle subscribers
                self.wfile.write(
                    dumps({"event": "stream_closed", "reason": "draining"})
                )
                self.wfile.flush()
                return

    def _send_dashboard_page(self) -> None:
        from repro.dashboard.html import render_dashboard_html

        data = render_dashboard_html().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _stream_dashboard(self) -> None:
        """The SSE multiplex stream; ``Connection: close`` delimited.

        Query parameters: ``until=idle`` ends the stream (with a
        ``done`` frame) once the service has nothing queued or running;
        ``interval=<seconds>`` tunes the sampling period.  The streamer
        buffers through the same bounded-outbox discipline as the
        per-job event log, so a slow consumer costs one handler thread
        and a drop counter, never unbounded memory.
        """
        from urllib.parse import parse_qs, urlparse

        from repro.observability.export import SSE_MEDIA_TYPE

        query = parse_qs(urlparse(self.path).query)
        until_idle = "idle" in query.get("until", [])
        try:
            interval = float(query.get("interval", ["0.25"])[0])
        except ValueError:
            raise ServiceError(
                "bad_request", "interval must be a number of seconds"
            ) from None
        interval = min(max(interval, 0.05), 5.0)
        streamer = self.service.dashboard_streamer(interval=interval)
        self.send_response(200)
        self.send_header("Content-Type", SSE_MEDIA_TYPE)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        drain = self.service._drain_event
        for frame in streamer.frames(
            until_idle=until_idle, stop=drain.is_set
        ):
            self.wfile.write(frame.encode("utf-8"))
            self.wfile.flush()

    def _send_metrics(self) -> None:
        from repro.observability.export import to_prometheus

        telemetry = self.service.telemetry()
        if telemetry is None:
            raise ServiceError(
                "conflict", "telemetry is disabled on this server"
            )
        text = to_prometheus(telemetry)
        data = text.encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
