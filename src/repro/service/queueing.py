"""Jobs, the durable job manifest, and the bounded admission queue.

A *job* is one accepted submission: a batch of scenario specs plus
execution options, tracked through ``queued → running → done`` (or
``failed`` / ``deadline_exceeded``; a drain parks it back at
``queued`` via ``interrupted``).  Three artifacts make jobs durable in
the service state directory:

``jobs.jsonl``
    The append-only manifest: one line per accepted submission.
    Restart replays it to rebuild the registry; a torn trailing line
    (SIGKILL mid-append) is tolerated and skipped.
``job-<id>.journal.jsonl``
    The job's campaign journal (the existing crash-safe
    :class:`~repro.robustness.journal.CampaignJournal`): every
    completed scenario, atomically flushed.
``job-<id>.report.json``
    The final report envelope, written atomically (temp + rename) when
    the job reaches a terminal state.  Its existence *is* the terminal
    marker: on restart, any manifested job without a report file is
    requeued and resumed from its journal.

The :class:`AdmissionQueue` in front of the workers is strictly
bounded: ``offer`` either accepts immediately or reports the queue
full, so overload becomes an explicit ``overloaded`` rejection at the
door rather than unbounded memory growth.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.errors import InvalidParameterError
from repro.robustness.campaign import CampaignReport
from repro.service.protocol import (
    JOB_STATES,
    TERMINAL_STATES,
    ServiceError,
    Submission,
)

__all__ = ["AdmissionQueue", "Job", "JobRegistry"]

#: Progress events kept per job for late stream subscribers; older
#: events are dropped (counted) so a slow consumer cannot grow memory.
MAX_EVENTS_PER_JOB = 1000


class Job:
    """One accepted submission and everything observable about it."""

    def __init__(self, job_id: str, submission: Submission,
                 submitted_at: float):
        self.id = job_id
        self.submission = submission
        self.submitted_at = submitted_at
        #: Absolute wall-clock deadline (epoch seconds), or ``None``.
        self.deadline_at: Optional[float] = (
            None if submission.deadline is None
            else submitted_at + submission.deadline
        )
        self.state = "queued"
        self.completed = 0
        self.total = len(submission.specs)
        self.cache_hits = 0
        self.error: Optional[str] = None
        self.message: Optional[str] = None
        self.report: Optional[CampaignReport] = None
        self._events: deque = deque()
        self._events_dropped = 0
        self._events_base = 0  # index of the oldest retained event
        self._condition = threading.Condition()

    # -- deadlines -----------------------------------------------------

    def remaining_deadline(self, now: Optional[float] = None) -> float:
        """Seconds until the deadline; ``inf`` when none was set."""
        if self.deadline_at is None:
            return float("inf")
        return self.deadline_at - (time.time() if now is None else now)

    def expired(self, now: Optional[float] = None) -> bool:
        return self.remaining_deadline(now) <= 0

    # -- state + events ------------------------------------------------

    def set_state(self, state: str, error: Optional[str] = None,
                  message: Optional[str] = None,
                  event: Optional[Dict[str, Any]] = None) -> None:
        """Transition atomically, optionally publishing ``event`` in
        the same step — a subscriber woken by a terminal transition is
        then guaranteed to see the final event before the stream ends."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._condition:
            self.state = state
            self.error = error
            self.message = message
            if event is not None:
                self._append_event(event)
            self._condition.notify_all()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def publish(self, event: Dict[str, Any]) -> None:
        """Append a progress event and wake every stream subscriber."""
        with self._condition:
            self._append_event(event)
            self._condition.notify_all()

    def _append_event(self, event: Dict[str, Any]) -> None:
        self._events.append(event)
        while len(self._events) > MAX_EVENTS_PER_JOB:
            self._events.popleft()
            self._events_base += 1
            self._events_dropped += 1

    def events_since(self, cursor: int, timeout: float = 1.0):
        """``(events, next_cursor, finished)`` at-or-after ``cursor``.

        Blocks up to ``timeout`` for news.  ``finished`` is True once
        the job is terminal and every retained event was delivered —
        the stream's end condition.
        """
        with self._condition:
            if cursor >= self._events_base + len(self._events):
                if self.terminal:
                    return [], cursor, True
                self._condition.wait(timeout)
            start = max(cursor, self._events_base)
            fresh = list(self._events)[start - self._events_base:]
            next_cursor = self._events_base + len(self._events)
            finished = self.terminal and not fresh
            return fresh, next_cursor, finished

    # -- views ---------------------------------------------------------

    def view(self) -> Dict[str, Any]:
        """The poll-endpoint JSON for this job."""
        body: Dict[str, Any] = {
            "job_id": self.id,
            "state": self.state,
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "client": self.submission.client,
            "method": self.submission.method,
            "submitted_at": self.submitted_at,
            "deadline_at": self.deadline_at,
            "events_dropped": self._events_dropped,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.message is not None:
            body["message"] = self.message
        return body


# ----------------------------------------------------------------------
# durable registry
# ----------------------------------------------------------------------

def _atomic_write(path: str, data: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class JobRegistry:
    """Every job the server knows, backed by the state directory."""

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.manifest_path = os.path.join(state_dir, "jobs.jsonl")
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_sequence = 1
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.journal.jsonl")

    def report_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.report.json")

    # -- admission -----------------------------------------------------

    def create(self, submission: Submission) -> Job:
        """Mint a job, append it durably to the manifest, register it."""
        with self._lock:
            job_id = f"job-{self._next_sequence:06d}"
            self._next_sequence += 1
            job = Job(job_id, submission, submitted_at=time.time())
            line = json.dumps(
                {
                    "event": "submit",
                    "id": job_id,
                    "submitted_at": job.submitted_at,
                    "request": submission.to_dict(),
                },
                sort_keys=True,
            )
            # One os.write of the whole line keeps a torn append (the
            # only non-atomic write in the state dir) vanishingly rare;
            # the loader skips a torn tail either way.
            fd = os.open(
                self.manifest_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, (line + "\n").encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            self._jobs[job_id] = job
            self._order.append(job_id)
            return job

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("not_found", f"no job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[i] for i in self._order]

    def state_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- terminal artifacts --------------------------------------------

    def write_report(self, job: Job, state: Optional[str] = None) -> None:
        """Persist a terminal job's report envelope atomically.

        ``state`` lets the caller write the envelope *before* flipping
        the job's visible state, so a poller that observes a terminal
        job can always fetch its result.

        Scenarios that needed more than one attempt are surfaced at the
        top level under ``attempt_errors`` (scenario description → the
        per-attempt error strings) so flakiness is visible without
        walking every nested result.
        """
        envelope: Dict[str, Any] = {
            "format": "linesearch-service-report",
            "version": 1,
            "job_id": job.id,
            "state": state if state is not None else job.state,
            "cache_hits": job.cache_hits,
        }
        if job.error is not None:
            envelope["error"] = job.error
            envelope["message"] = job.message
        if job.report is not None:
            envelope["report"] = job.report.to_dict()
            flaky = {
                result.spec.describe(): list(result.attempt_errors)
                for result in job.report.results
                if result.attempt_errors
            }
            if flaky:
                envelope["attempt_errors"] = flaky
        _atomic_write(
            self.report_path(job.id),
            json.dumps(envelope, indent=2, sort_keys=True) + "\n",
        )

    def load_report(self, job_id: str) -> Dict[str, Any]:
        path = self.report_path(job_id)
        if not os.path.exists(path):
            raise ServiceError(
                "conflict", f"job {job_id!r} has no result yet"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- recovery ------------------------------------------------------

    def recover(self) -> List[Job]:
        """Replay the manifest; returns the jobs needing (re)execution.

        Manifested jobs whose report file exists are terminal — their
        state is restored from the envelope.  Everything else (queued
        or killed mid-run) is rebuilt as ``queued`` for the workers to
        resume from its journal.  Unparsable manifest lines (a torn
        SIGKILL tail) are skipped.
        """
        if not os.path.exists(self.manifest_path):
            return []
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        pending: List[Job] = []
        with self._lock:
            for line in lines:
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    if entry.get("event") != "submit":
                        continue
                    job_id = str(entry["id"])
                    submission = Submission.from_dict(entry["request"])
                    submitted_at = float(entry["submitted_at"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue  # torn or foreign line
                job = Job(job_id, submission, submitted_at=submitted_at)
                self._jobs[job_id] = job
                self._order.append(job_id)
                sequence = _sequence_of(job_id)
                if sequence is not None:
                    self._next_sequence = max(
                        self._next_sequence, sequence + 1
                    )
                report_path = self.report_path(job_id)
                if os.path.exists(report_path):
                    try:
                        with open(report_path, encoding="utf-8") as fh:
                            envelope = json.load(fh)
                        job.state = str(envelope.get("state", "done"))
                        job.error = envelope.get("error")
                        job.message = envelope.get("message")
                        job.cache_hits = int(envelope.get("cache_hits", 0))
                        job.completed = job.total
                    except (json.JSONDecodeError, OSError, ValueError):
                        pending.append(job)  # torn report: redo the job
                else:
                    pending.append(job)
        return pending


def _sequence_of(job_id: str) -> Optional[int]:
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return None


# ----------------------------------------------------------------------
# bounded admission
# ----------------------------------------------------------------------

class AdmissionQueue:
    """A strictly bounded FIFO between admission and the workers.

    ``offer`` never blocks and never grows the queue past ``capacity``
    — the caller turns a refusal into an ``overloaded`` response.

    Examples:
        >>> queue = AdmissionQueue(capacity=1)
        >>> queue.offer("a"), queue.offer("b")
        (True, False)
        >>> queue.take(timeout=0.01)
        'a'
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise InvalidParameterError(
                f"queue capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._items: deque = deque()
        self._condition = threading.Condition()
        self._closed = False

    def offer(self, item: Any) -> bool:
        """Accept ``item`` if there is room; ``False`` otherwise."""
        with self._condition:
            if self._closed or len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._condition.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the oldest item, waiting up to ``timeout``; ``None`` on
        timeout or once the queue is closed and drained."""
        with self._condition:
            if not self._items and not self._closed:
                self._condition.wait(timeout)
            if self._items:
                return self._items.popleft()
            return None

    def depth(self) -> int:
        with self._condition:
            return len(self._items)

    def close(self) -> None:
        """Stop accepting; wake every waiting worker."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed
