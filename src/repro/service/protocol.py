"""The service's JSON wire protocol: requests, errors, job states.

Everything that crosses the wire is strict JSON.  Requests are parsed
by :func:`parse_submission` into a validated :class:`Submission`;
failures surface as :class:`ServiceError` with a machine-readable
``code`` from :data:`ERROR_CODES` and the HTTP status the server maps
it to.  The response envelope is uniform::

    {"ok": true,  ...payload...}                          # success
    {"ok": false, "error": "<code>", "message": "..."}    # failure

Error codes are part of the contract — clients branch on them:

``bad_request``
    The submission is malformed (unknown fields, invalid spec, ...).
``not_found``
    No such job (or its result is gone).
``conflict``
    The job exists but is not in a state that allows the request
    (e.g. fetching the result of a still-running job).
``rate_limited``
    The client's token bucket is empty; retry later.
``overloaded``
    The admission queue is at capacity; the server sheds the request
    instead of growing the queue.  Retry with backoff.
``deadline_exceeded``
    The job's deadline passed before it could finish.
``shutting_down``
    The server is draining (SIGTERM); no new work is admitted.
``internal``
    The server failed; the message carries the error class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvalidParameterError, LineSearchError
from repro.robustness.campaign import (
    FAULT_KINDS,
    PROTOCOLS,
    VARIANTS,
    ScenarioSpec,
)

__all__ = [
    "ERROR_CODES",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "ServiceError",
    "Submission",
    "http_status_for",
    "parse_submission",
]

#: Bumped when the wire format changes incompatibly.
PROTOCOL_VERSION = 1

#: Machine-readable error codes, mapped to HTTP statuses below.
ERROR_CODES = (
    "bad_request",
    "not_found",
    "conflict",
    "rate_limited",
    "overloaded",
    "deadline_exceeded",
    "shutting_down",
    "internal",
)

_HTTP_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "conflict": 409,
    "rate_limited": 429,
    "overloaded": 503,
    "deadline_exceeded": 504,
    "shutting_down": 503,
    "internal": 500,
}

#: Job lifecycle.  ``queued -> running -> done|failed|deadline_exceeded``;
#: ``interrupted`` marks a job whose campaign was checkpointed by a
#: drain — it is requeued (back to ``queued``) on the next start.
JOB_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "deadline_exceeded",
    "interrupted",
)

#: Terminal states: a report artifact exists and the job never runs again.
TERMINAL_STATES = ("done", "failed", "deadline_exceeded")


class ServiceError(LineSearchError):
    """A request the service refuses, with a wire-protocol error code.

    ``retry_after`` (seconds, optional) tells the client when retrying
    is worthwhile; the server surfaces it both as a ``Retry-After``
    header and in the JSON envelope on ``rate_limited`` and
    ``overloaded`` responses.
    """

    def __init__(
        self, code: str, message: str, retry_after: Optional[float] = None
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown service error code {code!r}")
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    @property
    def http_status(self) -> int:
        return _HTTP_STATUS[self.code]

    def body(self) -> Dict[str, Any]:
        """The JSON error envelope for this failure."""
        body: Dict[str, Any] = {
            "ok": False, "error": self.code, "message": str(self)
        }
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return body

    def headers(self) -> Dict[str, str]:
        """Extra HTTP headers for this failure (``Retry-After``)."""
        if self.retry_after is None:
            return {}
        # HTTP Retry-After takes integer seconds; round up so clients
        # never retry before the window reopens.
        import math as _math

        return {"Retry-After": str(max(1, _math.ceil(self.retry_after)))}


def http_status_for(code: str) -> int:
    """The HTTP status the server answers with for an error ``code``."""
    return _HTTP_STATUS[code]


# ----------------------------------------------------------------------
# submissions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Submission:
    """A validated submit request: the specs to run and how to run them.

    Produced by :func:`parse_submission`; re-serialized verbatim into
    the job manifest so a crashed server can rebuild the exact request.
    """

    specs: Tuple[ScenarioSpec, ...]
    method: str = "event"
    check_invariants: bool = True
    client: str = "anonymous"
    deadline: Optional[float] = None
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :meth:`from_dict`."""
        return {
            "specs": [spec.to_dict() for spec in self.specs],
            "method": self.method,
            "check_invariants": self.check_invariants,
            "client": self.client,
            "deadline": self.deadline,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Submission":
        """Rebuild a submission from :meth:`to_dict` output."""
        return cls(
            specs=tuple(
                ScenarioSpec.from_dict(entry) for entry in data["specs"]
            ),
            method=str(data.get("method", "event")),
            check_invariants=bool(data.get("check_invariants", True)),
            client=str(data.get("client", "anonymous")),
            deadline=(
                None if data.get("deadline") is None
                else float(data["deadline"])
            ),
            seed=int(data.get("seed", 0)),
        )


def _bad(message: str) -> ServiceError:
    return ServiceError("bad_request", message)


def _parse_spec(entry: Any) -> ScenarioSpec:
    if not isinstance(entry, dict):
        raise _bad(f"each spec must be an object, got {type(entry).__name__}")
    unknown = set(entry) - {
        "n", "f", "target", "fault", "seed", "protocol", "mode", "variant"
    }
    if unknown:
        raise _bad(f"unknown spec field(s): {', '.join(sorted(unknown))}")
    try:
        spec = ScenarioSpec.from_dict(
            {
                "n": entry["n"],
                "f": entry["f"],
                "target": entry["target"],
                "fault": entry.get("fault", "adversarial"),
                "seed": entry.get("seed"),
                "protocol": entry.get("protocol", "none"),
                "mode": entry.get("mode", "sync"),
                "variant": entry.get("variant", "line"),
            }
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _bad(f"invalid scenario spec: {exc}") from None
    if spec.n < 1 or spec.f < 0 or spec.f >= spec.n:
        raise _bad(
            f"spec requires 1 <= f+1 <= n, got n={spec.n} f={spec.f}"
        )
    kind = spec.fault.partition(":")[0]
    if kind not in FAULT_KINDS:
        raise _bad(
            f"unknown fault kind {kind!r}; kinds: {', '.join(FAULT_KINDS)}"
        )
    if spec.protocol not in PROTOCOLS:
        raise _bad(
            f"unknown protocol {spec.protocol!r}; "
            f"protocols: {', '.join(PROTOCOLS)}"
        )
    if spec.protocol == "confirmation" and spec.n < 2 * spec.f + 1:
        raise _bad(
            f"the confirmation protocol needs n >= 2f + 1 = "
            f"{2 * spec.f + 1} robots to tolerate {spec.f} liars, "
            f"got n = {spec.n}"
        )
    if spec.variant not in VARIANTS:
        raise _bad(
            f"unknown variant {spec.variant!r}; "
            f"variants: {', '.join(VARIANTS)}"
        )
    if spec.variant == "evacuation" and spec.n < 2 * spec.f + 1:
        raise _bad(
            f"the evacuation variant needs a reliable majority "
            f"(n >= 2f + 1 = {2 * spec.f + 1}), got n = {spec.n}"
        )
    if spec.mode != "sync":
        from repro.async_sched.schedulers import scheduler_from_spec

        try:
            scheduler_from_spec(spec.mode)
        except (InvalidParameterError, TypeError, ValueError) as exc:
            raise _bad(f"invalid scheduler mode {spec.mode!r}: {exc}") from None
    return spec


def _grid_specs(payload: Dict[str, Any]) -> List[ScenarioSpec]:
    """Expand a ``pairs``/``targets``/``faults`` grid, seeded exactly
    like :func:`~repro.robustness.campaign.chaos_scenarios`."""
    import random

    pairs = payload.get("pairs")
    targets = payload.get("targets")
    if not isinstance(pairs, list) or not pairs:
        raise _bad("grid submissions need a non-empty 'pairs' list")
    if not isinstance(targets, list) or not targets:
        raise _bad("grid submissions need a non-empty 'targets' list")
    faults = payload.get("faults", list(FAULT_KINDS))
    if not isinstance(faults, list) or not faults:
        raise _bad("'faults' must be a non-empty list when given")
    try:
        seed = int(payload.get("seed", 0))
    except (TypeError, ValueError):
        raise _bad("'seed' must be an integer") from None
    protocol = payload.get("protocol", "none")
    if not isinstance(protocol, str):
        raise _bad("'protocol' must be a string")
    mode = payload.get("mode", "sync")
    if not isinstance(mode, str):
        raise _bad("'mode' must be a string")
    variant = payload.get("variant", "line")
    if not isinstance(variant, str):
        raise _bad("'variant' must be a string")
    master = random.Random(seed)
    specs: List[ScenarioSpec] = []
    for pair in pairs:
        if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
            raise _bad(f"each pair must be [n, f], got {pair!r}")
        n, f = int(pair[0]), int(pair[1])
        for target in targets:
            for fault in faults:
                specs.append(
                    ScenarioSpec(
                        n=n,
                        f=f,
                        target=float(target),
                        fault=str(fault),
                        seed=master.randrange(2**32),
                        protocol=protocol,
                        mode=mode,
                        variant=variant,
                    )
                )
    return [_parse_spec(spec.to_dict()) for spec in specs]


def parse_submission(
    payload: Any,
    default_method: str = "event",
    default_deadline: Optional[float] = None,
    max_deadline: Optional[float] = None,
    max_scenarios: Optional[int] = None,
) -> Submission:
    """Validate a raw JSON submit body into a :class:`Submission`.

    Three request shapes are accepted:

    * single scenario: ``{"spec": {...}}``;
    * explicit campaign: ``{"specs": [{...}, ...]}``;
    * grid campaign: ``{"pairs": [[n, f], ...], "targets": [...],
      "faults": [...], "seed": 0}`` — expanded with the same master
      seeding as ``chaos_scenarios`` so the served grid equals the CLI
      grid.

    Common optional fields: ``method`` (``"event"`` or ``"batch"``),
    ``check_invariants``, ``client``, ``deadline`` (seconds).  Specs may
    carry ``protocol`` (``"none"`` or ``"confirmation"`` — the Byzantine
    voting layer) and ``mode`` (``"sync"`` or an activation-scheduler
    spec like ``"event:adversarial:1.0"`` — the scheduled-time engine)
    and ``variant`` (``"line"``, ``"halfline"``, or ``"evacuation"`` —
    the problem variant, see :mod:`repro.variants`); grid submissions
    set each once at the top level.  Confirmation, scheduled-time, and
    problem-variant scenarios are event-only: combining any of them
    with ``method="batch"`` is refused with ``bad_request``.

    Examples:
        >>> sub = parse_submission({"spec": {"n": 3, "f": 1, "target": 2.0}})
        >>> (len(sub.specs), sub.method)
        (1, 'event')
        >>> parse_submission({"specs": []})
        Traceback (most recent call last):
          ...
        repro.service.protocol.ServiceError: 'specs' must not be empty
    """
    if not isinstance(payload, dict):
        raise _bad("the request body must be a JSON object")
    shapes = [k for k in ("spec", "specs", "pairs") if k in payload]
    if len(shapes) != 1:
        raise _bad(
            "the submission must contain exactly one of 'spec' (single "
            "scenario), 'specs' (campaign), or 'pairs' (grid campaign)"
        )
    if "spec" in payload:
        specs = [_parse_spec(payload["spec"])]
    elif "specs" in payload:
        raw = payload["specs"]
        if not isinstance(raw, list):
            raise _bad("'specs' must be a list of scenario specs")
        if not raw:
            raise _bad("'specs' must not be empty")
        specs = [_parse_spec(entry) for entry in raw]
    else:
        specs = _grid_specs(payload)
    if max_scenarios is not None and len(specs) > max_scenarios:
        raise _bad(
            f"submission holds {len(specs)} scenarios; this server "
            f"accepts at most {max_scenarios} per job"
        )

    method = str(payload.get("method", default_method))
    if method not in ("event", "batch"):
        raise _bad(f"method must be 'event' or 'batch', got {method!r}")
    # The confirmation protocol is claim/vote/diversion event
    # machinery; the batch kernels cannot express it, and the server
    # refuses rather than silently downgrading the client's choice.
    if method == "batch" and any(
        spec.protocol == "confirmation" for spec in specs
    ):
        raise _bad(
            "method 'batch' cannot run confirmation-protocol scenarios; "
            "use method 'event' for protocol='confirmation'"
        )
    # Likewise the batch kernels have no notion of activation schedules
    # or wall time, so scheduled-time scenarios are event-only.
    if method == "batch" and any(spec.mode != "sync" for spec in specs):
        raise _bad(
            "method 'batch' cannot run scheduled-time scenarios; "
            "use method 'event' for mode != 'sync'"
        )
    # Variant scenarios execute through their variant's own dispatch,
    # which never takes the batch fast path; refuse rather than
    # silently downgrade.
    if method == "batch" and any(spec.variant != "line" for spec in specs):
        raise _bad(
            "method 'batch' cannot run problem-variant scenarios; "
            "use method 'event' for variant != 'line'"
        )
    # The batch fast path needs the invariant audit off (the audit
    # requires an event log only the engine produces); default
    # accordingly but let the client force either.
    default_invariants = method != "batch"
    check_invariants = bool(
        payload.get("check_invariants", default_invariants)
    )

    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise _bad("'client' must be a non-empty string")

    deadline = payload.get("deadline", default_deadline)
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise _bad("'deadline' must be a number of seconds") from None
        if deadline <= 0:
            raise _bad("'deadline' must be positive")
        if max_deadline is not None:
            deadline = min(deadline, max_deadline)

    try:
        seed = int(payload.get("seed", 0))
    except (TypeError, ValueError):
        raise _bad("'seed' must be an integer") from None

    return Submission(
        specs=tuple(specs),
        method=method,
        check_invariants=check_invariants,
        client=client,
        deadline=deadline,
        seed=seed,
    )


def dumps(body: Dict[str, Any]) -> bytes:
    """Canonical JSON encoding for wire responses."""
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
