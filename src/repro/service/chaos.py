"""Service-level chaos: SIGKILL the server mid-campaign, restart, verify.

:func:`run_service_chaos` is the seeded end-to-end crash drill behind
the ``service-smoke`` CI job and ``tests/service/test_chaos.py``:

1. compute the *uninterrupted* campaign report in-process (the same
   submission parsed by the same protocol code, run on the same
   executor) — the byte-identical reference;
2. start a real ``linesearch serve`` subprocess on a durable state
   directory and submit the campaign over HTTP;
3. at a seeded progress point, ``SIGKILL`` the server — no drain, no
   checkpoint beyond what the journal already holds;
4. restart the server on the same state directory and wait for the
   resumed job to finish;
5. verify the resumed report is byte-identical to the reference and
   that the scenarios completed before the kill were served from the
   warmed cache (``cache_hits > 0``) rather than recomputed.

Everything is driven through the public wire protocol — the harness
holds no handle into the server other than its PID and its port.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import LineSearchError
from repro.robustness.campaign import CampaignReport, build_scenario
from repro.robustness.executor import CampaignExecutor
from repro.service.client import ServiceClient
from repro.service.protocol import parse_submission

__all__ = ["ChaosReport", "run_service_chaos"]

_DEFAULT_PAIRS: Tuple[Tuple[int, int], ...] = ((3, 1), (4, 2), (5, 3))
_DEFAULT_TARGETS: Tuple[float, ...] = (1.0, -2.5, 4.0, -6.5)
_DEFAULT_FAULTS: Tuple[str, ...] = ("none", "crash_stop", "byzantine")


@dataclass
class ChaosReport:
    """What one service chaos drill observed."""

    total_scenarios: int
    kills: int
    killed_mid_campaign: bool
    completed_before_kill: int
    final_state: str
    byte_identical: bool
    cache_hits_after_restart: int
    attempts: int
    events: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """The acceptance gate: resumed byte-identically, with the
        pre-kill work served from cache, after a genuine mid-run kill."""
        return (
            self.final_state == "done"
            and self.byte_identical
            and (not self.killed_mid_campaign
                 or self.cache_hits_after_restart > 0)
        )

    def describe(self) -> str:
        lines = [
            "service chaos drill",
            f"  scenarios            : {self.total_scenarios}",
            f"  kills delivered      : {self.kills}",
            f"  killed mid-campaign  : {self.killed_mid_campaign} "
            f"(completed before kill: {self.completed_before_kill})",
            f"  final job state      : {self.final_state}",
            f"  byte-identical resume: {self.byte_identical}",
            f"  cache hits on resume : {self.cache_hits_after_restart}",
            f"  attempts             : {self.attempts}",
            f"  verdict              : "
            f"{'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_scenarios": self.total_scenarios,
            "kills": self.kills,
            "killed_mid_campaign": self.killed_mid_campaign,
            "completed_before_kill": self.completed_before_kill,
            "final_state": self.final_state,
            "byte_identical": self.byte_identical,
            "cache_hits_after_restart": self.cache_hits_after_restart,
            "attempts": self.attempts,
            "passed": self.passed,
            "events": self.events,
        }


# ----------------------------------------------------------------------
# server subprocess management
# ----------------------------------------------------------------------

def _server_env() -> Dict[str, str]:
    """The subprocess environment, with ``repro`` importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class _ServerProcess:
    """One ``linesearch serve`` subprocess with a port-file handshake."""

    def __init__(self, state_dir: str, extra_args: Sequence[str] = ()):
        self.state_dir = state_dir
        self.port_file = os.path.join(state_dir, "port")
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--state-dir", state_dir,
                "--port", "0",
                "--port-file", self.port_file,
                *extra_args,
            ],
            env=_server_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.port: Optional[int] = None

    def client(self, timeout: float = 15.0) -> ServiceClient:
        """Wait for the port file, then for readiness; return a client."""
        deadline = time.monotonic() + timeout
        while self.port is None:
            if self.process.poll() is not None:
                raise LineSearchError(
                    f"server exited early with code "
                    f"{self.process.returncode}"
                )
            try:
                with open(self.port_file, encoding="utf-8") as handle:
                    text = handle.read().strip()
                if text:
                    self.port = int(text)
                    break
            except (OSError, ValueError):
                pass
            if time.monotonic() > deadline:
                raise LineSearchError(
                    "server did not publish its port in time"
                )
            time.sleep(0.02)
        client = ServiceClient(
            f"http://127.0.0.1:{self.port}", client_id="chaos-harness"
        )
        client.wait_ready(timeout=max(0.1, deadline - time.monotonic()))
        return client

    def kill(self) -> None:
        """SIGKILL — the crash under test; no chance to checkpoint."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10.0)

    def terminate(self) -> None:
        """SIGTERM and reap (cleanup path, not the crash under test)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)


# ----------------------------------------------------------------------
# the drill
# ----------------------------------------------------------------------

def _reference_report(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The uninterrupted campaign report, computed in-process through
    the same protocol parse and executor the server uses."""
    submission = parse_submission(payload)
    scenarios = [
        build_scenario(spec, method=submission.method)
        for spec in submission.specs
    ]
    executor = CampaignExecutor(handle_sigterm=False)
    report = executor.execute(
        scenarios, check_invariants=submission.check_invariants
    )
    return report.to_dict()


def _campaign_payload(pairs, targets, faults, seed) -> Dict[str, Any]:
    return {
        "pairs": [list(pair) for pair in pairs],
        "targets": list(targets),
        "faults": list(faults),
        "seed": seed,
        "client": "chaos-harness",
        "deadline": 300.0,
    }


def run_service_chaos(
    state_dir: str,
    seed: int = 0,
    pairs: Sequence[Tuple[int, int]] = _DEFAULT_PAIRS,
    targets: Sequence[float] = _DEFAULT_TARGETS,
    faults: Sequence[str] = _DEFAULT_FAULTS,
    kills: int = 1,
    max_attempts: int = 3,
    job_timeout: float = 120.0,
    server_args: Sequence[str] = (),
) -> ChaosReport:
    """Run the kill/restart drill; see the module docstring.

    The kill point is seeded: a progress threshold is drawn from the
    campaign's interior, and the server is killed as soon as the job
    reports that many completed scenarios.  If a campaign outruns the
    poller (the job finishes before the kill lands), the attempt is
    discarded and retried in a fresh subdirectory up to
    ``max_attempts`` times — a kill that lands after completion would
    test nothing.

    Args:
        state_dir: scratch directory; each attempt uses a fresh
            subdirectory, the reference report is computed in-process.
        seed: drives both the campaign grid and the kill points.
        kills: how many kill/restart cycles to inflict (>= 1).
        server_args: extra ``linesearch serve`` CLI arguments.

    Returns:
        A :class:`ChaosReport`; ``report.passed`` is the gate.
    """
    if kills < 1:
        raise LineSearchError("kills must be >= 1")
    payload = _campaign_payload(pairs, targets, faults, seed)
    reference = _reference_report(payload)
    total = len(reference["results"])
    rng = random.Random(seed)
    events: List[str] = []

    last: Optional[ChaosReport] = None
    for attempt in range(1, max_attempts + 1):
        attempt_dir = os.path.join(state_dir, f"attempt-{attempt:02d}")
        os.makedirs(attempt_dir, exist_ok=True)
        report = _run_attempt(
            attempt_dir, payload, reference, total, rng, kills,
            job_timeout, server_args, events,
        )
        report.attempts = attempt
        last = report
        if report.killed_mid_campaign or not report.byte_identical:
            break
        events.append(
            f"attempt {attempt}: campaign finished before the kill "
            f"landed; retrying"
        )
    assert last is not None
    last.events = events
    return last


def _run_attempt(
    attempt_dir: str,
    payload: Dict[str, Any],
    reference: Dict[str, Any],
    total: int,
    rng: random.Random,
    kills: int,
    job_timeout: float,
    server_args: Sequence[str],
    events: List[str],
) -> ChaosReport:
    server = _ServerProcess(attempt_dir, extra_args=server_args)
    kills_delivered = 0
    killed_mid = False
    completed_before_kill = 0
    try:
        client = server.client()
        accepted = client.submit_campaign(**payload)
        job_id = accepted["job_id"]
        events.append(f"submitted {job_id}: {total} scenario(s)")

        for _ in range(kills):
            threshold = rng.randint(1, max(1, total - 2))
            landed, seen = _await_progress(client, job_id, threshold)
            server.kill()
            kills_delivered += 1
            if landed:
                killed_mid = True
                completed_before_kill = max(completed_before_kill, seen)
                events.append(
                    f"SIGKILL at >= {seen}/{total} completed"
                )
            else:
                events.append(
                    f"SIGKILL landed after completion ({seen}/{total})"
                )
            server = _ServerProcess(attempt_dir, extra_args=server_args)
            client = server.client()
        events.append("server restarted; waiting for the resumed job")

        envelope = client.wait(job_id, timeout=job_timeout)
        final_state = envelope.get("state", "failed")
        resumed = envelope.get("report")
        identical = _canonical(resumed) == _canonical(reference)
        cache_hits = int(envelope.get("cache_hits", 0))
        return ChaosReport(
            total_scenarios=total,
            kills=kills_delivered,
            killed_mid_campaign=killed_mid,
            completed_before_kill=completed_before_kill,
            final_state=final_state,
            byte_identical=identical,
            cache_hits_after_restart=cache_hits,
            attempts=1,
        )
    finally:
        server.terminate()


def _await_progress(client: ServiceClient, job_id: str,
                    threshold: int) -> Tuple[bool, int]:
    """Poll until ``threshold`` scenarios completed (True) or the job
    went terminal first (False); returns the last completed count."""
    seen = 0
    while True:
        try:
            view = client.poll(job_id)
        except (ConnectionError, LineSearchError):
            return False, seen
        seen = int(view.get("completed", 0))
        if view["state"] in ("done", "failed", "deadline_exceeded"):
            return False, seen
        if seen >= threshold and view["state"] == "running":
            return True, seen
        time.sleep(0.002)


def _canonical(report: Optional[Dict[str, Any]]) -> str:
    if report is None:
        return ""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
