"""repro — reproduction of *Search on a Line with Faulty Robots*.

Czyzowicz, Kranakis, Krizanc, Narayanan, Opatrny — PODC 2016
(DOI 10.1145/2933057.2933102).

``n`` unit-speed robots search an infinite line for a target at unknown
distance at least 1 from their shared start; up to ``f`` robots are
faulty (they traverse but never detect).  This package implements:

* the paper's **proportional schedule algorithms** ``A(n, f)`` with
  competitive ratio ``((4f+4)/n)^((2f+2)/n) ((4f+4)/n-2)^(1-(2f+2)/n)+1``
  (Theorem 1), optimal at ``n = f+1`` and asymptotically optimal at
  ``n = 2f+1``;
* the **trivial ratio-1 algorithm** for ``n >= 2f+2`` and the classic
  baselines (doubling, group doubling);
* a **continuous-time simulator** measuring competitive ratios of
  arbitrary trajectory fleets under worst-case faults;
* the **Theorem 2 lower bound** both as a root solve and as an
  executable adversary game;
* experiment harnesses regenerating **Table 1 and Figure 5** (plus the
  illustrative Figures 1-4);
* a **Byzantine confirmation layer** (arXiv:1611.08209): claims commit
  only after ``f + 1`` confirming votes, with the closed-form
  ``2 rho + 1`` commit-time bound and lying-robot chaos campaigns;
* an **expected-time objective** for probabilistic detection faults
  (arXiv:2303.15608);
* a **problem-variant subsystem** (:mod:`repro.variants`): p-faulty
  search on a half-line with its optimal expansion ratio
  (arXiv:2002.07797) and faulty-majority search-and-evacuation with a
  gather phase (arXiv:2605.08355), both dispatchable from chaos
  campaigns via ``ScenarioSpec.variant``.

Quickstart::

    from repro import ProportionalAlgorithm, measure_competitive_ratio

    algorithm = ProportionalAlgorithm(n=3, f=1)
    print(algorithm.theoretical_competitive_ratio())   # 5.233...
    print(measure_competitive_ratio(algorithm).value)  # same, measured
"""

from repro._version import __version__
from repro.async_sched import (
    ActivationScheduler,
    AdversarialScheduler,
    AsyncScheduler,
    EventEngine,
    FsyncScheduler,
    SsyncScheduler,
    run_async_parity,
    run_degradation_sweep,
    scheduler_from_spec,
)
from repro.batch import (
    BatchEvaluator,
    available_backends,
    compile_trajectory,
)
from repro.baselines import (
    DelayedGroupDoubling,
    GroupDoubling,
    SingleRobotDoubling,
    SplitDoubling,
    TwoGroupAlgorithm,
)
from repro.byzantine import (
    ByzantineOutcome,
    ByzantineSearchSimulation,
    ConfirmationProtocol,
    simulate_byzantine_search,
)
from repro.core import (
    ExpectedTimeEstimate,
    Regime,
    SearchParameters,
    algorithm_competitive_ratio,
    asymptotic_cr,
    byzantine_confirmation_bound,
    byzantine_quorum,
    competitive_ratio,
    evacuation_feasible,
    evacuation_ratio_bound,
    expected_competitive_ratio,
    expected_detection_time,
    halfline_expected_ratio,
    halfline_expected_time,
    lower_bound,
    max_fault_budget,
    min_byzantine_fleet,
    min_evacuation_fleet,
    min_fleet_size,
    odd_critical_cr,
    optimal_beta,
    optimal_expansion_factor,
    optimal_halfline_gamma,
    optimal_halfline_ratio,
    proportionality_ratio,
    schedule_competitive_ratio,
    theorem2_lower_bound,
)
from repro.errors import (
    AdversaryError,
    BatchError,
    CampaignError,
    ExperimentError,
    InvalidParameterError,
    InvariantViolationError,
    JournalError,
    LineSearchError,
    ScenarioTimeoutError,
    ScheduleError,
    SimulationError,
    TrajectoryError,
    WorkerCrashError,
)
from repro.geometry import Cone, SpaceTimePoint
from repro.lowerbound import AdversaryWitness, TargetLadder, TheoremTwoGame
from repro.observability import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    disable_telemetry,
    enable_telemetry,
)
from repro.perf import (
    compare_reports,
    profile_spans,
    run_suite,
)
from repro.robots import (
    AdversarialFaults,
    BehavioralFaults,
    ByzantineAdversary,
    ByzantineFalseAlarmFault,
    CrashDetectionFault,
    CrashStopFault,
    FaultBehavior,
    FaultModel,
    FixedFaults,
    Fleet,
    ProbabilisticDetectionFault,
    RandomFaults,
    Robot,
)
from repro.robustness import (
    CampaignExecutor,
    CampaignJournal,
    CampaignReport,
    RetryPolicy,
    ScenarioSpec,
    chaos_scenarios,
    run_campaign,
)
from repro.schedule import (
    ByzantineConfirmationAlgorithm,
    CustomBetaAlgorithm,
    HalfLineAlgorithm,
    ProportionalAlgorithm,
    ProportionalSchedule,
    SearchAlgorithm,
)
from repro.simulation import (
    CompetitiveRatioEstimator,
    SearchSimulation,
    measure_competitive_ratio,
    simulate_search,
)
from repro.trajectory import (
    ConeZigZag,
    DoublingTrajectory,
    GeometricZigZag,
    HalfLineZigZag,
    LinearTrajectory,
    PiecewiseTrajectory,
    Trajectory,
    ZigZagTrajectory,
)
from repro.variants import (
    EvacuationVariant,
    HalfLineVariant,
    LineVariant,
    ProblemVariant,
    run_halfline_sweep,
    run_variant_parity,
    variant_for,
)

__all__ = [
    "ActivationScheduler",
    "AdversarialFaults",
    "AdversarialScheduler",
    "AdversaryError",
    "AdversaryWitness",
    "AsyncScheduler",
    "BatchError",
    "BatchEvaluator",
    "BehavioralFaults",
    "ByzantineAdversary",
    "ByzantineConfirmationAlgorithm",
    "ByzantineFalseAlarmFault",
    "ByzantineOutcome",
    "ByzantineSearchSimulation",
    "CampaignError",
    "CampaignExecutor",
    "CampaignJournal",
    "CampaignReport",
    "CompetitiveRatioEstimator",
    "Cone",
    "ConeZigZag",
    "ConfirmationProtocol",
    "CrashDetectionFault",
    "CrashStopFault",
    "CustomBetaAlgorithm",
    "DelayedGroupDoubling",
    "DoublingTrajectory",
    "EvacuationVariant",
    "EventEngine",
    "ExpectedTimeEstimate",
    "ExperimentError",
    "FaultBehavior",
    "FaultModel",
    "FixedFaults",
    "Fleet",
    "FsyncScheduler",
    "GeometricZigZag",
    "GroupDoubling",
    "HalfLineAlgorithm",
    "HalfLineVariant",
    "HalfLineZigZag",
    "InvalidParameterError",
    "InvariantViolationError",
    "JournalError",
    "LineSearchError",
    "LineVariant",
    "LinearTrajectory",
    "MetricsRegistry",
    "PiecewiseTrajectory",
    "ProbabilisticDetectionFault",
    "ProblemVariant",
    "ProportionalAlgorithm",
    "ProportionalSchedule",
    "RandomFaults",
    "Regime",
    "RetryPolicy",
    "Robot",
    "ScenarioSpec",
    "ScenarioTimeoutError",
    "ScheduleError",
    "SearchAlgorithm",
    "SearchParameters",
    "SearchSimulation",
    "SimulationError",
    "SingleRobotDoubling",
    "SpaceTimePoint",
    "SplitDoubling",
    "SsyncScheduler",
    "TargetLadder",
    "Telemetry",
    "TheoremTwoGame",
    "Tracer",
    "Trajectory",
    "TrajectoryError",
    "TwoGroupAlgorithm",
    "WorkerCrashError",
    "ZigZagTrajectory",
    "__version__",
    "algorithm_competitive_ratio",
    "asymptotic_cr",
    "available_backends",
    "byzantine_confirmation_bound",
    "byzantine_quorum",
    "chaos_scenarios",
    "compare_reports",
    "competitive_ratio",
    "compile_trajectory",
    "disable_telemetry",
    "enable_telemetry",
    "evacuation_feasible",
    "evacuation_ratio_bound",
    "expected_competitive_ratio",
    "expected_detection_time",
    "halfline_expected_ratio",
    "halfline_expected_time",
    "lower_bound",
    "max_fault_budget",
    "measure_competitive_ratio",
    "min_byzantine_fleet",
    "min_evacuation_fleet",
    "min_fleet_size",
    "odd_critical_cr",
    "optimal_beta",
    "optimal_expansion_factor",
    "optimal_halfline_gamma",
    "optimal_halfline_ratio",
    "profile_spans",
    "proportionality_ratio",
    "run_async_parity",
    "run_campaign",
    "run_degradation_sweep",
    "run_halfline_sweep",
    "run_suite",
    "run_variant_parity",
    "schedule_competitive_ratio",
    "scheduler_from_spec",
    "simulate_byzantine_search",
    "simulate_search",
    "theorem2_lower_bound",
    "variant_for",
]
