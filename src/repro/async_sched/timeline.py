"""Per-robot wall-clock ↔ plan-time maps built from scheduler slices.

The event engine separates *what* a robot does (its analytic plan
trajectory, parameterized by **plan time**) from *when* it gets to do it
(the activation schedule, parameterized by **wall time**).  A
:class:`Timeline` is the bridge: a lazy, monotone, piecewise-linear map
assembled from the ``(gap, burst)`` slices an activation scheduler
yields for one robot.  During a gap the robot is frozen (plan time does
not advance); during a burst plan time advances 1:1 with wall time.

Exactness contract (the FSYNC parity harness depends on it): the wall
time of a plan instant inside burst ``k`` is computed as
``plan_t + offset_k`` where ``offset_k`` is the *cumulative sum of the
gaps* before that burst — never as ``burst_start_wall + (plan_t - τ)``,
which would round differently.  When every gap is ``0.0`` the offset is
exactly ``0.0`` and ``plan_t + 0.0`` is bit-identical to ``plan_t``, so
an FSYNC timeline reproduces continuous-engine times exactly.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, List, Tuple

from repro.errors import InvalidParameterError, SimulationError

__all__ = ["Timeline"]

#: Slices a single :meth:`Timeline.ensure_plan`/``ensure_wall`` call may
#: pull before giving up — a guard against a quantum so small relative
#: to the horizon that materializing the timeline would never finish.
_MAX_SLICES = 2_000_000


class Timeline:
    """Lazy wall↔plan map for one robot, fed by scheduler slices.

    Args:
        slices: Iterator of ``(gap, burst)`` pairs — wall-time idle gap
            (``>= 0``) followed by an active burst advancing plan time
            by ``burst`` (``> 0``).  Must be effectively infinite: the
            timeline pulls as many slices as its queries need.

    Examples:
        >>> from itertools import repeat
        >>> fsync = Timeline(repeat((0.0, 0.5)))
        >>> fsync.wall_of(3.7)
        3.7
        >>> delayed = Timeline(iter([(1.0, 0.5), (0.0, 0.5)] * 100))
        >>> delayed.wall_of(0.25)   # one gap of 1.0 before the burst
        1.25
        >>> delayed.plan_of(0.5)    # still idle at wall 0.5
        0.0
    """

    __slots__ = ("_slices", "_plan_ends", "_wall_ends", "_offsets")

    def __init__(self, slices: Iterable[Tuple[float, float]]) -> None:
        self._slices: Iterator[Tuple[float, float]] = iter(slices)
        #: Plan time at the end of burst ``k`` (strictly increasing).
        self._plan_ends: List[float] = []
        #: Wall time at the end of burst ``k`` (= plan end + offset).
        self._wall_ends: List[float] = []
        #: Cumulative idle offset during burst ``k`` (non-decreasing).
        self._offsets: List[float] = []

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def _pull(self) -> None:
        try:
            gap, burst = next(self._slices)
        except StopIteration:
            raise SimulationError(
                "activation scheduler exhausted its slices; schedulers "
                "must yield (gap, burst) pairs forever"
            ) from None
        if not (math.isfinite(gap) and gap >= 0.0):
            raise InvalidParameterError(
                f"activation gap must be finite and >= 0, got {gap!r}"
            )
        if not (math.isfinite(burst) and burst > 0.0):
            raise InvalidParameterError(
                f"activation burst must be finite and > 0, got {burst!r}"
            )
        offset = (self._offsets[-1] if self._offsets else 0.0) + gap
        plan_end = (self._plan_ends[-1] if self._plan_ends else 0.0) + burst
        self._offsets.append(offset)
        self._plan_ends.append(plan_end)
        self._wall_ends.append(plan_end + offset)

    def ensure_plan(self, plan_t: float) -> None:
        """Materialize bursts until plan time ``plan_t`` is covered."""
        pulls = 0
        while not self._plan_ends or self._plan_ends[-1] < plan_t:
            if pulls >= _MAX_SLICES:
                raise SimulationError(
                    f"timeline needed more than {_MAX_SLICES} slices to "
                    f"reach plan time {plan_t:g}; the scheduler quantum "
                    "is too small for this horizon"
                )
            self._pull()
            pulls += 1

    def ensure_wall(self, wall_t: float) -> None:
        """Materialize bursts until wall time ``wall_t`` is covered."""
        pulls = 0
        while not self._wall_ends or self._wall_ends[-1] < wall_t:
            if pulls >= _MAX_SLICES:
                raise SimulationError(
                    f"timeline needed more than {_MAX_SLICES} slices to "
                    f"reach wall time {wall_t:g}; the scheduler quantum "
                    "is too small for this horizon"
                )
            self._pull()
            pulls += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def wall_of(self, plan_t: float) -> float:
        """Earliest wall time at which the robot reaches plan time
        ``plan_t`` — exact (``plan_t + 0.0``) when no gap precedes it."""
        if not math.isfinite(plan_t):
            raise InvalidParameterError(
                f"plan time must be finite, got {plan_t!r}"
            )
        if plan_t <= 0.0:
            return plan_t
        self.ensure_plan(plan_t)
        index = bisect_left(self._plan_ends, plan_t)
        return plan_t + self._offsets[index]

    def plan_of(self, wall_t: float) -> float:
        """Plan-time progress of the robot at wall time ``wall_t``
        (frozen during gaps)."""
        if not math.isfinite(wall_t):
            raise InvalidParameterError(
                f"wall time must be finite, got {wall_t!r}"
            )
        if wall_t <= 0.0:
            return 0.0
        self.ensure_wall(wall_t)
        index = bisect_left(self._wall_ends, wall_t)
        plan_start = self._plan_ends[index - 1] if index else 0.0
        wall_start = plan_start + self._offsets[index]
        if wall_t <= wall_start:
            return plan_start  # inside the gap before burst ``index``
        return wall_t - self._offsets[index]

    def offset_at(self, plan_t: float) -> float:
        """Cumulative idle delay accrued by plan time ``plan_t``."""
        if plan_t <= 0.0:
            self.ensure_plan(math.ulp(0.0))
            return self._offsets[0]
        self.ensure_plan(plan_t)
        return self._offsets[bisect_left(self._plan_ends, plan_t)]

    # ------------------------------------------------------------------
    # introspection (audits, tests)
    # ------------------------------------------------------------------

    @property
    def bursts(self) -> Tuple[Tuple[float, float, float], ...]:
        """Materialized ``(plan_start, plan_end, offset)`` bursts."""
        out = []
        start = 0.0
        for end, offset in zip(self._plan_ends, self._offsets):
            out.append((start, end, offset))
            start = end
        return tuple(out)

    def describe(self) -> str:
        """One-line summary of the materialized prefix."""
        if not self._plan_ends:
            return "Timeline(unmaterialized)"
        return (
            f"Timeline({len(self._plan_ends)} bursts, plan<="
            f"{self._plan_ends[-1]:.6g}, delay={self._offsets[-1]:.6g})"
        )
