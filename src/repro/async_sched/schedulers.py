"""Pluggable activation schedulers for the discrete-event engine.

The LCM-style model separates a robot's *plan* (its trajectory,
parameterized by plan time) from its *activation schedule* (when the
wall clock lets that plan advance).  A scheduler expresses the schedule
as an infinite stream of ``(gap, burst)`` slices per robot, consumed by
:class:`repro.async_sched.timeline.Timeline`:

- ``FSYNC`` — fully synchronous rounds: every robot active in every
  round, zero gaps.  The event engine in this mode reproduces the
  continuous engine bit-exactly (see ``async_sched/parity.py``).
- ``SSYNC`` — semi-synchronous: a seeded random subset of robots is
  active each round; inactive robots accrue one quantum of idle gap.
  A fairness cap (``max_idle_rounds``) forces activation so every
  robot makes progress and searches still terminate.
- ``ASYNC`` — per-robot activation delays drawn from a seeded uniform
  distribution, ``gap = max_delay * U[0, 1)`` before every burst.  The
  coupling is monotone: for a fixed seed, raising ``max_delay`` scales
  every gap up, so competitive ratios degrade monotonically (pinned by
  the Hypothesis property suite).
- ``ADVERSARIAL`` — a greedy target-covering adversary: before each
  quantum it inspects the robot's upcoming plan window and inserts the
  maximal allowed delay exactly when that window would visit the
  target.  This is the empirical worst case the closed forms (and the
  lower bounds of arXiv:1707.05077) do not cover.

Determinism contract: scheduler randomness derives arithmetically from
``(seed, stream)`` — never from ``hash()`` — so slice streams are
identical across processes and ``PYTHONHASHSEED`` values, and SSYNC's
per-round subsets are drawn in round order from a single master stream
(memoized in the shared context) so they are independent of the
interleaving in which robots' timelines materialize.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.trajectory.base import Trajectory

__all__ = [
    "ActivationScheduler",
    "AdversarialScheduler",
    "AsyncScheduler",
    "FsyncScheduler",
    "SsyncScheduler",
    "SCHEDULER_KINDS",
    "SchedulerContext",
    "scheduler_from_spec",
]

#: Registered scheduler kinds, in canonical order.
SCHEDULER_KINDS: Tuple[str, ...] = ("fsync", "ssync", "async", "adversarial")

_DEFAULT_QUANTUM = 0.5

#: Mixing constants for the arithmetic (hash-free) stream derivation.
_STREAM_MULT = 1_000_003
_STREAM_SALT = 0x9E3779B9


class SchedulerContext:
    """Everything a scheduler may consult when emitting slices.

    The context is shared by all robots of one engine run, so
    schedulers can coordinate (SSYNC's global per-round subsets live in
    :attr:`shared`) while remaining deterministic.

    Args:
        plans: Per-robot plan trajectories (post fault application).
        target: The target the adversary wants to keep uncovered.
        seed: Master seed for every derived random stream.
    """

    def __init__(
        self,
        plans: Sequence[Trajectory],
        target: float,
        seed: int,
    ) -> None:
        self.plans: Tuple[Trajectory, ...] = tuple(plans)
        self.target = float(target)
        self.seed = int(seed)
        #: Scratch space shared across robots (e.g. SSYNC round masks).
        self.shared: Dict[str, object] = {}

    @property
    def n(self) -> int:
        return len(self.plans)

    def rng(self, stream: int) -> random.Random:
        """Seeded generator for an integer-identified stream.

        Derivation is purely arithmetic so it is stable across
        processes and ``PYTHONHASHSEED`` values.
        """
        return random.Random(
            (self.seed * _STREAM_MULT + int(stream)) ^ _STREAM_SALT
        )

    def window_has_visit(self, robot: int, lo: float, hi: float) -> bool:
        """Whether robot ``robot``'s plan visits the target during the
        half-open plan-time window ``(lo, hi]``."""
        plan = self.plans[robot]
        if not plan.covers(self.target):
            return False
        return any(t > lo for t in plan.visit_times(self.target, hi))


class ActivationScheduler(ABC):
    """Strategy producing per-robot ``(gap, burst)`` slice streams."""

    #: Canonical kind name (one of :data:`SCHEDULER_KINDS`).
    kind: str = ""

    def __init__(self, quantum: float = _DEFAULT_QUANTUM) -> None:
        quantum = float(quantum)
        if not (math.isfinite(quantum) and quantum > 0.0):
            raise InvalidParameterError(
                f"scheduler quantum must be finite and > 0, got {quantum!r}"
            )
        self.quantum = quantum

    @abstractmethod
    def slices(
        self, robot: int, context: SchedulerContext
    ) -> Iterator[Tuple[float, float]]:
        """Yield ``(gap, burst)`` pairs for one robot, forever."""

    def describe(self) -> str:
        return f"{self.kind}(quantum={self.quantum:g})"

    def spec(self) -> str:
        """Round-trippable spec string (see :func:`scheduler_from_spec`)."""
        return f"{self.kind}:{self.quantum:g}"


class FsyncScheduler(ActivationScheduler):
    """Fully synchronous rounds: every robot active, zero gaps.

    Examples:
        >>> from itertools import islice
        >>> sched = FsyncScheduler(quantum=1.0)
        >>> list(islice(sched.slices(0, SchedulerContext([], 1.0, 0)), 3))
        [(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]
    """

    kind = "fsync"

    def slices(
        self, robot: int, context: SchedulerContext
    ) -> Iterator[Tuple[float, float]]:
        while True:
            yield (0.0, self.quantum)


class SsyncScheduler(ActivationScheduler):
    """Semi-synchronous: seeded random robot subset active per round.

    Each round, every robot is independently active with probability
    ``p``.  The per-round activation masks are global: they are drawn
    lazily in round order from a single master stream and memoized in
    ``context.shared``, so whichever robot's timeline materializes a
    round first, all robots observe the same mask.  After
    ``max_idle_rounds`` consecutive idle rounds a robot is forcibly
    activated — without this fairness cap an unlucky stream could stall
    a robot indefinitely and the search might never terminate.
    """

    kind = "ssync"

    def __init__(
        self,
        p: float = 0.5,
        quantum: float = _DEFAULT_QUANTUM,
        max_idle_rounds: int = 8,
    ) -> None:
        super().__init__(quantum)
        p = float(p)
        if not (0.0 < p <= 1.0):
            raise InvalidParameterError(
                f"SSYNC activation probability must be in (0, 1], got {p!r}"
            )
        max_idle_rounds = int(max_idle_rounds)
        if max_idle_rounds < 1:
            raise InvalidParameterError(
                "SSYNC max_idle_rounds must be >= 1, got "
                f"{max_idle_rounds!r}"
            )
        self.p = p
        self.max_idle_rounds = max_idle_rounds

    def describe(self) -> str:
        return (
            f"ssync(p={self.p:g}, quantum={self.quantum:g}, "
            f"max_idle_rounds={self.max_idle_rounds})"
        )

    def spec(self) -> str:
        return f"ssync:{self.p:g}:{self.quantum:g}"

    def _round_mask(self, context: SchedulerContext, round_no: int) -> List[bool]:
        key = "ssync_masks"
        masks = context.shared.setdefault(key, [])
        rng_key = "ssync_rng"
        if rng_key not in context.shared:
            context.shared[rng_key] = context.rng(context.n)
        rng = context.shared[rng_key]
        while len(masks) <= round_no:
            masks.append([rng.random() < self.p for _ in range(context.n)])
        return masks[round_no]

    def slices(
        self, robot: int, context: SchedulerContext
    ) -> Iterator[Tuple[float, float]]:
        round_no = 0
        idle = 0
        gap = 0.0
        while True:
            active = self._round_mask(context, round_no)[robot]
            if not active and idle < self.max_idle_rounds:
                gap += self.quantum
                idle += 1
            else:
                yield (gap, self.quantum)
                gap = 0.0
                idle = 0
            round_no += 1


class AsyncScheduler(ActivationScheduler):
    """Per-robot activation delays from a seeded uniform distribution.

    Before every burst, robot ``i`` idles for
    ``max_delay * U[0, 1)`` drawn from its own stream
    ``context.rng(i)``.  For a fixed seed the draws are identical
    across ``max_delay`` values, so gaps — and hence detection times —
    are monotone non-decreasing in ``max_delay`` (the monotone-CR
    property test relies on this coupling).
    """

    kind = "async"

    def __init__(
        self, max_delay: float = 1.0, quantum: float = _DEFAULT_QUANTUM
    ) -> None:
        super().__init__(quantum)
        max_delay = float(max_delay)
        if not (math.isfinite(max_delay) and max_delay >= 0.0):
            raise InvalidParameterError(
                f"max_delay must be finite and >= 0, got {max_delay!r}"
            )
        self.max_delay = max_delay

    def describe(self) -> str:
        return (
            f"async(max_delay={self.max_delay:g}, quantum={self.quantum:g})"
        )

    def spec(self) -> str:
        return f"async:{self.max_delay:g}:{self.quantum:g}"

    def slices(
        self, robot: int, context: SchedulerContext
    ) -> Iterator[Tuple[float, float]]:
        rng = context.rng(robot)
        while True:
            yield (self.max_delay * rng.random(), self.quantum)


class AdversarialScheduler(ActivationScheduler):
    """Greedy target-covering adversary.

    Before each quantum the adversary peeks at the robot's next plan
    window ``(p, p + quantum]``: if the plan would visit the target in
    that window, the robot is delayed by the full ``max_delay``;
    otherwise it runs immediately.  The delay budget is per-activation
    (the LCM adversary may delay any activation, but each by a bounded
    amount), so a robot heading for the target is stalled on every leg
    that matters and untouched otherwise — the greedy worst case for
    detection time under a bounded-delay adversary.
    """

    kind = "adversarial"

    def __init__(
        self, max_delay: float = 1.0, quantum: float = _DEFAULT_QUANTUM
    ) -> None:
        super().__init__(quantum)
        max_delay = float(max_delay)
        if not (math.isfinite(max_delay) and max_delay >= 0.0):
            raise InvalidParameterError(
                f"max_delay must be finite and >= 0, got {max_delay!r}"
            )
        self.max_delay = max_delay

    def describe(self) -> str:
        return (
            f"adversarial(max_delay={self.max_delay:g}, "
            f"quantum={self.quantum:g})"
        )

    def spec(self) -> str:
        return f"adversarial:{self.max_delay:g}:{self.quantum:g}"

    def slices(
        self, robot: int, context: SchedulerContext
    ) -> Iterator[Tuple[float, float]]:
        plan_t = 0.0
        while True:
            nxt = plan_t + self.quantum
            if self.max_delay > 0.0 and context.window_has_visit(
                robot, plan_t, nxt
            ):
                yield (self.max_delay, self.quantum)
            else:
                yield (0.0, self.quantum)
            plan_t = nxt


def scheduler_from_spec(spec: str) -> ActivationScheduler:
    """Parse a scheduler spec string.

    Grammar: ``[event:]KIND[:ARG[:QUANTUM]]`` where ``KIND`` is one of
    :data:`SCHEDULER_KINDS`; ``ARG`` is the activation probability for
    ``ssync`` and the max delay for ``async``/``adversarial`` (ignored
    for ``fsync``, which accepts ``fsync[:QUANTUM]``).  The bare string
    ``"event"`` means the FSYNC default.

    Examples:
        >>> scheduler_from_spec("event").describe()
        'fsync(quantum=0.5)'
        >>> scheduler_from_spec("event:adversarial:1.0").describe()
        'adversarial(max_delay=1, quantum=0.5)'
        >>> scheduler_from_spec("ssync:0.25:0.125").describe()
        'ssync(p=0.25, quantum=0.125, max_idle_rounds=8)'
    """
    if not isinstance(spec, str) or not spec.strip():
        raise InvalidParameterError(
            f"scheduler spec must be a non-empty string, got {spec!r}"
        )
    parts = spec.strip().lower().split(":")
    if parts[0] == "event":
        parts = parts[1:] or ["fsync"]
    kind, args = parts[0], parts[1:]
    if kind not in SCHEDULER_KINDS:
        raise InvalidParameterError(
            f"unknown scheduler kind {kind!r}; expected one of "
            f"{', '.join(SCHEDULER_KINDS)}"
        )
    try:
        values = [float(a) for a in args]
    except ValueError:
        raise InvalidParameterError(
            f"scheduler spec arguments must be numeric, got {spec!r}"
        ) from None
    if len(values) > 2:
        raise InvalidParameterError(
            f"scheduler spec takes at most two arguments, got {spec!r}"
        )
    if kind == "fsync":
        if len(values) > 1:
            raise InvalidParameterError(
                f"fsync takes at most a quantum argument, got {spec!r}"
            )
        return FsyncScheduler(*values)
    if kind == "ssync":
        return SsyncScheduler(*values)
    if kind == "async":
        return AsyncScheduler(*values)
    return AdversarialScheduler(*values)
