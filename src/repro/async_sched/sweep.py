"""CR-degradation sweeps: competitive ratio vs. scheduler adversity.

The paper's competitive-ratio guarantees hold in the fully synchronous
unit-speed model.  :func:`run_degradation_sweep` measures how they
degrade when an activation scheduler withholds wall-clock time: for a
grid of symmetric targets it compares the continuous worst-case ratio
``K(x) = T_{f+1}(x) / |x|`` against the event engine's wall-clock ratio
at increasing values of the scheduler's delay knob.

Empirical shape of the result (pinned loosely by the test suite, and
the headline number the closed forms — including the lower bounds of
arXiv:1707.05077 — do not cover):

- the greedy target-covering **adversarial** scheduler adds an
  *additive* penalty: each robot suffers at most ``max_delay`` per
  delayed activation window before its first target visit, so the
  supremum ratio grows roughly by ``(f + 1) * max_delay / |x|`` at the
  worst target — bounded for fixed ``max_delay``;
- seeded **async** delays degrade *multiplicatively*: every quantum of
  progress pays an expected gap of ``max_delay / 2``, inflating
  detection times by roughly ``1 + max_delay / (2 * quantum)`` across
  the whole grid.

The delay knob maps onto each scheduler kind as the natural "expected
idleness" parameter — see :func:`_scheduler_for`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.async_sched.engine import EventEngine
from repro.async_sched.schedulers import (
    SCHEDULER_KINDS,
    ActivationScheduler,
    AdversarialScheduler,
    AsyncScheduler,
    FsyncScheduler,
    SsyncScheduler,
)
from repro.errors import InvalidParameterError
from repro.extensions.multi_speed import MultiSpeedProportionalAlgorithm
from repro.observability import instrument as obs
from repro.robots.faults import AdversarialFaults
from repro.robots.fleet import Fleet
from repro.schedule.algorithm import ProportionalAlgorithm
from repro.simulation.sweep import geometric_grid

__all__ = ["DegradationPoint", "DegradationReport", "run_degradation_sweep"]


@dataclass(frozen=True)
class DegradationPoint:
    """Competitive-ratio statistics at one delay setting.

    Attributes:
        max_delay: The scheduler delay knob for this point.
        supremum_ratio: Worst wall-clock ratio over the target grid.
        witness_target: Target achieving the supremum.
        mean_ratio: Mean wall-clock ratio over the grid.
    """

    max_delay: float
    supremum_ratio: float
    witness_target: float
    mean_ratio: float

    def to_dict(self) -> dict:
        return {
            "max_delay": self.max_delay,
            "supremum_ratio": self.supremum_ratio,
            "witness_target": self.witness_target,
            "mean_ratio": self.mean_ratio,
        }


@dataclass(frozen=True)
class DegradationReport:
    """Full CR-degradation sweep result.

    Attributes:
        n: Fleet size.
        f: Fault budget (adversarial crash-detection faults).
        scheduler: Scheduler kind swept.
        quantum: Activation quantum used throughout.
        seed: Scheduler seed.
        targets: The symmetric target grid.
        baseline_supremum: Continuous-model supremum ratio
            ``sup K(x)`` over the same grid.
        baseline_witness: Target achieving the continuous supremum.
        points: One :class:`DegradationPoint` per delay value.
        speeds: Per-robot speeds (``None`` = unit speeds).
    """

    n: int
    f: int
    scheduler: str
    quantum: float
    seed: int
    targets: Tuple[float, ...]
    baseline_supremum: float
    baseline_witness: float
    points: Tuple[DegradationPoint, ...]
    speeds: Optional[Tuple[float, ...]] = field(default=None)

    def to_dict(self) -> dict:
        payload = {
            "n": self.n,
            "f": self.f,
            "scheduler": self.scheduler,
            "quantum": self.quantum,
            "seed": self.seed,
            "targets": list(self.targets),
            "baseline_supremum": self.baseline_supremum,
            "baseline_witness": self.baseline_witness,
            "points": [p.to_dict() for p in self.points],
        }
        if self.speeds is not None:
            payload["speeds"] = list(self.speeds)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def describe(self) -> str:
        """Human-readable sweep table."""
        speeds = (
            "unit"
            if self.speeds is None
            else "(" + ", ".join(f"{s:g}" for s in self.speeds) + ")"
        )
        lines = [
            f"CR degradation: A({self.n},{self.f}), "
            f"scheduler={self.scheduler}, quantum={self.quantum:g}, "
            f"seed={self.seed}, speeds={speeds}",
            f"  targets: {len(self.targets)} symmetric points in "
            f"[{min(self.targets):g}, {max(self.targets):g}]",
            f"  continuous baseline: sup K(x) = "
            f"{self.baseline_supremum:.4f} at x = {self.baseline_witness:g}",
            "  max_delay   sup ratio   mean ratio   witness x   overhead",
        ]
        for p in self.points:
            overhead = (
                p.supremum_ratio / self.baseline_supremum
                if self.baseline_supremum > 0
                and math.isfinite(p.supremum_ratio)
                else math.inf
            )
            lines.append(
                f"  {p.max_delay:>9g}   {p.supremum_ratio:>9.4f}   "
                f"{p.mean_ratio:>10.4f}   {p.witness_target:>9g}   "
                f"{overhead:>7.3f}x"
            )
        return "\n".join(lines)


def _scheduler_for(
    kind: str, max_delay: float, quantum: float
) -> ActivationScheduler:
    """Map the sweep's delay knob onto a scheduler instance.

    - ``fsync``: knob ignored (no delays exist in this model).
    - ``ssync``: activation probability ``p = 1 / (1 + max_delay)``, so
      the expected number of idle rounds before an activation is
      exactly ``max_delay`` (expected gap ``max_delay * quantum``).
    - ``async`` / ``adversarial``: the knob is ``max_delay`` directly.
    """
    if kind == "fsync":
        return FsyncScheduler(quantum)
    if kind == "ssync":
        return SsyncScheduler(p=1.0 / (1.0 + max_delay), quantum=quantum)
    if kind == "async":
        return AsyncScheduler(max_delay, quantum)
    return AdversarialScheduler(max_delay, quantum)


def run_degradation_sweep(
    n: int,
    f: int,
    delays: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    scheduler: str = "adversarial",
    quantum: float = 0.5,
    seed: int = 0,
    x_max: float = 8.0,
    points: int = 12,
    speeds: Optional[Sequence[float]] = None,
) -> DegradationReport:
    """Measure CR degradation of ``A(n, f)`` under a scheduler sweep.

    Args:
        n: Fleet size (``n >= 2f + 1`` for the proportional schedule).
        f: Crash-fault budget; faults are assigned adversarially.
        delays: Delay-knob values to sweep (each must be finite,
            ``>= 0``).
        scheduler: Scheduler kind, one of
            :data:`~repro.async_sched.schedulers.SCHEDULER_KINDS`.
        quantum: Activation quantum shared by every point.
        seed: Scheduler seed (fixed across delays, so async-kind draws
            are coupled and ratios are monotone in the knob).
        x_max: Targets span ``±[1, x_max]`` geometrically.
        points: Total number of targets (split across both signs,
            minimum 4).
        speeds: Optional per-robot speeds in ``(0, 1]``.

    Examples:
        >>> report = run_degradation_sweep(
        ...     3, 1, delays=(0.0, 1.0), points=4, x_max=4.0
        ... )
        >>> report.points[0].supremum_ratio <= report.points[1].supremum_ratio
        True
    """
    if scheduler not in SCHEDULER_KINDS:
        raise InvalidParameterError(
            f"unknown scheduler kind {scheduler!r}; expected one of "
            f"{', '.join(SCHEDULER_KINDS)}"
        )
    delays = [float(d) for d in delays]
    if not delays:
        raise InvalidParameterError("delays must be non-empty")
    if any(not (math.isfinite(d) and d >= 0.0) for d in delays):
        raise InvalidParameterError(
            f"delays must be finite and >= 0, got {delays}"
        )
    if points < 4:
        raise InvalidParameterError(
            f"need at least 4 targets for a sweep, got {points}"
        )
    if speeds is None:
        algorithm = ProportionalAlgorithm(n, f)
        speed_tuple: Optional[Tuple[float, ...]] = None
    else:
        algorithm = MultiSpeedProportionalAlgorithm(n, f, speeds=speeds)
        speed_tuple = tuple(float(s) for s in speeds)
    fleet = Fleet.from_algorithm(algorithm)

    half = geometric_grid(1.0, float(x_max), max(2, points // 2))
    targets = tuple([x for x in half] + [-x for x in half])

    with obs.span(
        "async.degradation_sweep",
        n=n,
        f=f,
        scheduler=scheduler,
        delays=len(delays),
        targets=len(targets),
    ):
        baseline_supremum = -math.inf
        baseline_witness = targets[0]
        for x in targets:
            ratio = fleet.worst_case_detection_time(x, f) / abs(x)
            if ratio > baseline_supremum:
                baseline_supremum = ratio
                baseline_witness = x
        sweep_points: List[DegradationPoint] = []
        for delay in delays:
            sched = _scheduler_for(scheduler, delay, float(quantum))
            supremum = -math.inf
            witness = targets[0]
            total = 0.0
            for x in targets:
                outcome = EventEngine(
                    fleet,
                    x,
                    scheduler=sched,
                    fault_model=AdversarialFaults(f),
                    seed=seed,
                ).run(with_events=False)
                ratio = outcome.detection_time / abs(x)
                total += ratio
                if ratio > supremum:
                    supremum = ratio
                    witness = x
                obs.count("async_sweep_points_total")
            sweep_points.append(
                DegradationPoint(
                    max_delay=delay,
                    supremum_ratio=supremum,
                    witness_target=witness,
                    mean_ratio=total / len(targets),
                )
            )
    return DegradationReport(
        n=n,
        f=f,
        scheduler=scheduler,
        quantum=float(quantum),
        seed=int(seed),
        targets=targets,
        baseline_supremum=baseline_supremum,
        baseline_witness=baseline_witness,
        points=tuple(sweep_points),
        speeds=speed_tuple,
    )
