"""Event-driven async scheduling: the LCM-style execution model.

This package generalizes the synchronous continuous-time model of
:mod:`repro.simulation` to scheduled time: robots follow the same
analytic plans, but a pluggable activation scheduler decides when the
wall clock lets each plan advance.  The discrete-event engine renders
the resulting wall-clock event log with the existing
:mod:`repro.simulation.events` types, composes with per-robot speeds
(:mod:`repro.extensions.multi_speed`) and the Byzantine confirmation
protocol (via per-robot timelines), and reproduces the continuous
engine bit-exactly under FSYNC/unit-speed — see
:mod:`repro.async_sched.parity`.

Modules:
    timeline: lazy wall↔plan maps built from scheduler slices.
    schedulers: FSYNC/SSYNC/ASYNC/adversarial activation strategies.
    engine: the heap-merge discrete-event engine.
    invariants: scheduled-time invariant audits.
    sweep: CR-degradation sweeps (ratio vs. scheduler adversity).
    parity: the FSYNC bit-exactness harness against the oracle.
"""

from repro.async_sched.engine import (
    AsyncRunRecord,
    EventEngine,
    timelines_for,
)
from repro.async_sched.invariants import (
    audit_async_outcome,
    check_async_outcome,
)
from repro.async_sched.parity import (
    AsyncParityCase,
    AsyncParityReport,
    run_async_parity,
)
from repro.async_sched.schedulers import (
    SCHEDULER_KINDS,
    ActivationScheduler,
    AdversarialScheduler,
    AsyncScheduler,
    FsyncScheduler,
    SchedulerContext,
    SsyncScheduler,
    scheduler_from_spec,
)
from repro.async_sched.sweep import (
    DegradationPoint,
    DegradationReport,
    run_degradation_sweep,
)
from repro.async_sched.timeline import Timeline

__all__ = [
    "ActivationScheduler",
    "AdversarialScheduler",
    "AsyncParityCase",
    "AsyncParityReport",
    "AsyncRunRecord",
    "AsyncScheduler",
    "DegradationPoint",
    "DegradationReport",
    "EventEngine",
    "FsyncScheduler",
    "SCHEDULER_KINDS",
    "SchedulerContext",
    "SsyncScheduler",
    "Timeline",
    "audit_async_outcome",
    "check_async_outcome",
    "run_async_parity",
    "run_degradation_sweep",
    "scheduler_from_spec",
    "timelines_for",
]
