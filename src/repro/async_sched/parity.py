"""Event-engine parity harness: FSYNC/unit-speed vs. the continuous engine.

The continuous :class:`~repro.simulation.engine.SearchSimulation` is the
semantic oracle of this library.  The discrete-event engine claims that
under the trivial schedule — FSYNC activation, unit speeds — it *is*
the continuous engine: same detection times, same detecting robot, to
the last bit.  This harness replays a seeded grid of (regime, target,
fault-kind) points through both engines and asserts **exact** float
equality (``==``, not ``times_close``) on detection times — the
cumulative-offset construction of :mod:`repro.async_sched.timeline`
makes bit-exactness achievable, so the harness demands it.

Fault models are realized *fresh* for each engine run via the campaign
fault DSL: stochastic models (``random``) keep internal generator
state across ``assign()`` calls, so sharing one instance between the
two runs would silently compare different fault subsets.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.async_sched.engine import EventEngine
from repro.async_sched.schedulers import FsyncScheduler
from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet
from repro.robustness.campaign import ScenarioSpec, _fault_model_for
from repro.simulation.engine import SearchSimulation

__all__ = [
    "AsyncParityCase",
    "AsyncParityReport",
    "DEFAULT_PAIRS",
    "DEFAULT_FAULT_KINDS",
    "run_async_parity",
]

#: Default regimes: the paper's extremes n = f+1 and n = 2f+1, an
#: interior proportional regime, and a trivial regime (n >= 2f + 2).
DEFAULT_PAIRS: Tuple[Tuple[int, int], ...] = (
    (2, 1),
    (3, 2),
    (3, 1),
    (5, 2),
    (4, 2),
    (7, 3),
)

#: Fault spec strings exercised per target (campaign DSL), spanning the
#: whole behavior taxonomy: pure crash-detection, motion-truncating
#: crash-stop, log-shaping Byzantine alarms, and seeded probabilistic
#: detection.
DEFAULT_FAULT_KINDS: Tuple[str, ...] = (
    "none",
    "adversarial",
    "fixed",
    "crash_stop:2.0",
    "byzantine:0.5;1.5",
    "probabilistic:0.7",
)


@dataclass(frozen=True)
class AsyncParityCase:
    """One compared point; agreement means bit-exact equality."""

    n: int
    f: int
    target: float
    fault: str
    continuous_time: float
    event_time: float
    continuous_robot: Optional[int]
    event_robot: Optional[int]

    @property
    def agree(self) -> bool:
        """Exact detection-time equality (inf matches inf) and the same
        detecting robot."""
        times_equal = (
            self.continuous_time == self.event_time
            if math.isfinite(self.continuous_time)
            or math.isfinite(self.event_time)
            else True
        )
        return times_equal and self.continuous_robot == self.event_robot

    def describe(self) -> str:
        verdict = "ok " if self.agree else "MISMATCH"
        return (
            f"{verdict} A({self.n},{self.f}) x={self.target:.6g} "
            f"fault={self.fault}: continuous={self.continuous_time!r} "
            f"event={self.event_time!r} robots="
            f"{self.continuous_robot}/{self.event_robot}"
        )


@dataclass
class AsyncParityReport:
    """The outcome of one parity run: every case, plus the verdict."""

    seed: int
    quantum: float
    cases: List[AsyncParityCase] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def regimes(self) -> List[Tuple[int, int]]:
        return sorted({(c.n, c.f) for c in self.cases})

    def mismatches(self) -> List[AsyncParityCase]:
        return [c for c in self.cases if not c.agree]

    @property
    def passed(self) -> bool:
        return not self.mismatches()

    def describe(self, max_mismatches: int = 10) -> str:
        bad = self.mismatches()
        lines = [
            f"async parity[fsync, quantum={self.quantum:g}]: "
            f"{self.total - len(bad)}/{self.total} points bit-exact "
            f"across {len(self.regimes)} regimes (seed={self.seed})"
        ]
        for case in bad[:max_mismatches]:
            lines.append("  " + case.describe())
        hidden = len(bad) - max_mismatches
        if hidden > 0:
            lines.append(f"  ... and {hidden} more mismatches")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        def encode(t: float):
            return t if math.isfinite(t) else repr(t)

        return {
            "format": "linesearch-async-parity-report",
            "version": 1,
            "seed": self.seed,
            "quantum": self.quantum,
            "total": self.total,
            "passed": self.passed,
            "regimes": [list(r) for r in self.regimes],
            "mismatches": len(self.mismatches()),
            "cases": [
                {
                    "n": c.n,
                    "f": c.f,
                    "target": c.target,
                    "fault": c.fault,
                    "continuous_time": encode(c.continuous_time),
                    "event_time": encode(c.event_time),
                    "continuous_robot": c.continuous_robot,
                    "event_robot": c.event_robot,
                    "agree": c.agree,
                }
                for c in self.cases
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _seeded_targets(
    rng: random.Random, count: int, x_max: float
) -> List[float]:
    """``count`` targets, log-uniform in ``[1, x_max]``, random signs."""
    targets = []
    log_max = math.log(x_max)
    for _ in range(count):
        magnitude = math.exp(rng.uniform(0.0, log_max))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        targets.append(sign * magnitude)
    return targets


def run_async_parity(
    pairs: Sequence[Tuple[int, int]] = DEFAULT_PAIRS,
    targets_per_pair: int = 12,
    fault_kinds: Sequence[str] = DEFAULT_FAULT_KINDS,
    seed: int = 2016,
    x_max: float = 16.0,
    quantum: float = 0.5,
) -> AsyncParityReport:
    """Replay a seeded grid through both engines; demand bit-exactness.

    Args:
        pairs: ``(n, f)`` regimes, realized with the library's regime
            rule (:func:`repro.schedule.algorithm_for`).
        targets_per_pair: Seeded log-uniform targets per regime.
        fault_kinds: Campaign fault-DSL strings compared per target.
        seed: Master seed; also each scenario's fault seed.
        x_max: Largest target magnitude drawn.
        quantum: FSYNC activation quantum (parity must hold for any
            positive value — the quantum only partitions plan time).

    Examples:
        >>> report = run_async_parity(
        ...     pairs=[(3, 1)], targets_per_pair=2,
        ...     fault_kinds=("none", "adversarial"),
        ... )
        >>> report.passed
        True
        >>> report.total
        4
    """
    if targets_per_pair < 1:
        raise InvalidParameterError("targets_per_pair must be >= 1")
    if x_max <= 1.0:
        raise InvalidParameterError(f"x_max must exceed 1, got {x_max}")
    from repro.schedule import algorithm_for

    rng = random.Random(seed)
    cases: List[AsyncParityCase] = []
    for n, f in pairs:
        fleet = Fleet.from_algorithm(algorithm_for(n, f))
        targets = _seeded_targets(rng, targets_per_pair, x_max)
        for target in targets:
            for fault in fault_kinds:
                spec = ScenarioSpec(
                    n=n, f=f, target=target, fault=fault, seed=seed
                )
                # Fresh fault model per engine run: stochastic models
                # mutate generator state on every assign().
                continuous = SearchSimulation(
                    fleet, target, fault_model=_fault_model_for(spec)[0]
                ).run(with_events=False)
                event = EventEngine(
                    fleet,
                    target,
                    scheduler=FsyncScheduler(quantum),
                    fault_model=_fault_model_for(spec)[0],
                    seed=seed,
                ).run(with_events=False)
                cases.append(
                    AsyncParityCase(
                        n=n,
                        f=f,
                        target=target,
                        fault=fault,
                        continuous_time=continuous.detection_time,
                        event_time=event.detection_time,
                        continuous_robot=continuous.detecting_robot,
                        event_robot=event.detecting_robot,
                    )
                )
    return AsyncParityReport(seed=seed, quantum=quantum, cases=cases)
