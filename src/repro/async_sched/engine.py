"""Discrete-event search engine under scheduled (non-synchronous) time.

:class:`EventEngine` runs the same scenario the continuous
:class:`~repro.simulation.engine.SearchSimulation` runs — a fleet, a
target, a fault assignment — but under an activation scheduler: each
robot's analytic plan advances only while the scheduler lets it, so the
wall-clock detection time degrades with the schedule.  Event rendering
is a heap merge of per-robot event streams (activation bursts,
turn points, target visits, crashes, false alarms) in wall order, and
the engine emits the existing :mod:`repro.simulation.events` types, so
invariant audits, telemetry exporters, and downstream consumers work
unchanged.

Exactness: plan-side quantities (visit/turn/crash/alarm instants and
genuine detection times) are computed by the same trajectory calls the
continuous engine makes, and wall times are produced as
``plan_t + cumulative_gap`` (see :mod:`repro.async_sched.timeline`).
Under :class:`~repro.async_sched.schedulers.FsyncScheduler` every gap is
``0.0``, so every emitted time — including the detection time — is
bit-identical to the continuous engine's (the parity harness in
:mod:`repro.async_sched.parity` asserts ``==``, not ``isclose``).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.async_sched.schedulers import (
    ActivationScheduler,
    FsyncScheduler,
    SchedulerContext,
)
from repro.async_sched.timeline import Timeline
from repro.core.tolerance import times_close
from repro.errors import InvalidParameterError, SimulationError
from repro.observability import instrument as obs
from repro.robots.faults import AdversarialFaults, FaultModel
from repro.robots.fleet import Fleet
from repro.simulation.events import (
    CrashEvent,
    DetectionEvent,
    Event,
    FalseAlarmEvent,
    TargetVisitEvent,
    TurnEvent,
)
from repro.simulation.metrics import SearchOutcome
from repro.trajectory.base import Trajectory

__all__ = ["AsyncRunRecord", "EventEngine", "timelines_for"]


@dataclass(frozen=True)
class AsyncRunRecord:
    """Timing internals of one :meth:`EventEngine.run`, for audits.

    Attributes:
        scheduler: Spec string of the scheduler that produced the run.
        seed: Scheduler seed.
        plan_detection_times: Per-robot *genuine* detection instants in
            plan time (``None`` = that robot never genuinely detects).
        wall_detection_times: The same instants mapped to wall time.
        delays: Cumulative idle delay each robot had accrued at its
            genuine detection instant (``None`` where undefined).
        activations: Total activation bursts materialized across all
            robot timelines.
    """

    scheduler: str
    seed: int
    plan_detection_times: Tuple[Optional[float], ...]
    wall_detection_times: Tuple[Optional[float], ...]
    delays: Tuple[Optional[float], ...]
    activations: int


def timelines_for(
    trajectories: Sequence[Trajectory],
    scheduler: ActivationScheduler,
    target: float,
    seed: int = 0,
) -> List[Timeline]:
    """Build one :class:`Timeline` per trajectory under ``scheduler``.

    Shared helper for composing the scheduler model with engines that
    drive their own event loops (the Byzantine confirmation simulation
    accepts these timelines directly).  The context — and therefore any
    shared scheduler state such as SSYNC round masks — is common to all
    returned timelines, exactly as inside :class:`EventEngine`.
    """
    context = SchedulerContext(trajectories, target, seed)
    return [
        Timeline(scheduler.slices(i, context))
        for i in range(len(context.plans))
    ]


class EventEngine:
    """One search scenario under an activation scheduler.

    Args:
        fleet: The robots (plans may already be speed-scaled via
            :class:`~repro.extensions.multi_speed.SpeedScaledTrajectory`).
        target: Nonzero finite target position.
        scheduler: Activation scheduler; defaults to FSYNC, under which
            the engine reproduces the continuous engine exactly.
        fault_model: Strategy deciding the faulty subset; defaults to
            the paper's adversary with budget 0.
        seed: Seed for every scheduler random stream.
        check_invariants: When true, :meth:`run` audits its outcome with
            :func:`repro.async_sched.invariants.check_async_outcome`.

    Examples:
        >>> from repro.schedule import ProportionalAlgorithm
        >>> from repro.async_sched.schedulers import AdversarialScheduler
        >>> fleet = Fleet.from_algorithm(ProportionalAlgorithm(3, 1))
        >>> sync = EventEngine(fleet, target=2.0).run()
        >>> delayed = EventEngine(
        ...     fleet, target=2.0, scheduler=AdversarialScheduler(1.0)
        ... ).run()
        >>> delayed.detection_time > sync.detection_time
        True
    """

    def __init__(
        self,
        fleet: Fleet,
        target: float,
        scheduler: Optional[ActivationScheduler] = None,
        fault_model: Optional[FaultModel] = None,
        seed: int = 0,
        check_invariants: bool = False,
    ) -> None:
        if not isinstance(fleet, Fleet):
            raise InvalidParameterError(f"fleet must be a Fleet, got {fleet!r}")
        if target == 0.0 or not math.isfinite(target):
            raise InvalidParameterError(
                f"target must be a nonzero finite real, got {target!r}"
            )
        if scheduler is not None and not isinstance(
            scheduler, ActivationScheduler
        ):
            raise InvalidParameterError(
                f"scheduler must be an ActivationScheduler, got {scheduler!r}"
            )
        self.fleet = fleet
        self.target = float(target)
        self.scheduler = scheduler or FsyncScheduler()
        self.fault_model = fault_model or AdversarialFaults(0)
        self.seed = int(seed)
        self.check_invariants = bool(check_invariants)
        #: Internals of the most recent :meth:`run` (audits, reports).
        self.last_record: Optional[AsyncRunRecord] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, with_events: bool = True) -> SearchOutcome:
        """Execute the scenario; see ``SearchSimulation.run``.

        The returned :class:`~repro.simulation.metrics.SearchOutcome`
        carries **wall-clock** times throughout — detection time, event
        log, and hence competitive ratio all reflect scheduler delays.
        """
        telemetry = obs.current()
        started = time.perf_counter() if telemetry is not None else 0.0
        with obs.span(
            "async.run",
            target=self.target,
            n=self.fleet.size,
            scheduler=self.scheduler.kind,
            fault_model=type(self.fault_model).__name__,
        ):
            with obs.span("async.adversary"):
                assignment = self.fault_model.behaviors(
                    self.fleet, self.target
                )
                faulty = frozenset(assignment)
            if len(faulty) > self.fault_model.fault_budget:
                raise SimulationError(
                    f"fault model assigned {len(faulty)} faults, more than "
                    f"its budget {self.fault_model.fault_budget}"
                )
            assigned = self.fleet.with_fault_behaviors(assignment)
            with obs.span("async.timelines"):
                plans = [r.effective_trajectory for r in assigned]
                context = SchedulerContext(plans, self.target, self.seed)
                timelines = [
                    Timeline(self.scheduler.slices(i, context))
                    for i in range(len(plans))
                ]
                plan_genuine = [
                    r.detection_time_for(self.target) for r in assigned
                ]
                wall_genuine = [
                    timelines[i].wall_of(t) if t is not None else None
                    for i, t in enumerate(plan_genuine)
                ]
            detection_time = min(
                (t for t in wall_genuine if t is not None),
                default=math.inf,
            )
            detecting_robot = self._detecting_robot(
                wall_genuine, detection_time
            )
            events: List[Event] = []
            if (with_events or self.check_invariants) and math.isfinite(
                detection_time
            ):
                with obs.span("async.events"):
                    events = self._render_events(
                        assigned,
                        timelines,
                        plan_genuine,
                        detection_time,
                        detecting_robot,
                    )
            outcome = SearchOutcome(
                target=self.target,
                detection_time=detection_time,
                detecting_robot=detecting_robot,
                faulty_robots=faulty,
                events=tuple(events),
            )
            self.last_record = AsyncRunRecord(
                scheduler=self.scheduler.spec(),
                seed=self.seed,
                plan_detection_times=tuple(plan_genuine),
                wall_detection_times=tuple(wall_genuine),
                delays=tuple(
                    timelines[i].offset_at(t) if t is not None else None
                    for i, t in enumerate(plan_genuine)
                ),
                activations=sum(len(tl.bursts) for tl in timelines),
            )
            if self.check_invariants:
                from repro.async_sched.invariants import check_async_outcome

                with obs.span("async.invariants"):
                    check_async_outcome(outcome, record=self.last_record)
        if telemetry is not None:
            obs.count("async_runs_total")
            obs.count("async_activations_total", self.last_record.activations)
            obs.observe("async_wall_seconds", time.perf_counter() - started)
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _detecting_robot(
        self,
        wall_genuine: Sequence[Optional[float]],
        detection_time: float,
    ) -> Optional[int]:
        if not math.isfinite(detection_time):
            return None
        for index, t in enumerate(wall_genuine):
            if t is not None and times_close(t, detection_time):
                return index
        raise SimulationError(
            "no robot found detecting at the computed wall detection time "
            "— inconsistent timeline state"
        )

    def _render_events(
        self,
        assigned: Fleet,
        timelines: Sequence[Timeline],
        plan_genuine: Sequence[Optional[float]],
        detection_time: float,
        detecting_robot: Optional[int],
    ) -> List[Event]:
        # Per-robot plan horizon: the plan progress at wall detection.
        # An event at plan time t renders at wall time wall_of(t), and
        # by monotonicity wall_of(t) <= detection iff t <= horizon, so
        # the plan-side filters below mirror the continuous engine's
        # `<= detection_time` filters exactly.
        heap: List[Tuple[float, bool, int, int, Event]] = []
        seq = 0

        def push(event: Event) -> None:
            nonlocal seq
            heapq.heappush(
                heap,
                (
                    event.time,
                    isinstance(event, DetectionEvent),
                    event.robot_index,
                    seq,
                    event,
                ),
            )
            seq += 1

        for robot in assigned:
            timeline = timelines[robot.index]
            plan = robot.effective_trajectory
            horizon = timeline.plan_of(detection_time)
            genuine = plan_genuine[robot.index]
            for vertex in plan.turning_points_until(horizon):
                if vertex.time <= horizon:
                    push(
                        TurnEvent(
                            timeline.wall_of(vertex.time),
                            robot.index,
                            vertex.position,
                        )
                    )
            for t in plan.visit_times(self.target, horizon):
                wall = timeline.wall_of(t)
                is_detection = (
                    robot.index == detecting_robot
                    and times_close(wall, detection_time)
                )
                if is_detection:
                    continue  # rendered as the final DetectionEvent below
                detected = genuine is not None and times_close(t, genuine)
                push(
                    TargetVisitEvent(
                        wall, robot.index, self.target, detected=detected
                    )
                )
            if robot.behavior is not None:
                halt = robot.behavior.halt_time
                if halt is not None and halt <= horizon:
                    push(
                        CrashEvent(
                            timeline.wall_of(halt),
                            robot.index,
                            plan.position_at(halt),
                        )
                    )
                for t in robot.behavior.false_alarm_times(
                    plan, self.target, until=horizon
                ):
                    push(
                        FalseAlarmEvent(
                            timeline.wall_of(t),
                            robot.index,
                            plan.position_at(t),
                        )
                    )
        if detecting_robot is not None:
            push(
                DetectionEvent(detection_time, detecting_robot, self.target)
            )
        # The heap key (time, is_detection, robot_index, push-order)
        # reproduces the continuous engine's stable event sort: ties
        # resolve by robot index, the DetectionEvent closes the log even
        # on an exact tie, and same-robot same-instant events keep their
        # turn → visit → crash → alarm emission order.
        return [entry[4] for entry in (heapq.heappop(heap) for _ in range(len(heap)))]
