"""Invariant audits for event-engine (scheduled-time) outcomes.

The log-level invariants of :mod:`repro.simulation.invariants` —
chronology, detection-event consistency, minimum search time — apply to
wall-clock event logs unchanged, because the event engine emits the
same event types in the same order contract.  The *fleet-level* checks
of that module do **not** apply: they re-derive visit statistics from
trajectories in plan time, and under a non-trivial schedule wall times
legitimately differ.  This module supplies the scheduled-time
replacements, keyed off the engine's
:class:`~repro.async_sched.engine.AsyncRunRecord`:

- ``wall_not_before_plan`` — scheduling can only delay: every robot's
  wall detection instant is at least its plan instant.
- ``delay_nonnegative`` — accrued idle offsets are finite and ``>= 0``.
- ``wall_detection_consistency`` — the outcome's detection time equals
  the minimum wall genuine detection, achieved by the reported robot.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.async_sched.engine import AsyncRunRecord
from repro.core.tolerance import TIME_RTOL, times_close
from repro.errors import InvariantViolationError
from repro.simulation.invariants import InvariantViolation, audit_outcome
from repro.simulation.metrics import SearchOutcome

__all__ = ["audit_async_outcome", "check_async_outcome"]


def audit_async_outcome(
    outcome: SearchOutcome,
    record: Optional[AsyncRunRecord] = None,
) -> List[InvariantViolation]:
    """Audit an event-engine outcome; return every violated invariant.

    Runs the log-level audit of
    :func:`repro.simulation.invariants.audit_outcome` (no fleet — see
    module docstring) plus the scheduled-time checks when a ``record``
    is supplied.
    """
    violations = audit_outcome(outcome)
    if record is None:
        return violations
    _check_delays(record, violations)
    _check_wall_vs_plan(record, violations)
    _check_wall_detection(outcome, record, violations)
    return violations


def check_async_outcome(
    outcome: SearchOutcome,
    record: Optional[AsyncRunRecord] = None,
) -> None:
    """Audit an event-engine outcome and raise on any violation.

    Raises:
        InvariantViolationError: listing every violated invariant.
    """
    violations = audit_async_outcome(outcome, record=record)
    if violations:
        summary = "; ".join(v.describe() for v in violations)
        raise InvariantViolationError(
            f"{len(violations)} invariant violation(s): {summary}"
        )


def _check_delays(
    record: AsyncRunRecord, violations: List[InvariantViolation]
) -> None:
    for index, delay in enumerate(record.delays):
        if delay is None:
            continue
        if not (math.isfinite(delay) and delay >= 0.0):
            violations.append(
                InvariantViolation(
                    "delay_nonnegative",
                    f"robot {index} accrued invalid idle delay {delay!r}",
                )
            )


def _check_wall_vs_plan(
    record: AsyncRunRecord, violations: List[InvariantViolation]
) -> None:
    pairs = zip(record.plan_detection_times, record.wall_detection_times)
    for index, (plan_t, wall_t) in enumerate(pairs):
        if plan_t is None or wall_t is None:
            if (plan_t is None) != (wall_t is None):
                violations.append(
                    InvariantViolation(
                        "wall_not_before_plan",
                        f"robot {index} has plan/wall detection mismatch: "
                        f"plan={plan_t!r}, wall={wall_t!r}",
                    )
                )
            continue
        if wall_t < plan_t - TIME_RTOL * (1.0 + abs(plan_t)):
            violations.append(
                InvariantViolation(
                    "wall_not_before_plan",
                    f"robot {index} detects at wall time {wall_t!r} before "
                    f"its plan time {plan_t!r}; scheduling can only delay",
                )
            )


def _check_wall_detection(
    outcome: SearchOutcome,
    record: AsyncRunRecord,
    violations: List[InvariantViolation],
) -> None:
    walls = [t for t in record.wall_detection_times if t is not None]
    expected = min(walls) if walls else math.inf
    actual = outcome.detection_time
    if math.isinf(expected) or math.isinf(actual):
        agree = expected == actual
    else:
        agree = times_close(expected, actual)
    if not agree:
        violations.append(
            InvariantViolation(
                "wall_detection_consistency",
                f"outcome detection time {actual!r} != minimum wall "
                f"genuine detection {expected!r}",
            )
        )
        return
    if outcome.detected:
        robot = outcome.detecting_robot
        wall = (
            record.wall_detection_times[robot]
            if robot is not None and robot < len(record.wall_detection_times)
            else None
        )
        if wall is None or not times_close(wall, actual):
            violations.append(
                InvariantViolation(
                    "wall_detection_consistency",
                    f"detecting robot {robot!r} has wall genuine detection "
                    f"{wall!r}, not the outcome detection time {actual!r}",
                )
            )
