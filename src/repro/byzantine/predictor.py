"""Semi-analytic commit-time predictions for the confirmation protocol.

Used to validate the event simulation against theory without
circularity: everything here is computed directly from the *planned*
trajectories — visit orders, positions at a given instant — with none
of the claim/vote/diversion machinery of
:mod:`repro.byzantine.simulate`.

The worst adversary against the protocol that cannot profit from lying
(every lie is refuted and only costs the liars their own alarms) is
the paper's crash adversary: corrupt the first ``f`` visitors of the
target and stay silent.  Then:

* the first genuine claim is raised at ``t* = T_{f+1}(x)`` by the
  ``(f+1)``-st visitor (the claimant votes "present" on the spot);
* liars in the verifier pool vote "absent" (at most ``f`` such votes —
  never enough to refute);
* the commit lands when the ``f``-th *reliable* non-claimant pool
  member reaches ``x``: commit time = ``t* +`` (``f``-th smallest
  travel distance among those verifiers at ``t*``).

:func:`predicted_commit_time` computes exactly that, and
:func:`predicted_commit_ratio` divides by ``|x|``.  The acceptance
test drives the full event simulation over a target grid and demands
agreement with these numbers, plus compliance with the closed-form
``2 rho + 1`` bound of
:func:`repro.core.byzantine.byzantine_confirmation_bound`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.byzantine import byzantine_quorum, min_byzantine_fleet
from repro.errors import InvalidParameterError
from repro.robots.fleet import Fleet

__all__ = [
    "worst_case_liars",
    "predicted_commit_time",
    "predicted_commit_ratio",
]


def worst_case_liars(fleet: Fleet, target: float, f: int) -> Sequence[int]:
    """The adversary's optimal liar placement: the first ``f`` visitors.

    Identical in spirit to
    :meth:`~repro.robots.fleet.Fleet.worst_fault_assignment` — robots
    corrupted here suppress the earliest genuine claims, delaying the
    first commit as much as silent faults possibly can.

    Examples:
        >>> from repro.schedule import algorithm_for
        >>> fleet = Fleet.from_algorithm(algorithm_for(3, 1))
        >>> len(worst_case_liars(fleet, 2.0, 1))
        1
    """
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    return tuple(fleet.visiting_order(target)[:f])


def predicted_commit_time(
    fleet: Fleet, target: float, f: int, liars: Optional[Sequence[int]] = None
) -> float:
    """Commit time under silent worst-case liars, from trajectories alone.

    Args:
        fleet: The crash-fault schedule fleet (``n >= 2f + 1``).
        target: True target position.
        f: Fault budget the protocol tolerates.
        liars: Liar indices; defaults to :func:`worst_case_liars`.

    Examples:
        >>> from repro.schedule import algorithm_for
        >>> fleet = Fleet.from_algorithm(algorithm_for(4, 1))
        >>> t = predicted_commit_time(fleet, 2.0, 1)
        >>> t >= fleet.worst_case_detection_time(2.0, 1)
        True
    """
    n = fleet.size
    if n < min_byzantine_fleet(f):
        raise InvalidParameterError(
            f"predictor needs n >= 2f + 1 = {min_byzantine_fleet(f)}, "
            f"got n = {n}"
        )
    liar_set = set(worst_case_liars(fleet, target, f) if liars is None else liars)
    if len(liar_set) > f:
        raise InvalidParameterError(
            f"{len(liar_set)} liars exceed the budget f = {f}"
        )

    # First genuine claim: earliest reliable visitor of the target.
    first_visits = fleet.first_visit_times(target)
    claimant = None
    t_star = None
    for index in fleet.visiting_order(target):
        if index in liar_set:
            continue
        claimant = index
        t_star = first_visits[index]
        break
    if claimant is None or t_star is None:
        raise InvalidParameterError(
            "no reliable robot ever visits the target — invalid schedule"
        )

    quorum = byzantine_quorum(f)
    if quorum <= 1:
        return t_star  # the claimant's own vote commits immediately

    # Verifier pool: the 2f+1 robots nearest the claim at t*, the
    # claimant included (it stands on the target).
    positions = [traj.position_at(t_star) for traj in fleet.trajectories]
    ranked = sorted(range(n), key=lambda i: (abs(positions[i] - target), i))
    pool = ranked[: min(n, 2 * f + 1)]

    # Reliable non-claimant pool members arrive in distance order; the
    # (quorum - 1)-th such arrival is the deciding "present" vote.
    reliable_travels = sorted(
        abs(positions[i] - target)
        for i in pool
        if i != claimant and i not in liar_set
    )
    needed = quorum - 1
    if len(reliable_travels) < needed:
        raise InvalidParameterError(
            "verifier pool has too few reliable robots — liar budget "
            "exceeds the protocol's tolerance"
        )
    return t_star + reliable_travels[needed - 1]


def predicted_commit_ratio(
    fleet: Fleet, target: float, f: int, liars: Optional[Sequence[int]] = None
) -> float:
    """``predicted_commit_time / |target|``.

    Examples:
        >>> from repro.schedule import algorithm_for
        >>> fleet = Fleet.from_algorithm(algorithm_for(4, 1))
        >>> from repro.core import byzantine_confirmation_bound
        >>> ratio = predicted_commit_ratio(fleet, 3.0, 1)
        >>> ratio <= byzantine_confirmation_bound(4, 1)
        True
    """
    return predicted_commit_time(fleet, target, f, liars) / abs(target)
