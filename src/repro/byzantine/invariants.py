"""Runtime audits of confirmation-protocol outcomes.

The safety property of the Byzantine layer is brutal and simple: **the
search must never terminate on an unconfirmed claim, and a committed
claim must be the true target.**  These audits re-derive that from the
event log alone, mirroring :mod:`repro.simulation.invariants` for the
crash-fault engine:

* ``unconfirmed_termination`` — a detected outcome whose log has no
  :class:`~repro.simulation.events.CommitEvent` at the detection time;
* ``commit_below_quorum`` — a commit with fewer "present" votes than
  the quorum logged before it;
* ``false_target_commit`` — the committed position differs from the
  true target (the protocol guarantee is broken, i.e. more robots lied
  than the budget allows);
* ``refute_below_quorum`` — a refutation with fewer "absent" votes;
* ``vote_before_claim`` / ``event_chronology`` — causality of the
  claim/vote/resolve sequence;
* ``liar_budget_exceeded`` — more faulty robots than the budget.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.tolerance import times_close
from repro.errors import InvariantViolationError
from repro.simulation.events import (
    ClaimEvent,
    CommitEvent,
    RefuteEvent,
    VoteEvent,
)
from repro.simulation.invariants import InvariantViolation
from repro.byzantine.outcome import ByzantineOutcome

__all__ = ["audit_byzantine_outcome", "check_byzantine_outcome"]


def audit_byzantine_outcome(
    outcome: ByzantineOutcome,
    quorum: Optional[int] = None,
    fault_budget: Optional[int] = None,
) -> List[InvariantViolation]:
    """Audit one protocol outcome; return all violations found."""
    violations: List[InvariantViolation] = []
    quorum = quorum if quorum is not None else outcome.quorum
    events = list(outcome.events)

    # chronology of the full log
    for a, b in zip(events, events[1:]):
        if b.time < a.time and not times_close(a.time, b.time):
            violations.append(
                InvariantViolation(
                    "event_chronology",
                    f"event at t={b.time:.6g} logged after t={a.time:.6g}",
                )
            )
            break

    if fault_budget is not None and len(outcome.faulty_robots) > fault_budget:
        violations.append(
            InvariantViolation(
                "liar_budget_exceeded",
                f"{len(outcome.faulty_robots)} faulty robots exceed the "
                f"budget {fault_budget}",
            )
        )

    commits = [e for e in events if isinstance(e, CommitEvent)]
    if outcome.detected:
        matching = [
            c for c in commits if times_close(c.time, outcome.detection_time)
        ]
        if not matching:
            violations.append(
                InvariantViolation(
                    "unconfirmed_termination",
                    f"search terminated at t={outcome.detection_time:.6g} "
                    "with no commit event at that instant",
                )
            )
        if outcome.committed_position is None:
            violations.append(
                InvariantViolation(
                    "unconfirmed_termination",
                    "detected outcome carries no committed position",
                )
            )
        elif not outcome.committed_truthfully:
            violations.append(
                InvariantViolation(
                    "false_target_commit",
                    f"committed x={outcome.committed_position:.6g} but the "
                    f"target is at x={outcome.target:.6g}",
                )
            )
    else:
        if commits:
            violations.append(
                InvariantViolation(
                    "unconfirmed_termination",
                    "undetected outcome contains a commit event",
                )
            )
        if outcome.committed_position is not None:
            violations.append(
                InvariantViolation(
                    "unconfirmed_termination",
                    "undetected outcome carries a committed position",
                )
            )

    # Per-claim vote accounting, replayed from the log.  Matching is by
    # *log order*, not timestamps: claims are serialized, so the claim a
    # resolution answers is the latest matching-position claim logged
    # before it — timestamps alone can tie (a refutation and the next
    # claim at the same instant) and would mispair.
    for k, resolve in enumerate(events):
        if not isinstance(resolve, (CommitEvent, RefuteEvent)):
            continue
        wanted = isinstance(resolve, CommitEvent)
        claim_indices = [
            j
            for j in range(k)
            if isinstance(events[j], ClaimEvent)
            and times_close(events[j].position, resolve.position)
        ]
        if not claim_indices:
            violations.append(
                InvariantViolation(
                    "vote_before_claim",
                    f"resolution at x={resolve.position:.6g} has no "
                    "preceding claim event",
                )
            )
            continue
        opened = claim_indices[-1]
        matching_votes = [
            events[i]
            for i in range(opened + 1, k)
            if isinstance(events[i], VoteEvent)
            and times_close(events[i].position, resolve.position)
            and events[i].present is wanted
        ]
        if len(matching_votes) < quorum:
            kind = "commit_below_quorum" if wanted else "refute_below_quorum"
            side = "present" if wanted else "absent"
            violations.append(
                InvariantViolation(
                    kind,
                    f"resolution at x={resolve.position:.6g} logged only "
                    f"{len(matching_votes)} {side} votes (quorum {quorum})",
                )
            )
        if resolve.votes < quorum:
            kind = "commit_below_quorum" if wanted else "refute_below_quorum"
            violations.append(
                InvariantViolation(
                    kind,
                    f"resolution at x={resolve.position:.6g} reports "
                    f"{resolve.votes} votes below quorum {quorum}",
                )
            )

    for k, vote in enumerate(events):
        if not isinstance(vote, VoteEvent):
            continue
        opened = [
            j
            for j in range(k)
            if isinstance(events[j], ClaimEvent)
            and times_close(events[j].position, vote.position)
        ]
        if not opened:
            violations.append(
                InvariantViolation(
                    "vote_before_claim",
                    f"vote by a_{vote.robot_index} at x={vote.position:.6g} "
                    "precedes any claim there",
                )
            )

    if outcome.detected and not math.isfinite(outcome.detection_time):
        violations.append(
            InvariantViolation(
                "event_chronology", "detected outcome with non-finite time"
            )
        )
    return violations


def check_byzantine_outcome(
    outcome: ByzantineOutcome,
    quorum: Optional[int] = None,
    fault_budget: Optional[int] = None,
) -> None:
    """Raise :class:`InvariantViolationError` on the first audit failure."""
    violations = audit_byzantine_outcome(
        outcome, quorum=quorum, fault_budget=fault_budget
    )
    if violations:
        detail = "; ".join(v.describe() for v in violations)
        raise InvariantViolationError(
            f"byzantine outcome failed {len(violations)} audit(s): {detail}"
        )
