"""Byzantine-tolerant search: voting/confirmation protocols.

The first *algorithmic* robustness layer of the reproduction: instead
of trusting the first detection announcement (fatal when robots can
lie — arXiv:1611.08209), a claimed detection is only **committed**
after ``f + 1`` independent robot confirmations at the claimed point,
and refuted lies send the diverted verifiers back to their schedules.

* :mod:`repro.byzantine.protocol` — the claim/vote state machine;
* :mod:`repro.byzantine.simulate` — the event simulation with
  verifier diversion and refute-resume delay accounting;
* :mod:`repro.byzantine.outcome` — :class:`ByzantineOutcome`, the
  protocol-aware :class:`~repro.simulation.metrics.SearchOutcome`;
* :mod:`repro.byzantine.invariants` — "no termination on an
  unconfirmed claim" audits;
* :mod:`repro.byzantine.predictor` — semi-analytic commit times for
  validating the simulation against arXiv:1611.08209's bounds.

The matching closed forms live in :mod:`repro.core.byzantine`, the
schedule wrapper in :mod:`repro.schedule.byzantine`, and campaign /
service / CLI wiring in :mod:`repro.robustness.campaign`,
:mod:`repro.service`, and ``linesearch chaos --protocol confirmation``.
"""

from repro.byzantine.invariants import (
    audit_byzantine_outcome,
    check_byzantine_outcome,
)
from repro.byzantine.outcome import ByzantineOutcome
from repro.byzantine.predictor import (
    predicted_commit_ratio,
    predicted_commit_time,
    worst_case_liars,
)
from repro.byzantine.protocol import (
    ClaimRecord,
    ClaimState,
    ConfirmationProtocol,
    Vote,
)
from repro.byzantine.simulate import (
    ByzantineSearchSimulation,
    simulate_byzantine_search,
)

__all__ = [
    "ByzantineOutcome",
    "ByzantineSearchSimulation",
    "ClaimRecord",
    "ClaimState",
    "ConfirmationProtocol",
    "Vote",
    "audit_byzantine_outcome",
    "check_byzantine_outcome",
    "predicted_commit_ratio",
    "predicted_commit_time",
    "simulate_byzantine_search",
    "worst_case_liars",
]
