"""Outcome container for confirmation-protocol runs.

:class:`ByzantineOutcome` extends the engine's
:class:`~repro.simulation.metrics.SearchOutcome` — same detection
time / detecting robot / competitive-ratio surface (so executors,
reports, and invariant plumbing treat it uniformly) — with the
protocol-level facts: the committed position, the quorum in force, and
how many claims were raised and refuted along the way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simulation.metrics import SearchOutcome

__all__ = ["ByzantineOutcome"]


@dataclass(frozen=True)
class ByzantineOutcome(SearchOutcome):
    """Result of one confirmation-protocol search.

    Attributes (beyond :class:`SearchOutcome`):
        committed_position: Position of the committed claim, or ``None``
            when the search never terminated.  Under the protocol's
            guarantee this equals ``target`` whenever at most ``f``
            robots lie.
        quorum: Votes that were required to commit (``f + 1``).
        claims_raised: Total claims opened (genuine + lies).
        claims_refuted: Claims exposed as lies and discarded.

    ``detection_time`` is the *commit* time — the instant the quorum
    was reached — and ``detecting_robot`` is the claimant of the
    committed claim, so ``competitive_ratio`` measures the full
    protocol cost including verification travel and refuted-lie
    diversions.

    Examples:
        >>> outcome = ByzantineOutcome(
        ...     2.0, 8.0, 1, frozenset({0}),
        ...     committed_position=2.0, quorum=2, claims_raised=3,
        ...     claims_refuted=2,
        ... )
        >>> outcome.competitive_ratio
        4.0
        >>> outcome.committed_truthfully
        True
    """

    committed_position: Optional[float] = None
    quorum: int = 1
    claims_raised: int = 0
    claims_refuted: int = 0

    @property
    def committed_truthfully(self) -> bool:
        """Whether the committed position is the true target."""
        if self.committed_position is None:
            return False
        return abs(self.committed_position - self.target) <= 1e-9 * (
            1.0 + abs(self.target)
        )

    def describe(self) -> str:
        base = super().describe()
        extra = (
            f"protocol: quorum={self.quorum}, claims={self.claims_raised} "
            f"({self.claims_refuted} refuted), committed at "
            f"{'x=%.6g' % self.committed_position if self.committed_position is not None else 'never'}"
        )
        return base + "\n" + extra
