"""The confirmation-protocol state machine (arXiv:1611.08209).

Pure bookkeeping, no trajectories: a :class:`ConfirmationProtocol`
tracks claims through their life cycle

    ``PENDING --(f+1 "present" votes)--> COMMITTED``
    ``PENDING --(f+1 "absent"  votes)--> REFUTED``

A *claim* is a robot asserting "the target is at ``p``".  Verifier
robots travel to ``p`` and vote; with at most ``f`` liars, ``f + 1``
matching votes always contain a reliable one, so the machine's
terminal states are trustworthy: a committed claim is true and a
refuted claim is false.  The motion side — which robots divert, when
they arrive, what the diversion costs — lives in
:mod:`repro.byzantine.simulate`; this module only enforces the voting
rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.byzantine import byzantine_quorum, min_byzantine_fleet
from repro.errors import InvalidParameterError, SimulationError

__all__ = [
    "ClaimState",
    "Vote",
    "ClaimRecord",
    "ConfirmationProtocol",
]


class ClaimState(enum.Enum):
    """Life-cycle states of a claimed detection."""

    PENDING = "pending"
    COMMITTED = "committed"
    REFUTED = "refuted"


@dataclass(frozen=True)
class Vote:
    """One robot's verdict on one claim."""

    robot_index: int
    time: float
    present: bool


@dataclass
class ClaimRecord:
    """A claim and every vote cast on it.

    Attributes:
        claimant: Index of the robot that raised the claim.
        position: The claimed target position.
        claim_time: When the claim was raised (the claimant's own
            "present" vote is cast at this instant).
        votes: All votes in casting order.
        state: Current life-cycle state.
        resolve_time: Time of the quorum-reaching vote, once resolved.
    """

    claimant: int
    position: float
    claim_time: float
    votes: List[Vote] = field(default_factory=list)
    state: ClaimState = ClaimState.PENDING
    resolve_time: Optional[float] = None
    #: Verifier pool and their (arrival, robot, travel) triples — filled
    #: in by the motion layer for diversion accounting.
    pool: tuple = ()
    arrivals: tuple = ()

    @property
    def present_votes(self) -> int:
        return sum(1 for v in self.votes if v.present)

    @property
    def absent_votes(self) -> int:
        return sum(1 for v in self.votes if not v.present)

    @property
    def voters(self) -> Set[int]:
        return {v.robot_index for v in self.votes}

    def describe(self) -> str:
        return (
            f"claim(x={self.position:.6g} by a_{self.claimant} at "
            f"t={self.claim_time:.6g}: {self.present_votes} present / "
            f"{self.absent_votes} absent, {self.state.value})"
        )


class ConfirmationProtocol:
    """Voting rules for a fleet of ``n`` robots with ``f`` possible liars.

    Validates the fleet is large enough (``n >= 2f + 1``, see
    :func:`repro.core.byzantine.min_byzantine_fleet`), exposes the
    quorum and verification-pool sizes, and enforces one-vote-per-robot
    and no-votes-after-resolution.

    Examples:
        >>> protocol = ConfirmationProtocol(n=5, f=2)
        >>> protocol.quorum, protocol.pool_size
        (3, 5)
        >>> claim = protocol.open_claim(claimant=1, position=4.0, time=6.0)
        >>> claim.state is ClaimState.PENDING
        True
        >>> _ = protocol.cast_vote(claim, robot_index=0, time=7.0, present=True)
        >>> protocol.cast_vote(claim, robot_index=3, time=8.0, present=True)
        <ClaimState.COMMITTED: 'committed'>
    """

    def __init__(self, n: int, f: int) -> None:
        if f < 0:
            raise InvalidParameterError(f"f must be >= 0, got {f}")
        if n < min_byzantine_fleet(f):
            raise InvalidParameterError(
                f"confirmation protocol needs n >= 2f + 1 = "
                f"{min_byzantine_fleet(f)} robots to tolerate {f} liars, "
                f"got n = {n}"
            )
        self.n = int(n)
        self.f = int(f)
        #: Matching votes that resolve a claim.
        self.quorum = byzantine_quorum(f)
        #: Verifiers diverted per claim — small enough to keep the rest
        #: of the fleet searching, large enough that reliable voters
        #: alone can always reach the quorum.
        self.pool_size = min(self.n, 2 * self.f + 1)

    def open_claim(
        self, claimant: int, position: float, time: float
    ) -> ClaimRecord:
        """Raise a claim; the claimant immediately votes "present"."""
        if not 0 <= claimant < self.n:
            raise InvalidParameterError(
                f"claimant index {claimant} out of range for n={self.n}"
            )
        record = ClaimRecord(
            claimant=claimant, position=float(position), claim_time=float(time)
        )
        self.cast_vote(record, claimant, time, present=True)
        return record

    def cast_vote(
        self,
        record: ClaimRecord,
        robot_index: int,
        time: float,
        present: bool,
    ) -> ClaimState:
        """Record a vote and return the claim's (possibly new) state."""
        if record.state is not ClaimState.PENDING:
            raise SimulationError(
                f"vote on already-{record.state.value} {record.describe()}"
            )
        if not 0 <= robot_index < self.n:
            raise InvalidParameterError(
                f"voter index {robot_index} out of range for n={self.n}"
            )
        if robot_index in record.voters:
            raise SimulationError(
                f"robot a_{robot_index} voted twice on {record.describe()}"
            )
        if time < record.claim_time:
            raise SimulationError(
                f"vote at t={time:.6g} precedes the claim at "
                f"t={record.claim_time:.6g}"
            )
        record.votes.append(Vote(robot_index, float(time), bool(present)))
        if record.present_votes >= self.quorum:
            record.state = ClaimState.COMMITTED
            record.resolve_time = float(time)
        elif record.absent_votes >= self.quorum:
            record.state = ClaimState.REFUTED
            record.resolve_time = float(time)
        return record.state

    def describe(self) -> str:
        return (
            f"ConfirmationProtocol(n={self.n}, f={self.f}, "
            f"quorum={self.quorum}, pool={self.pool_size})"
        )
