"""Event simulation of the confirmation protocol under lying robots.

The engine in :mod:`repro.simulation.engine` terminates on the first
*genuine* detection — correct against crash faults, catastrophically
wrong against Byzantine ones, where a single false alarm would end the
search at a point the target is not at.  This module runs the search
the way arXiv:1611.08209 prescribes:

1. robots follow the crash-fault schedule for ``(n, f)``;
2. any detection announcement (genuine or a lie) opens a *claim* at
   the announced position instead of terminating;
3. the ``2f + 1`` robots nearest the claimed point divert to it and
   vote "present"/"absent" on arrival (the claimant votes at claim
   time); ``f + 1`` matching votes commit or refute the claim
   (:class:`~repro.byzantine.protocol.ConfirmationProtocol`);
4. a refutation sends every diverted robot back to where it left its
   schedule, its future shifted by the diversion cost, and the search
   resumes; a commit ends the search.

Claims are processed serially in time order — a later alarm queues
until the current claim resolves, which models a shared announcement
channel and keeps the adversary from fragmenting the verifier pool.

Diversion accounting is exact under unit speed: a verifier that left
its track at claim time ``t_c``, travelled ``d`` to the claimed point,
and saw the claim refuted at ``t_r`` resumes its schedule delayed by
``(t_r - t_c) + d`` (wait plus return travel); one still mid-flight
turns straight back, delayed by ``2 (t_r - t_c)``.  Each robot ``i``
therefore carries an accumulated delay ``D_i`` and its searching
position at absolute time ``t`` is ``plan_i(t - D_i)``.

Fault semantics during verification:

* reliable robots vote what they sense at the claimed point;
* Byzantine robots vote adversarially (present on lies, absent on the
  truth) — and their alarms come from their
  :class:`~repro.robots.behaviors.ByzantineFalseAlarmFault` schedule;
* crash-stop robots vote truthfully while alive and never arrive after
  their halt time;
* probabilistic robots vote truthfully about false points and sense
  the true target with their seeded per-visit probability.

Scheduled-time composition: pass ``timelines`` (one
:class:`~repro.async_sched.timeline.Timeline` per robot, e.g. from
:func:`repro.async_sched.engine.timelines_for`) and every *plan-derived*
instant — genuine detections, Byzantine alarm times, crash-stop halt
checks — is mapped through the robot's wall↔plan map before entering
the protocol.  Claim verification itself stays in wall time: a claim is
an announcement that *wakes* the diverted robots, so diversion travel
and voting proceed at unit speed regardless of the activation schedule
(the scheduler governs searching, not responding to an alarm).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.tolerance import times_close
from repro.errors import InvalidParameterError, SimulationError
from repro.observability import instrument as obs
from repro.robots.behaviors import (
    ByzantineFalseAlarmFault,
    CrashDetectionFault,
    CrashStopFault,
    FaultBehavior,
    ProbabilisticDetectionFault,
)
from repro.robots.faults import FaultModel
from repro.robots.fleet import Fleet
from repro.simulation.events import (
    ClaimEvent,
    CommitEvent,
    Event,
    FalseAlarmEvent,
    RefuteEvent,
    VoteEvent,
)
from repro.byzantine.outcome import ByzantineOutcome
from repro.byzantine.protocol import ClaimState, ConfirmationProtocol

__all__ = ["ByzantineSearchSimulation", "simulate_byzantine_search"]

#: Claims processed before the simulation declares the adversary
#: unbounded and gives up; liars have finite alarm schedules so any
#: legitimate run resolves far below this.
_MAX_CLAIMS = 10_000


@dataclass(frozen=True)
class _Candidate:
    """A prospective claim: (absolute time, claimant, position, genuine)."""

    time: float
    claimant: int
    position: float
    genuine: bool
    alarm_id: Optional[Tuple[int, int]]  # (robot, alarm ordinal) for lies


class ByzantineSearchSimulation:
    """One confirmation-protocol scenario, ready to run.

    Attributes:
        fleet: The robots, following a crash-fault schedule for
            ``(n, f)``.
        target: True target position (nonzero finite).
        fault_model: Decides which robots are faulty and how; its
            budget is the ``f`` the protocol must tolerate.
        check_invariants: Audit the outcome with
            :func:`repro.byzantine.invariants.check_byzantine_outcome`
            after every run.
        timelines: Optional per-robot wall↔plan maps composing the
            protocol with an activation scheduler (see module
            docstring).  ``None`` means synchronous time (identity
            maps), which preserves the original semantics exactly.

    Examples:
        >>> from repro.schedule import algorithm_for
        >>> from repro.robots import BehavioralFaults, ByzantineFalseAlarmFault
        >>> fleet = Fleet.from_algorithm(algorithm_for(4, 1))
        >>> liars = BehavioralFaults({0: ByzantineFalseAlarmFault([0.5])})
        >>> sim = ByzantineSearchSimulation(fleet, 2.0, liars)
        >>> outcome = sim.run()
        >>> outcome.committed_truthfully
        True
        >>> outcome.claims_refuted
        1
    """

    def __init__(
        self,
        fleet: Fleet,
        target: float,
        fault_model: Optional[FaultModel] = None,
        check_invariants: bool = False,
        timelines: Optional[list] = None,
    ) -> None:
        if not isinstance(fleet, Fleet):
            raise InvalidParameterError(f"fleet must be a Fleet, got {fleet!r}")
        if target == 0.0 or not math.isfinite(target):
            raise InvalidParameterError(
                f"target must be a nonzero finite real, got {target!r}"
            )
        if timelines is not None and len(timelines) != fleet.size:
            raise InvalidParameterError(
                f"need one timeline per robot ({fleet.size}), got "
                f"{len(timelines)}"
            )
        self.fleet = fleet
        self.target = float(target)
        if fault_model is None:
            from repro.robots.faults import BehavioralFaults

            fault_model = BehavioralFaults({})
        self.fault_model = fault_model
        self.protocol = ConfirmationProtocol(fleet.size, fault_model.fault_budget)
        self.check_invariants = bool(check_invariants)
        self._timelines = list(timelines) if timelines is not None else None

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self) -> ByzantineOutcome:
        """Execute the scenario and return the protocol outcome."""
        telemetry = obs.current()
        started = _time.perf_counter() if telemetry is not None else 0.0
        with obs.span(
            "byzantine.run",
            target=self.target,
            n=self.fleet.size,
            f=self.fault_model.fault_budget,
        ):
            behaviors = self.fault_model.behaviors(self.fleet, self.target)
            if len(behaviors) > self.fault_model.fault_budget:
                raise SimulationError(
                    f"fault model assigned {len(behaviors)} faults, more "
                    f"than its budget {self.fault_model.fault_budget}"
                )
            outcome = self._run_protocol(behaviors)
        if telemetry is not None:
            obs.count("byzantine_runs_total")
            obs.count("byzantine_claims_total", outcome.claims_raised)
            obs.count("byzantine_refutes_total", outcome.claims_refuted)
            obs.observe(
                "byzantine_wall_seconds", _time.perf_counter() - started
            )
        if self.check_invariants:
            from repro.byzantine.invariants import check_byzantine_outcome

            check_byzantine_outcome(
                outcome, quorum=self.protocol.quorum,
                fault_budget=self.fault_model.fault_budget,
            )
        return outcome

    # ------------------------------------------------------------------
    # protocol loop
    # ------------------------------------------------------------------

    def _run_protocol(
        self, behaviors: Dict[int, FaultBehavior]
    ) -> ByzantineOutcome:
        n = self.fleet.size
        plans = [
            behaviors[i].apply_trajectory(t) if i in behaviors else t
            for i, t in enumerate(self.fleet.trajectories)
        ]
        delays = [0.0] * n
        events: List[Event] = []
        # Expose the protocol's live motion state (mutated in place as
        # claims resolve) for subclasses that extend the run past the
        # commit — the evacuation gather phase needs every robot's
        # position at commit time.
        self._plans = plans
        self._delays = delays
        self._final_claim = None

        # Genuine detection instants in each robot's own schedule time.
        genuine_base: List[Optional[float]] = []
        for i in range(n):
            if i in behaviors:
                genuine_base.append(
                    behaviors[i].detection_time(
                        self.fleet.trajectories[i], self.target
                    )
                )
            else:
                genuine_base.append(plans[i].first_visit_time(self.target))

        # Lie schedule: every alarm of every Byzantine robot, absolute
        # in the liar's own schedule time (shifted by its delay when
        # the claim is actually raised).
        pending_alarms: List[Tuple[int, int, float]] = []  # (robot, ordinal, t)
        for i, behavior in behaviors.items():
            for ordinal, t in enumerate(
                behavior.false_alarm_times(plans[i], self.target, math.inf)
            ):
                pending_alarms.append((i, ordinal, t))
        consumed: set = set()

        # Seeded vote draws for probabilistic sensors, one stream per
        # robot so replays are exact.
        import random as _random

        vote_rngs: Dict[int, _random.Random] = {
            i: _random.Random((b.seed * 1_000_003) ^ 0x5F3759DF)
            for i, b in behaviors.items()
            if isinstance(b, ProbabilisticDetectionFault)
        }

        now = 0.0
        claims_raised = 0
        claims_refuted = 0
        for _ in range(_MAX_CLAIMS):
            candidate = self._next_candidate(
                now, plans, delays, behaviors, genuine_base,
                pending_alarms, consumed,
            )
            if candidate is None:
                # No robot will ever (truthfully or otherwise) claim
                # again: the target is undetectable under this fault
                # assignment.
                return self._outcome(
                    math.inf, None, None, behaviors, events,
                    claims_raised, claims_refuted,
                )
            claims_raised += 1
            if not candidate.genuine:
                consumed.add(candidate.alarm_id)
                events.append(
                    FalseAlarmEvent(
                        candidate.time, candidate.claimant, candidate.position
                    )
                )
            events.append(
                ClaimEvent(candidate.time, candidate.claimant, candidate.position)
            )
            record, votes = self._verify(
                candidate, plans, delays, behaviors, vote_rngs
            )
            events.extend(votes)
            if record.state is ClaimState.COMMITTED:
                self._final_claim = record
                decisive = record.votes[-1].robot_index
                events.append(
                    CommitEvent(
                        record.resolve_time, decisive, record.position,
                        votes=record.present_votes,
                    )
                )
                return self._outcome(
                    record.resolve_time, candidate.claimant,
                    record.position, behaviors, events,
                    claims_raised, claims_refuted,
                )
            # refuted: charge diversions and resume the search
            claims_refuted += 1
            decisive = record.votes[-1].robot_index
            events.append(
                RefuteEvent(
                    record.resolve_time, decisive, record.position,
                    votes=record.absent_votes,
                )
            )
            self._charge_diversions(record, plans, delays, behaviors)
            now = record.resolve_time
        raise SimulationError(
            f"confirmation protocol did not resolve within {_MAX_CLAIMS} "
            "claims — unbounded alarm schedule?"
        )

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def _wall_of(self, i: int, plan_t: float) -> float:
        """Wall time of a plan instant of robot ``i`` (identity when no
        scheduler timelines were supplied)."""
        if self._timelines is None:
            return plan_t
        return self._timelines[i].wall_of(plan_t)

    def _plan_of(self, i: int, wall_t: float) -> float:
        """Plan progress of robot ``i`` at a wall instant (identity when
        no scheduler timelines were supplied)."""
        if self._timelines is None:
            return wall_t
        return self._timelines[i].plan_of(wall_t)

    def _position(self, plans, delays, i: int, t: float) -> float:
        """Searching position of robot ``i`` at absolute time ``t``."""
        return plans[i].position_at(
            self._plan_of(i, max(0.0, t - delays[i]))
        )

    def _next_candidate(
        self, now, plans, delays, behaviors, genuine_base,
        pending_alarms, consumed,
    ) -> Optional[_Candidate]:
        """Earliest claim (genuine or lie) raised at or after ``now``."""
        best: Optional[_Candidate] = None
        for i, base in enumerate(genuine_base):
            if base is None:
                continue
            t = max(self._wall_of(i, base) + delays[i], now)
            if best is None or (t, i) < (best.time, best.claimant):
                best = _Candidate(t, i, self.target, True, None)
        for (i, ordinal, base) in pending_alarms:
            if (i, ordinal) in consumed:
                continue
            t = max(self._wall_of(i, base) + delays[i], now)
            if best is None or (t, i) < (best.time, best.claimant):
                # the lie: "the target is right here, where I stand"
                position = self._position(plans, delays, i, t)
                best = _Candidate(t, i, position, False, (i, ordinal))
        return best

    def _verify(
        self, candidate, plans, delays, behaviors, vote_rngs
    ):
        """Divert the nearest pool, collect votes, resolve the claim."""
        t_c, p = candidate.time, candidate.position
        n = self.fleet.size
        record = self.protocol.open_claim(candidate.claimant, p, t_c)
        votes: List[Event] = [
            VoteEvent(t_c, candidate.claimant, p, present=True)
        ]
        # Nearest pool_size robots at claim time (claimant included —
        # it stands at the claimed point).
        ranked = sorted(
            range(n),
            key=lambda i: (abs(self._position(plans, delays, i, t_c) - p), i),
        )
        pool = ranked[: self.protocol.pool_size]
        record.pool = tuple(pool)  # for diversion accounting
        arrivals = []
        for j in pool:
            if j == candidate.claimant:
                continue
            travel = abs(self._position(plans, delays, j, t_c) - p)
            arrival = t_c + travel
            behavior = behaviors.get(j)
            if isinstance(behavior, CrashStopFault):
                # a crashed robot neither travels nor votes; the halt is
                # a plan instant, so compare in plan time
                if self._plan_of(j, arrival - delays[j]) > behavior.halt_time:
                    continue
            arrivals.append((arrival, j, travel))
        arrivals.sort()
        for arrival, j, _travel in arrivals:
            if record.state is not ClaimState.PENDING:
                break
            present = self._vote_of(j, p, behaviors, vote_rngs)
            votes.append(VoteEvent(arrival, j, p, present=present))
            self.protocol.cast_vote(record, j, arrival, present)
        if record.state is ClaimState.PENDING:
            raise SimulationError(
                f"claim at x={p:.6g} never resolved — verifier pool "
                "exhausted below quorum (fleet too small?)"
            )
        record.arrivals = tuple(arrivals)  # for diversion accounting
        return record, votes

    def _vote_of(self, j, p, behaviors, vote_rngs) -> bool:
        """Robot ``j``'s verdict on "the target is at ``p``"."""
        is_target = times_close(p, self.target)
        behavior = behaviors.get(j)
        if behavior is None or isinstance(behavior, CrashStopFault):
            return is_target
        if isinstance(behavior, ByzantineFalseAlarmFault):
            return not is_target  # maximally adversarial
        if isinstance(behavior, CrashDetectionFault):
            return False  # its sensor never fires, truthfully reported
        if isinstance(behavior, ProbabilisticDetectionFault):
            if not is_target:
                return False
            return vote_rngs[j].random() < behavior.detection_probability
        return is_target

    def _charge_diversions(self, record, plans, delays, behaviors) -> None:
        """Delay every diverted robot by its wasted travel + wait."""
        t_c, t_r = record.claim_time, record.resolve_time
        # the claimant stood at the claimed point the whole time
        delays[record.claimant] += t_r - t_c
        for arrival, j, travel in record.arrivals:
            if isinstance(behaviors.get(j), CrashStopFault):
                pass  # crashed verifiers were filtered before arrival
            if arrival <= t_r:
                # reached the point, waited, walks back
                delays[j] += (t_r - t_c) + travel
            else:
                # mid-flight at refutation: turn straight back
                delays[j] += 2.0 * (t_r - t_c)

    def _outcome(
        self, detection_time, claimant, position, behaviors, events,
        claims_raised, claims_refuted,
    ) -> ByzantineOutcome:
        # The loop appends in causal order and times never decrease
        # across claims, so a *stable* time sort keeps ties (a refute
        # and the next claim at the same instant) causally ordered.
        events = sorted(events, key=lambda e: e.time)
        return ByzantineOutcome(
            target=self.target,
            detection_time=detection_time,
            detecting_robot=claimant,
            faulty_robots=frozenset(behaviors),
            events=tuple(events),
            committed_position=position,
            quorum=self.protocol.quorum,
            claims_raised=claims_raised,
            claims_refuted=claims_refuted,
        )


def simulate_byzantine_search(
    fleet: Fleet,
    target: float,
    fault_model: Optional[FaultModel] = None,
    check_invariants: bool = False,
) -> ByzantineOutcome:
    """Convenience wrapper mirroring :func:`repro.simulation.simulate_search`.

    Examples:
        >>> from repro.schedule import algorithm_for
        >>> fleet = Fleet.from_algorithm(algorithm_for(3, 1))
        >>> simulate_byzantine_search(fleet, -2.0).committed_truthfully
        True
    """
    return ByzantineSearchSimulation(
        fleet, target, fault_model, check_invariants
    ).run()
