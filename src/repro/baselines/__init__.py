"""Baseline algorithms the paper compares against (explicitly or implicitly).

* :class:`~repro.baselines.single_doubling.SingleRobotDoubling` — the
  classic ratio-9 strategy;
* :class:`~repro.baselines.group_doubling.GroupDoubling` — all robots
  together, ratio 9 for every ``f < n`` (Section 1.1 remark);
* :class:`~repro.baselines.two_group.TwoGroupAlgorithm` — the trivial
  ratio-1 algorithm for ``n >= 2f + 2``;
* :mod:`repro.baselines.naive` — intuitive-but-suboptimal strategies for
  the ablation benchmarks.
"""

from repro.baselines.group_doubling import GroupDoubling
from repro.baselines.naive import DelayedGroupDoubling, SplitDoubling
from repro.baselines.single_doubling import SingleRobotDoubling
from repro.baselines.two_group import TwoGroupAlgorithm

__all__ = [
    "DelayedGroupDoubling",
    "GroupDoubling",
    "SingleRobotDoubling",
    "SplitDoubling",
    "TwoGroupAlgorithm",
]
