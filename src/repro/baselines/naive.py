"""Naive multi-robot strategies: what *not* to do in ``f < n < 2f + 2``.

Two intuitive-but-suboptimal ideas, kept as comparison anchors for the
ablation benchmarks:

* :class:`SplitDoubling` — split the fleet into two doubling teams with
  opposite initial directions.  With fewer than ``f + 1`` robots per
  team, a team cannot certify its own side, so the other team's visits
  are needed and the ratio degrades well past the proportional schedule.
* :class:`DelayedGroupDoubling` — the whole fleet follows the doubling
  trajectory but robot ``i`` starts with delay ``i * delay``.  Staggering
  in *time* (instead of the paper's staggering of turning points in
  *space*) still forces the late robots to retrace the full path, and the
  worst-case ratio exceeds group doubling's 9.
"""

from __future__ import annotations

from typing import List

from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory
from repro.trajectory.zigzag import GeometricZigZag

__all__ = ["SplitDoubling", "DelayedGroupDoubling"]


class SplitDoubling(SearchAlgorithm):
    """Two doubling teams, initial directions opposed.

    Robots ``0 .. right_size-1`` double starting rightward; the rest
    start leftward.  Every robot still covers the whole line, so the
    algorithm is valid for any ``f < n``; it is just slow.

    Examples:
        >>> alg = SplitDoubling(3, 1)
        >>> len(alg.build())
        3
    """

    def __init__(self, n: int, f: int, right_size: int = 0) -> None:
        params = SearchParameters(n, f)
        if params.n <= params.f:
            raise InvalidParameterError(
                f"need at least one reliable robot, got n={n}, f={f}"
            )
        super().__init__(params)
        if right_size == 0:
            right_size = (n + 1) // 2
        if not 1 <= right_size <= n:
            raise InvalidParameterError(
                f"right team size must be in 1..{n}, got {right_size}"
            )
        self.right_size = right_size

    @property
    def name(self) -> str:
        return f"SplitDoubling({self.n},{self.f})"

    def build(self) -> List[Trajectory]:
        team_right = [
            GeometricZigZag(first_turn=1.0, kappa=2.0)
            for _ in range(self.right_size)
        ]
        team_left = [
            GeometricZigZag(first_turn=-1.0, kappa=2.0)
            for _ in range(self.n - self.right_size)
        ]
        return team_right + team_left


class DelayedGroupDoubling(SearchAlgorithm):
    """Doubling with staggered start times.

    Robot ``i`` waits ``i * delay`` at the origin, then runs the standard
    doubling trajectory.

    Examples:
        >>> alg = DelayedGroupDoubling(3, 1, delay=0.5)
        >>> trajs = alg.build()
        >>> trajs[2].first_visit_time(1.0)
        2.0
    """

    def __init__(self, n: int, f: int, delay: float = 1.0) -> None:
        params = SearchParameters(n, f)
        if params.n <= params.f:
            raise InvalidParameterError(
                f"need at least one reliable robot, got n={n}, f={f}"
            )
        if delay < 0:
            raise InvalidParameterError(f"delay must be >= 0, got {delay}")
        super().__init__(params)
        self.delay = float(delay)

    @property
    def name(self) -> str:
        return f"DelayedGroupDoubling({self.n},{self.f},d={self.delay:g})"

    def build(self) -> List[Trajectory]:
        return [
            GeometricZigZag(
                first_turn=1.0, kappa=2.0, start_time=i * self.delay
            )
            for i in range(self.n)
        ]
