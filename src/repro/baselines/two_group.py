"""The trivial optimal algorithm for ``n >= 2f + 2`` (Section 1).

Partition the robots into two groups of at least ``f + 1`` each and send
them straight left and right.  Each group contains a reliable robot, so
whichever side the target is on, a reliable robot walks over it at time
exactly ``|x|`` — competitive ratio 1, which is optimal since time can
never beat distance.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory
from repro.trajectory.linear import LinearTrajectory

__all__ = ["TwoGroupAlgorithm"]


class TwoGroupAlgorithm(SearchAlgorithm):
    """Two straight-line groups; requires ``n >= 2f + 2``.

    Attributes:
        right_group_size: Robots sent right; defaults to an even split
            biased right.  Both groups must have at least ``f + 1``
            members.

    Examples:
        >>> alg = TwoGroupAlgorithm(4, 1)
        >>> alg.theoretical_competitive_ratio()
        1.0
        >>> [t.direction for t in alg.build()]
        [1, 1, -1, -1]
    """

    def __init__(
        self, n: int, f: int, right_group_size: Optional[int] = None
    ) -> None:
        params = SearchParameters(n, f)
        if params.n < 2 * params.f + 2:
            raise InvalidParameterError(
                f"two-group search needs n >= 2f + 2, got n={n}, f={f}"
            )
        super().__init__(params)
        if right_group_size is None:
            right_group_size = (n + 1) // 2
        if not (params.f + 1 <= right_group_size <= n - (params.f + 1)):
            raise InvalidParameterError(
                f"each group needs at least f+1={params.f + 1} robots; "
                f"right group of {right_group_size} out of {n} is invalid"
            )
        self.right_group_size = right_group_size

    @property
    def name(self) -> str:
        return f"TwoGroup({self.n},{self.f})"

    def build(self) -> List[Trajectory]:
        right = [LinearTrajectory(1) for _ in range(self.right_group_size)]
        left = [
            LinearTrajectory(-1)
            for _ in range(self.n - self.right_group_size)
        ]
        return right + left

    def theoretical_competitive_ratio(self) -> float:
        """1 — optimal; a reliable robot reaches ``x`` at time ``|x|``."""
        return 1.0
