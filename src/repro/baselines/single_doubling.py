"""Single-robot doubling baseline (Bellman/Beck; competitive ratio 9).

The historical starting point of the whole line-search literature, and
the proof anchor for the ``n = f + 1`` optimality argument: if an
algorithm for ``n = f + 1`` had ratio below 9, its first robot's
trajectory alone would beat the single-robot lower bound of 9.
"""

from __future__ import annotations

from typing import List

from repro.core.parameters import SearchParameters
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory
from repro.trajectory.doubling import DOUBLING_COMPETITIVE_RATIO, DoublingTrajectory

__all__ = ["SingleRobotDoubling"]


class SingleRobotDoubling(SearchAlgorithm):
    """One reliable robot running the doubling strategy.

    Examples:
        >>> alg = SingleRobotDoubling()
        >>> alg.theoretical_competitive_ratio()
        9.0
        >>> len(alg.build())
        1
    """

    def __init__(self, first_direction: int = 1) -> None:
        super().__init__(SearchParameters(n=1, f=0))
        self.first_direction = first_direction

    @property
    def name(self) -> str:
        return "SingleDoubling"

    def build(self) -> List[Trajectory]:
        return [DoublingTrajectory(first_direction=self.first_direction)]

    def theoretical_competitive_ratio(self) -> float:
        """9 — the supremum, approached at large turning points."""
        return DOUBLING_COMPETITIVE_RATIO
