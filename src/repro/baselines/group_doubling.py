"""Group doubling: all robots move together on one doubling trajectory.

Section 1.1 remarks that a competitive ratio of 9 "is also achieved by
all robots starting at the same time, and moving together while following
a doubling strategy" — because the group contains at least one reliable
robot whenever ``f < n``, and the group as a whole traces the optimal
single-robot path.

This is the natural *fault-oblivious* baseline: it ignores the fleet size
entirely, so for ``n > f + 1`` the proportional schedule beats it, which
is exactly the gap the paper's Table 1 quantifies (e.g. 5.23 vs 9 for
``(n, f) = (3, 1)``).
"""

from __future__ import annotations

from typing import List

from repro.core.parameters import SearchParameters
from repro.errors import InvalidParameterError
from repro.schedule.base import SearchAlgorithm
from repro.trajectory.base import Trajectory
from repro.trajectory.doubling import DOUBLING_COMPETITIVE_RATIO, DoublingTrajectory

__all__ = ["GroupDoubling"]


class GroupDoubling(SearchAlgorithm):
    """All ``n`` robots follow the identical doubling trajectory.

    Valid whenever ``f < n`` (the group must contain a reliable robot).

    Examples:
        >>> alg = GroupDoubling(3, 1)
        >>> alg.theoretical_competitive_ratio()
        9.0
        >>> trajs = alg.build()
        >>> trajs[0].first_visit_time(4.0) == trajs[2].first_visit_time(4.0)
        True
    """

    def __init__(self, n: int, f: int, first_direction: int = 1) -> None:
        params = SearchParameters(n, f)
        if params.n <= params.f:
            raise InvalidParameterError(
                f"group doubling needs at least one reliable robot "
                f"(n > f), got n={n}, f={f}"
            )
        super().__init__(params)
        self.first_direction = first_direction

    @property
    def name(self) -> str:
        return f"GroupDoubling({self.n},{self.f})"

    def build(self) -> List[Trajectory]:
        return [
            DoublingTrajectory(first_direction=self.first_direction)
            for _ in range(self.n)
        ]

    def theoretical_competitive_ratio(self) -> float:
        """9, independent of ``n`` and ``f`` — the whole group moves as one
        robot, so ``T_{f+1}(x) = T_1(x)``."""
        return DOUBLING_COMPETITIVE_RATIO
